"""Conjunctive matching: evaluating rule bodies against instances.

A rule body is a conjunctive query; evaluating it in an instance ``D``
enumerates all valuations ``ā`` with ``D ⊨ φ_b(ā)`` - one half of the
applicability condition (Section 3.3).  This module provides:

* :class:`FactSource` - the lookup interface (pattern ``(v_1, None,
  v_3)`` means positions 1 and 3 are bound);
* :class:`ScanSource` - naive per-relation scans (baseline engine);
* :class:`IndexedSource` - lazily-built hash indexes per bound-position
  signature, with incremental maintenance as the chase adds facts;
* :class:`OverlaySource` - a copy-on-write delta over a *frozen* base
  source, so forking a chase state costs O(delta) instead of
  re-indexing the whole fact population;
* :func:`match_atoms` - backtracking join with a greedy most-bound-first
  atom order.

Bindings are plain ``{Var: value}`` dictionaries; iteration order of
solutions is deterministic given a deterministic source order.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.core.atoms import Atom
from repro.core.terms import Const, Var
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

Binding = dict[Var, Any]


class FactSource:
    """Lookup interface over a collection of facts."""

    def candidates(self, relation: str,
                   pattern: tuple) -> Iterable[Fact]:
        """Facts of ``relation`` matching the partially-bound pattern.

        ``pattern`` has one entry per position: a concrete value (must
        match exactly) or ``None`` (wildcard).  Implementations may
        over-approximate (return supersets); :func:`match_atoms`
        re-checks every candidate.
        """
        raise NotImplementedError

    def relation_size(self, relation: str) -> int:
        """Number of facts in a relation (join-ordering heuristic)."""
        raise NotImplementedError


class ScanSource(FactSource):
    """Naive source: filter full relation scans (reference engine)."""

    def __init__(self, instance: Instance):
        self.instance = instance

    def candidates(self, relation: str, pattern: tuple) -> Iterable[Fact]:
        for f in self.instance.facts_of(relation):
            if _matches_pattern(f, pattern):
                yield f

    def relation_size(self, relation: str) -> int:
        return len(self.instance.facts_of(relation))


class IndexedSource(FactSource):
    """Hash-indexed source with incremental fact insertion.

    Indexes are built lazily per ``(relation, bound-position signature)``
    and kept up to date by :meth:`add_fact`, so a chase can reuse one
    source across steps.  The fact population is mutable here; chase
    code pairs it with the immutable :class:`Instance` it mirrors.
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts_by_relation: dict[str, list[Fact]] = {}
        self._fact_set: set[Fact] = set()
        # (relation, signature) -> {key values -> [facts]}
        self._indexes: dict[tuple[str, tuple[int, ...]],
                            dict[tuple, list[Fact]]] = {}
        for f in facts:
            self.add_fact(f)

    def __contains__(self, f: Fact) -> bool:
        return f in self._fact_set

    def __len__(self) -> int:
        return len(self._fact_set)

    def copy(self) -> "IndexedSource":
        """An independent duplicate, materialized indexes included.

        O(population + index entries) - cheap for the small delta
        sources :class:`OverlaySource` forks, and it preserves the
        per-relation insertion order so iteration stays deterministic.
        """
        dup = IndexedSource.__new__(IndexedSource)
        dup._facts_by_relation = {relation: list(facts) for relation,
                                  facts in self._facts_by_relation.items()}
        dup._fact_set = set(self._fact_set)
        dup._indexes = {index_key: {key: list(facts) for key, facts
                                    in index.items()}
                        for index_key, index in self._indexes.items()}
        return dup

    def add_fact(self, f: Fact) -> bool:
        """Insert a fact; returns False if it was already present."""
        if f in self._fact_set:
            return False
        self._fact_set.add(f)
        self._facts_by_relation.setdefault(f.relation, []).append(f)
        # Maintain only the indexes already materialized for the relation.
        for (relation, signature), index in self._indexes.items():
            if relation == f.relation:
                key = tuple(f.args[i] for i in signature)
                index.setdefault(key, []).append(f)
        return True

    def facts_of(self, relation: str) -> Sequence[Fact]:
        return self._facts_by_relation.get(relation, ())

    def candidates(self, relation: str, pattern: tuple) -> Iterable[Fact]:
        signature = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not signature:
            return self.facts_of(relation)
        if len(signature) == len(pattern):
            # Fully bound: a membership probe beats building (and then
            # maintaining) a whole per-signature index.  Semi-join
            # checks over ground atoms hit this path constantly.
            probe = Fact(relation, pattern)
            return (probe,) if probe in self._fact_set else ()
        index = self._ensure_index(relation, signature)
        key = tuple(pattern[i] for i in signature)
        return index.get(key, ())

    def relation_size(self, relation: str) -> int:
        return len(self._facts_by_relation.get(relation, ()))

    def _ensure_index(self, relation: str, signature: tuple[int, ...],
                      ) -> dict[tuple, list[Fact]]:
        index_key = (relation, signature)
        index = self._indexes.get(index_key)
        if index is None:
            index = {}
            for f in self._facts_by_relation.get(relation, ()):
                key = tuple(f.args[i] for i in signature)
                index.setdefault(key, []).append(f)
            self._indexes[index_key] = index
        return index


class OverlaySource(FactSource):
    """A copy-on-write delta over a frozen base :class:`FactSource`.

    The base is shared, never copied and **must not gain facts while
    the overlay is alive** (lazily materializing an index inside the
    base is fine - that does not change its logical content).  New
    facts land in a private delta :class:`IndexedSource`; lookups
    consult both layers.  Forking an overlay copies only the delta,
    which is what makes applicability-engine forks O(delta)
    (:meth:`repro.core.applicability.OverlayApplicability.fork`)
    instead of O(closed instance).
    """

    def __init__(self, base: IndexedSource,
                 delta: IndexedSource | None = None):
        self._base = base
        self._delta = delta if delta is not None else IndexedSource()

    def __contains__(self, f: Fact) -> bool:
        return f in self._base or f in self._delta

    def __len__(self) -> int:
        # Layers are disjoint (add_fact refuses base facts).
        return len(self._base) + len(self._delta)

    @property
    def base(self) -> IndexedSource:
        return self._base

    @property
    def delta(self) -> IndexedSource:
        return self._delta

    def add_fact(self, f: Fact) -> bool:
        """Insert into the delta; returns False if already present."""
        if f in self._base:
            return False
        return self._delta.add_fact(f)

    def facts_of(self, relation: str) -> Iterable[Fact]:
        base = self._base.facts_of(relation)
        delta = self._delta.facts_of(relation)
        if not delta:
            return base
        if not base:
            return delta
        return list(base) + list(delta)

    def candidates(self, relation: str, pattern: tuple) -> Iterable[Fact]:
        base = self._base.candidates(relation, pattern)
        delta = self._delta.candidates(relation, pattern)
        for f in base:
            yield f
        for f in delta:
            yield f

    def relation_size(self, relation: str) -> int:
        return self._base.relation_size(relation) \
            + self._delta.relation_size(relation)

    def fork(self) -> "OverlaySource":
        """An independent overlay over the same frozen base (O(delta))."""
        return OverlaySource(self._base, self._delta.copy())


def _matches_pattern(f: Fact, pattern: tuple) -> bool:
    if len(f.args) != len(pattern):
        return False
    return all(expected is None or value == expected
               for value, expected in zip(f.args, pattern))


def atom_pattern(atom: Atom, binding: Binding) -> tuple | None:
    """The lookup pattern of an atom under a partial binding.

    Returns None if the atom's arity disagrees with its terms (cannot
    happen for validated programs) - kept total for safety.
    """
    pattern: list[Any] = []
    for term in atom.terms:
        if isinstance(term, Const):
            pattern.append(term.value)
        elif isinstance(term, Var):
            pattern.append(binding.get(term))
        else:  # random terms never occur in bodies (validated)
            pattern.append(None)
    return tuple(pattern)


def _extend_binding(atom: Atom, f: Fact,
                    binding: Binding) -> Binding | None:
    """Unify an atom with a fact under a binding; None on clash.

    Handles repeated variables (``R(x, x)``) and constants.
    """
    if f.relation != atom.relation or len(f.args) != len(atom.terms):
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, f.args):
        if isinstance(term, Const):
            if term.value != value:
                return None
        elif isinstance(term, Var):
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
        else:
            return None
    return extended


_UNBOUND = object()


def _bound_count(atom: Atom, binding: Binding) -> tuple[int, int]:
    """Join-order key: (-#bound positions, arity) - most bound first."""
    bound = 0
    for term in atom.terms:
        if isinstance(term, Const) or (isinstance(term, Var)
                                       and term in binding):
            bound += 1
    return (-bound, len(atom.terms))


def match_atoms(atoms: Sequence[Atom], source: FactSource,
                binding: Binding | None = None) -> Iterator[Binding]:
    """Enumerate all bindings satisfying the conjunction of atoms.

    Backtracking join: at each step the atom with the most bound
    positions (ties: smaller relation) is matched next, restricting the
    search via :meth:`FactSource.candidates`.

    >>> D = Instance.of(Fact("E", (1, 2)), Fact("E", (2, 3)))
    >>> from repro.core.atoms import atom
    >>> body = [atom("E", "x", "y"), atom("E", "y", "z")]
    >>> sorted((b[Var("x")], b[Var("z")])
    ...        for b in match_atoms(body, ScanSource(D)))
    [(1, 3)]
    """
    if binding is None:
        binding = {}
    if not atoms:
        yield dict(binding)
        return
    remaining = list(atoms)
    remaining.sort(key=lambda a: (_bound_count(a, binding),
                                  source.relation_size(a.relation)))
    chosen = remaining.pop(0)
    pattern = atom_pattern(chosen, binding)
    for f in source.candidates(chosen.relation, pattern):
        extended = _extend_binding(chosen, f, binding)
        if extended is not None:
            yield from match_atoms(remaining, source, extended)


def match_atoms_with_pinned(atoms: Sequence[Atom], source: FactSource,
                            pinned_index: int, pinned_fact: Fact,
                            ) -> Iterator[Binding]:
    """Match a body with one atom pinned to a specific fact.

    The workhorse of incremental (semi-naive) applicability: when a new
    fact arrives, new body valuations must use it in at least one atom
    position; enumerating per pinned position visits each new valuation.
    Deduplication is the caller's job (a valuation may use the new fact
    at several positions).
    """
    pinned_atom = atoms[pinned_index]
    seed = _extend_binding(pinned_atom, pinned_fact, {})
    if seed is None:
        return
    rest = [a for i, a in enumerate(atoms) if i != pinned_index]
    yield from match_atoms(rest, source, seed)


def body_holds(atoms: Sequence[Atom], source: FactSource,
               binding: Binding) -> bool:
    """Whether the (fully or partially bound) body has any solution."""
    for _ in match_atoms(atoms, source, binding):
        return True
    return False
