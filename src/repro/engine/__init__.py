"""Datalog + chase engines: matching, fixpoints, and the batch chase."""

from repro.engine.matching import (FactSource, IndexedSource, ScanSource,
                                   atom_pattern, body_holds, match_atoms,
                                   match_atoms_with_pinned)
from repro.engine.seminaive import (evaluate_datalog, naive_fixpoint,
                                    seminaive_fixpoint)

__all__ = [
    "BatchUnsupported", "BatchedChase", "FactSource", "IndexedSource",
    "ScanSource", "atom_pattern", "body_holds", "evaluate_datalog",
    "match_atoms", "match_atoms_with_pinned", "naive_fixpoint",
    "seminaive_fixpoint",
]


def __getattr__(name: str):
    # repro.engine.batched builds on repro.core (chase, applicability),
    # which itself imports repro.engine.matching - importing it eagerly
    # here would close an import cycle, so the re-export is lazy.
    if name in ("BatchedChase", "BatchUnsupported"):
        from repro.engine import batched
        return getattr(batched, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
