"""Deterministic Datalog engine: matching, naive/semi-naive fixpoints."""

from repro.engine.matching import (FactSource, IndexedSource, ScanSource,
                                   atom_pattern, body_holds, match_atoms,
                                   match_atoms_with_pinned)
from repro.engine.seminaive import (evaluate_datalog, naive_fixpoint,
                                    seminaive_fixpoint)

__all__ = [
    "FactSource", "IndexedSource", "ScanSource", "atom_pattern",
    "body_holds", "evaluate_datalog", "match_atoms",
    "match_atoms_with_pinned", "naive_fixpoint", "seminaive_fixpoint",
]
