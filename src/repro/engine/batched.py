"""Vectorized batch chase: advance B independent runs at once.

``Session.sample(n)`` replays the sequential chase ``n`` times; for the
large class of programs whose randomness sits in "layers" above a
deterministic base (Examples 3.4/3.5 of the paper, and most
statistical-modelling workloads in the Bárány-et-al. tradition), almost
all of that work is identical across runs.  :class:`BatchedChase`
exploits the structure with a *multi-round* cascade:

1. **Shared deterministic prefix.**  The deterministic fragment of the
   translated program ``Ĝ`` is a plain Datalog program; its least
   fixpoint over the input instance is computed *once* per batch via
   :func:`repro.engine.seminaive.seminaive_closure` and shared by all
   ``B`` worlds (no random facts exist yet, so every world agrees).
2. **Vectorized sampling layers.**  The existential firings applicable
   on the closed instance are identical across worlds.  Each firing's
   ``B`` independent draws are produced by a *single* call to the
   distribution's numpy sampler (:meth:`sample_batch`); within a
   round, *all* same-(distribution, parameters) requests - across
   firings *and* across signature groups - pool into one call whose
   flat result is sliced back per request (the draws are iid, so the
   product law is unchanged).  The per-world sampled values live in
   columnar numpy arrays - the batch's fact store - and are only
   materialized into :class:`Fact` objects on demand
   (:class:`ColumnarMonteCarloPDB` answers marginal queries straight
   off the columns).  Both the auxiliary fact ``R_i(ā, y)`` and its
   (3.B) companion heads are emitted columnar: under the per-rule
   (grohe) translation the single companion head is fully determined
   by the firing's ground prefix, and under the Bárány translation the
   shared ``Sample#`` auxiliary's fan-out - every companion rule body
   matched against the round's fact source - is enumerated once per
   firing into head templates that every draw scatters into.
3. **Cascading signature groups.**  A sampled fact may enable further
   firings (e.g. ``Trig(x, ...) :- ..., Earthquake(c, 1)``).  A static
   *trigger analysis* over the translated rule bodies classifies each
   layer firing as never / always / pinned-value triggering, with a
   **semi-join check**: a candidate body atom only counts as a trigger
   if the *rest* of its rule body is satisfiable over the stable
   (never-growing) relations of the shared closed instance, which also
   refines "any value triggers" into a finite pin set when the sampled
   position joins a stable relation.  Trigger-hit worlds are then
   *grouped by their enabled-trigger signature* - the tuple of sampled
   values that actually hit a trigger - and each group runs the next
   deterministic cascade + existential layer vectorized again, one
   ``sample_batch`` call per (distribution, params) per *round* thanks
   to the pooling above.  Rounds advance as breadth-first waves, so
   every group at the same cascade depth draws together.  Group forks
   are copy-on-write: each signature group starts from an
   :class:`~repro.core.applicability.OverlayApplicability` - a delta
   overlay over the frozen base engine - so forking costs O(delta)
   instead of re-indexing the whole closed instance.  Only residual
   groups below :attr:`ChaseConfig.batch_min_group` (by default:
   singletons), budget-starved groups and structurally unsupported
   rounds finish on the scalar engine
   (:func:`repro.core.chase.run_chase_prepared`) from a fork of the
   group state.  The fallback guarantees the sampled law is *exactly*
   the sequential-chase law: the batched prefix is itself a legitimate
   chase order, and for the weakly acyclic programs this backend
   accepts, Theorem 6.1 makes the output distribution independent of
   that order.

The grouping is sound because, within a group, the worlds agree on
every fact that could ever participate in a rule-body match: sampled
values that missed every pin can - by the instance-independent part of
the trigger analysis plus the permanence of stable relations - never
match any body atom, so they are invisible to applicability, and all
other facts are shared.  Under the Bárány translation one extra
condition guards the columnar (world-varying) case: every companion
rule's rest-of-body must be confined to stable relations, so the
enumerated head-template set is final; a companion rest touching a
growable relation instead forces every draw into the signature, where
the incremental engine derives late companion matches exactly.

The backend never silently approximates: callers outside the supported
class (non-weakly-acyclic programs, trace recording, step budgets too
tight for the first layer) are *declined* via :exc:`BatchUnsupported`
/ a ``None`` return, and :meth:`repro.api.Session.sample` falls back
to the scalar loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.applicability import (IncrementalApplicability,
                                      overlay_fork)
from repro.core.chase import ChaseRun, run_chase_prepared
from repro.core.policies import ChasePolicy
from repro.core.terms import Const, Var
from repro.core.translate import (DetRule, ExistentialProgram, ExtRule,
                                  validate_params_in_theta)
from repro.engine.matching import IndexedSource, body_holds, match_atoms
from repro.engine.seminaive import seminaive_closure
from repro.errors import (ChaseError, DistributionError, MeasureError,
                          StreamingUnsupported, ValidationError)
from repro.pdb.database import MonteCarloPDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

#: Trigger classifications of a layer firing's sampled fact.
NEVER, ALWAYS, PINNED = "never", "always", "pinned"

#: Cap on *distinct pin values* when refining an always-trigger into a
#: pin set by enumerating the stable rest-of-body matches - beyond it
#: the pin set stops paying for itself as a grouping key.
_SEMIJOIN_PIN_CAP = 64
#: Cap on raw enumerated solutions (duplicate-heavy joins can repeat
#: the same pin value many times; bound the walk, not the refinement).
_SEMIJOIN_SOLUTION_CAP = 4096


class BatchUnsupported(ChaseError):
    """The program/instance is outside the batched backend's class.

    Raised during :class:`BatchedChase` preparation;
    :meth:`repro.api.Session.sample` catches it and falls back to the
    scalar loop (identical draws to ``backend="scalar"``).
    """


class _FallbackNeeded(Exception):
    """Internal: this signature group must finish on the scalar engine."""


@dataclass(frozen=True)
class _LayerFiring:
    """One existential firing of a vectorized sampling layer, prepared.

    ``heads`` are the (3.B) companion head templates this firing's
    draw fans out to - ``(relation, args, position)`` triples with
    ``None`` standing in at ``position`` for the sampled value.  Under
    the per-rule (grohe) translation there is exactly one; under the
    Bárány translation a shared ``Sample#`` auxiliary may feed several
    companion rules and several body matches each, so one draw can
    emit many heads.  ``trigger`` / ``pinned`` summarize the static
    analysis of whether any emitted head fact can enable further
    firings (``pinned`` holds the sampled values that would - only
    numeric values matter, samples are numbers).
    """

    aux_relation: str
    prefix: tuple
    distribution_key: tuple
    heads: tuple
    trigger: str
    pinned: frozenset

    def head_facts(self, sampled) -> list[Fact]:
        """The companion head facts for one sampled value."""
        facts = []
        for relation, args, position in self.heads:
            filled = list(args)
            filled[position] = sampled
            facts.append(Fact(relation, tuple(filled)))
        return facts


@dataclass(frozen=True)
class _ColumnarGroup:
    """Worlds that finished the cascade together, still columnar.

    ``members`` are the batch-wide world indices; ``shared`` is the
    instance every member holds in common (closed fixpoint + all
    signature-bound trigger facts + deterministic cascade facts);
    ``columns`` pair each fired layer firing with the members' sampled
    values (arrays aligned with ``members``).
    """

    members: np.ndarray
    shared: Instance
    columns: tuple


@dataclass(frozen=True)
class BatchOutcome:
    """Everything :meth:`BatchedChase.run_batch` produced for a batch.

    ``groups`` hold the worlds that stayed vectorized to termination;
    ``scalar_runs`` are ``(world index, ChaseRun)`` pairs for worlds
    that finished on the scalar engine.  Every world index in
    ``range(size)`` appears in exactly one of the two.

    ``base``/``growable`` carry the chase's stable-relation analysis
    (:meth:`BatchedChase._collect_growable`) forward to consumers: the
    shared closed instance and the set of relations that may gain
    facts after it.  Every relation *outside* ``growable`` holds
    exactly ``base``'s facts in **every** terminated world - grouped,
    scalar-fallback, single-process or sharded - which is what
    licenses the columnar query planner's lifted fast path
    (:mod:`repro.query.columnar`).  Both default to None (metadata
    unavailable) so historical outcomes keep deserializing.
    """

    size: int
    groups: tuple
    scalar_runs: tuple
    diagnostics: dict
    base: Instance | None = None
    growable: frozenset | None = None


@dataclass
class _Round:
    """One pending vectorized round of a world group (internal).

    ``unbound_facts`` counts the per-world facts of earlier rounds'
    columns whose sampled value stayed world-varying (signature
    component None) - one auxiliary plus the head templates per such
    column.  They are the only facts *not* already inside ``shared``,
    which is what the per-world step bound needs.
    """

    engine: IncrementalApplicability
    shared: Instance
    members: np.ndarray
    layer: tuple
    columns: tuple
    unbound_facts: int = 0


class BatchedChase:
    """A prepared batch sampler for one (translated program, instance).

    Construction performs all per-(program, instance) work: the shared
    deterministic fixpoint, the applicability bootstrap on the closed
    instance (reusing the fixpoint's warm indexes), companion lookup,
    the growable-relation analysis and the first layer's trigger
    analysis.  :meth:`run_batch` then costs one vectorized draw per
    (firing group, round) plus columnar bookkeeping - independent of
    how many times it is called, so sessions cache the instance
    (:meth:`repro.api.Session.sample` keeps it alongside the scalar
    engine bases).
    """

    def __init__(self, translated: ExistentialProgram,
                 instance: Instance):
        self.translated = translated
        self.instance = instance
        det_rules = translated.deterministic_rules()
        if det_rules:
            self.closed, closed_source = seminaive_closure(det_rules,
                                                           instance)
        else:
            self.closed = instance
            closed_source = IndexedSource(instance.facts)
        self.det_steps = len(self.closed) - len(instance)
        # The semi-join source and the base engine share the warm
        # index.  Invariant: ``self._engine`` is never mutated (rounds
        # always fork), so the source keeps mirroring ``self.closed``
        # and stays valid for stable-relation semi-joins in every
        # later round (stable relations never grow).
        self._closed_source = closed_source
        self._engine = IncrementalApplicability(translated, self.closed,
                                                source=closed_source)
        self._companions = self._collect_companions()
        self._body_atoms = self._collect_body_atoms()
        self._growable = self._collect_growable()
        self.layer = tuple(self._prepare_firing(firing,
                                                self._closed_source)
                           for firing in self._engine.applicable())

    # -- preparation --------------------------------------------------------

    @property
    def closed_source(self):
        """The fact source mirroring the shared closed instance.

        Public for the backward evidence pass
        (:func:`repro.core.backward.backward_plan`), which semi-joins
        stable relations against it exactly like the trigger analysis.
        """
        return self._closed_source

    @property
    def growable(self) -> frozenset:
        """Relations that may gain facts after the shared fixpoint."""
        return self._growable

    def _collect_companions(self) -> dict:
        """aux relation -> [(companion DetRule, its aux body atom), ...].

        Under the per-rule (grohe) translation every auxiliary has
        exactly one companion; under the Bárány translation a shared
        ``Sample#`` auxiliary feeds one companion per random rule using
        that (distribution, arity) key - the fan-out this backend
        vectorizes.
        """
        companions: dict[str, list] = {}
        for rule in self.translated.rules:
            if not isinstance(rule, DetRule):
                continue
            for atom in rule.body:
                if atom.relation in self.translated.aux_relations:
                    companions.setdefault(atom.relation, []).append(
                        (rule, atom))
        if self.translated.semantics == "grohe":
            for relation, pairs in companions.items():
                if len(pairs) != 1:
                    raise BatchUnsupported(
                        f"auxiliary relation {relation!r} has "
                        f"{len(pairs)} companion rules under the "
                        "per-rule translation")
        return companions

    def _collect_body_atoms(self) -> dict:
        """relation -> (rule, body position) anywhere in ``Ĝ``.

        Auxiliary relations are excluded on purpose: under the per-rule
        translation an auxiliary fact only ever matches its own
        companion's auxiliary atom, and the companion's head is emitted
        directly by the layer (its ground head is a function of the
        auxiliary fact alone).
        """
        by_relation: dict[str, list] = {}
        for rule in self.translated.rules:
            for position, atom in enumerate(rule.body):
                if atom.relation in self.translated.aux_relations:
                    continue
                by_relation.setdefault(atom.relation, []).append(
                    (rule, position))
        return by_relation

    def _collect_growable(self) -> frozenset:
        """Relations that may gain facts after the shared fixpoint.

        Seeded with the auxiliary relations (every layer firing adds
        one) and closed under rule heads whose bodies touch a growable
        relation.  The complement - the *stable* relations - can never
        gain a fact during the batch, which is what licenses semi-join
        pruning against the closed instance: an unsatisfiable stable
        subquery stays unsatisfiable through every cascade round.
        """
        growable = set(self.translated.aux_relations)
        changed = True
        while changed:
            changed = False
            for rule in self.translated.rules:
                head = rule.head.relation if isinstance(rule, DetRule) \
                    else rule.aux_relation
                if head in growable:
                    continue
                if any(atom.relation in growable for atom in rule.body):
                    growable.add(head)
                    changed = True
        return frozenset(growable)

    def _prepare_firing(self, firing, source) -> _LayerFiring:
        """Analyze one applicable existential firing against ``source``.

        ``source`` is the fact source of the round preparing the
        firing (the shared closed instance for the first layer, the
        group's overlay source afterwards); Bárány companion bodies
        are matched against it to enumerate the head templates the
        firing's draw fans out to.
        """
        if not firing.existential:
            raise BatchUnsupported(
                "deterministic firing survived the shared fixpoint "
                f"({firing!r}); instance outside the batched class")
        ext = self.translated.rules[firing.rule_index]
        if not isinstance(ext, ExtRule):
            raise BatchUnsupported(f"firing {firing!r} does not map to "
                                   "an existential rule")
        info = self.translated.aux_info[firing.relation]
        prefix = firing.values
        params = validate_params_in_theta(ext, prefix[info.n_carried:])
        companions = self._companions.get(firing.relation)
        if not companions:
            raise BatchUnsupported(
                f"auxiliary relation {firing.relation!r} has no "
                "companion rule")
        if self.translated.semantics == "barany":
            heads, rests_stable = self._companion_heads(
                companions, prefix, source)
        else:
            companion, aux_atom = companions[0]
            heads = (self._ground_companion_head(companion, aux_atom,
                                                 prefix),)
            # Under the per-rule translation the companion head is a
            # function of the auxiliary fact alone, so later body
            # matches can only re-derive the already-emitted head.
            rests_stable = True
        support = info.distribution.finite_support_values(params)
        trigger, pinned = self._trigger_analysis(heads, support)
        if not rests_stable and trigger != ALWAYS:
            # Some companion rest-of-body touches a growable relation:
            # new companion matches (new heads for an already-sampled
            # value) may appear in later rounds, so a world-varying
            # sampled value cannot stay columnar.  Binding every draw
            # into the signature hands the fan-out to the incremental
            # engine, which derives late companion heads exactly.
            trigger, pinned = ALWAYS, frozenset()
        return _LayerFiring(
            aux_relation=firing.relation,
            prefix=prefix,
            # Content-addressed: distribution names are unique within a
            # program's registry, so (name, params) identifies the draw
            # law across processes and pickling - equal-signature groups
            # from different shards coalesce on it (repro.serving.merge),
            # where a process-local id() could never match.
            distribution_key=(info.distribution.name, params),
            heads=heads,
            trigger=trigger,
            pinned=pinned)

    def _companion_heads(self, companions, prefix: tuple,
                         source) -> tuple[tuple, bool]:
        """All (3.B) head templates a shared-``Sample#`` draw fans to.

        For each companion rule whose auxiliary atom unifies with the
        ground prefix, the rest of the rule body is matched against
        ``source``; every solution grounds one head template (with
        ``None`` at the existential slot).  Also reports whether every
        rest-of-body is confined to *stable* relations - only then is
        the template set final across later cascade rounds, which is
        the soundness condition for keeping world-varying draws
        columnar.
        """
        heads: list = []
        seen: set = set()
        rests_stable = True
        for companion, aux_atom in companions:
            binding: dict = {}
            compatible = True
            for term, value in zip(aux_atom.terms[:-1], prefix):
                if isinstance(term, Const):
                    if term.value != value:
                        compatible = False
                        break
                elif isinstance(term, Var):
                    if term in binding and binding[term] != value:
                        compatible = False
                        break
                    binding[term] = value
                else:
                    raise BatchUnsupported(
                        f"unexpected auxiliary atom term {term!r}")
            if not compatible:
                continue
            existential = aux_atom.terms[-1]
            rest = [atom for atom in companion.body
                    if atom is not aux_atom]
            if any(atom.relation in self._growable for atom in rest):
                rests_stable = False
            for solution in match_atoms(rest, source, binding):
                template = self._ground_head_template(
                    companion.head, existential, solution)
                if template not in seen:
                    seen.add(template)
                    heads.append(template)
        return tuple(heads), rests_stable

    def _ground_companion_head(self, companion: DetRule, aux_atom,
                               prefix: tuple) -> tuple:
        """The grohe companion head template ground from the prefix.

        The auxiliary atom's terms are the carried head terms, the
        distribution parameters and finally the existential variable;
        matching them against the ground prefix binds every variable
        the companion head mentions (head variables are carried terms).
        """
        binding: dict = {}
        existential = aux_atom.terms[-1]
        for term, value in zip(aux_atom.terms[:-1], prefix):
            if isinstance(term, Var):
                binding[term] = value
        return self._ground_head_template(companion.head, existential,
                                          binding)

    @staticmethod
    def _ground_head_template(head, existential, binding: dict) -> tuple:
        """``(relation, args-with-None, sample position)`` of one head."""
        head_args: list = []
        head_position = -1
        for index, term in enumerate(head.terms):
            if term == existential:
                if head_position >= 0:
                    raise BatchUnsupported(
                        "existential variable repeats in companion "
                        f"head {head!r}")
                head_position = index
                head_args.append(None)
            elif isinstance(term, Const):
                head_args.append(term.value)
            elif isinstance(term, Var):
                if term not in binding:
                    raise BatchUnsupported(
                        f"companion head variable {term!r} not bound "
                        "by the companion body match")
                head_args.append(binding[term])
            else:
                raise BatchUnsupported(
                    f"unexpected companion head term {term!r}")
        if head_position < 0:
            raise BatchUnsupported(
                f"companion head {head!r} does not mention "
                "the existential variable")
        return (head.relation, tuple(head_args), head_position)

    def _trigger_analysis(self, heads: tuple,
                          support: tuple | None) -> tuple[str, frozenset]:
        """Classify whether any emitted head fact can enable firings.

        Each emitted fact is fixed across worlds except at its sample
        position.  It can only enable a new firing by matching some
        rule-body atom; for each candidate atom the fixed columns
        either rule the match out entirely, or pin the sampled value to
        concrete constants, or leave it free (any sample triggers), and
        the semi-join refinement of :meth:`_atom_pin` discards
        candidates whose stable rest-of-body cannot hold.  Pins outside
        the distribution's (finite) support are dropped - those values
        are unreachable.  Worlds whose samples hit a pin (or any world,
        under ``always``) leave the current group; the rest provably
        never enable a firing through these facts.
        """
        pinned: set = set()
        for relation, head_args, position in heads:
            for rule, atom_index in self._body_atoms.get(relation, ()):
                verdict = self._atom_pin(rule, atom_index, head_args,
                                         position)
                if verdict is None:
                    continue
                if verdict is ALWAYS:
                    return ALWAYS, frozenset()
                pinned.update(verdict)
        numeric = {value for value in pinned
                   if isinstance(value, (int, float))
                   and not isinstance(value, bool)}
        if support is not None:
            in_support = set(support)
            numeric = {value for value in numeric if value in in_support}
        if numeric:
            return PINNED, frozenset(numeric)
        return NEVER, frozenset()

    def _atom_pin(self, rule, atom_index: int, head_args: tuple,
                  position: int):
        """None (can never match) | ALWAYS | set of pinned sample values.

        First the fixed columns of the emitted fact are unified with
        the atom; then the *rest* of the rule body, restricted to
        stable relations, is semi-joined against the shared closed
        instance under the resulting binding.  An unsatisfiable stable
        rest rules the trigger out permanently (stable relations never
        grow), and when the sampled position's variable itself joins a
        stable relation, enumerating the stable matches turns "any
        sample triggers" into a finite pin set.
        """
        atom = rule.body[atom_index]
        if atom.arity != len(head_args):
            return None
        binding: dict = {}
        for index, term in enumerate(atom.terms):
            if index == position:
                continue
            value = head_args[index]
            if isinstance(term, Const):
                if term.value != value:
                    return None
            elif isinstance(term, Var):
                if term in binding and binding[term] != value:
                    return None
                binding[term] = value
            else:
                return None
        sample_term = atom.terms[position]
        if isinstance(sample_term, Const):
            pins = {sample_term.value}
            sample_var = None
        elif isinstance(sample_term, Var):
            if sample_term in binding:
                pins = {binding[sample_term]}
                sample_var = None
            else:
                pins = None
                sample_var = sample_term
        else:
            return None
        rest = [a for i, a in enumerate(rule.body)
                if i != atom_index and a.relation not in self._growable]
        if not rest:
            return ALWAYS if pins is None else pins
        if pins is not None:
            if not body_holds(rest, self._closed_source, binding):
                return None
            return pins
        if not any(sample_var == variable
                   for a in rest for variable in a.variables()):
            return ALWAYS if body_holds(rest, self._closed_source,
                                        binding) else None
        values: set = set()
        for count, solution in enumerate(
                match_atoms(rest, self._closed_source, binding)):
            if count >= _SEMIJOIN_SOLUTION_CAP \
                    or len(values) > _SEMIJOIN_PIN_CAP:
                return ALWAYS
            values.add(solution[sample_var])
        if not values:
            return None
        return values

    # -- execution ----------------------------------------------------------

    @staticmethod
    def _layer_step_bound(layer: tuple) -> int:
        """Per-world facts a fired layer can add: aux + heads each."""
        return sum(1 + len(firing.heads) for firing in layer)

    def run_batch(self, size: int, batch_rng: np.random.Generator,
                  world_rngs, policy: ChasePolicy, max_steps: int,
                  min_group: int = 2,
                  pool: bool = True,
                  per_world_rngs=None,
                  regions: dict | None = None,
                  log_weights=None) -> BatchOutcome | None:
        """Sample ``size`` chase runs; None declines (budget too tight).

        ``world_rngs`` is a zero-argument callable producing the
        per-world generators used by scalar-fallback worlds only
        (lazy: fully batched runs never touch it).  ``min_group`` is
        the smallest signature group continued vectorized; smaller
        groups finish on the scalar engine.  ``pool`` enables
        cross-group draw pooling: within a round, all signature groups'
        same-(distribution, parameters) draws are served by one
        ``sample_batch`` call (law-identical either way - the draws are
        iid, pooling only changes how the flat array is sliced; the
        knob exists so tests can pin the unpooled draws).

        ``per_world_rngs`` switches the batch to the *per-world stream*
        draw schedule used by sharded sampling (:mod:`repro.serving`):
        a sequence of ``size`` generators, one per world, from which
        world ``i``'s draws are taken in trigger/trajectory order - one
        scalar draw per (firing, round) instead of one pooled
        ``sample_batch`` call.  Under this schedule world ``i``'s
        output is a function of ``(program, instance, config,
        rngs[i])`` alone - independent of which other worlds share its
        batch - which is exactly the shard-count invariance guarantee.
        To keep that guarantee, ``min_group`` is forced to 1 (group
        *size* thresholds would make the columnar/scalar decision
        depend on co-membership) and ``batch_rng`` / ``world_rngs`` /
        ``pool`` are ignored; scalar-fallback worlds (budget- or
        structure-forced, both world-local conditions) continue their
        own already-advanced generator.

        ``regions`` switches the batch to *guided conditioning*: a
        mapping from ``(aux relation, full prefix)`` and/or ``(aux
        relation, carried prefix)`` keys to feasible
        :class:`~repro.distributions.regions.Region` objects (the
        backward evidence pass's output).  Matching firings draw from
        the region-truncated law via ``sample_batch_truncated`` - one
        pooled call per (distribution, params, region) - and each
        world's accumulated log importance weight (log prior mass of
        its constrained draws' regions) is added into ``log_weights``,
        a caller-allocated float array of length ``size``.  Guided
        batches never fall back to the scalar engine: a world that
        left the vectorized path would sample constrained firings
        unconstrained, silently changing the proposal law, so the
        whole batch *declines* (returns None) instead and the caller
        picks a different method.  Contradictory region intersections
        raise :class:`~repro.errors.MeasureError` (evidence with zero
        prior mass).
        """
        layer = self.layer
        if regions and per_world_rngs is not None:
            raise ChaseError(
                "guided regions are incompatible with per-world "
                "draw streams")
        if regions and log_weights is None:
            raise ChaseError(
                "guided regions need a caller-allocated log_weights "
                "array")
        # Conservative budget bound: prefix facts + one auxiliary and
        # the head templates per firing.  Tighter-budget callers get
        # exact truncation semantics from the scalar loop instead.
        if self.det_steps + self._layer_step_bound(layer) > max_steps:
            return None
        if per_world_rngs is not None:
            rngs = list(per_world_rngs)
            if len(rngs) != size:
                raise ChaseError(
                    f"per_world_rngs must provide one generator per "
                    f"world: got {len(rngs)} for batch size {size}")
            min_group = 1
        else:
            rngs = None
        diagnostics = {"n_split": 0, "n_firings": len(layer),
                       "n_rounds": 0, "n_groups": 0,
                       "n_group_rounds": 0, "n_draw_calls": 0,
                       "n_pooled_draws": 0,
                       "draw_mode": "pooled" if per_world_rngs is None
                       else "per-world"}
        all_members = np.arange(size)
        if not layer:
            diagnostics["n_groups"] = 1
            group = _ColumnarGroup(all_members, self.closed, ())
            return BatchOutcome(size, (group,), (), diagnostics,
                                base=self.closed,
                                growable=self._growable)

        groups: list[_ColumnarGroup] = []
        scalar_runs: list[tuple[int, ChaseRun]] = []
        # Rounds advance as breadth-first waves: every signature group
        # at the same cascade depth draws in the same wave, which is
        # what lets same-key draws pool across groups.
        wave = [_Round(self._engine, self.closed, all_members, layer,
                       ())]
        while wave:
            diagnostics["n_rounds"] += 1
            if per_world_rngs is not None:
                wave_draws = self._draw_wave_per_world(wave, rngs,
                                                       diagnostics)
            else:
                wave_draws = self._draw_wave(wave, batch_rng, pool,
                                             diagnostics, regions,
                                             log_weights)
            next_wave: list[_Round] = []
            for task, draws in zip(wave, wave_draws):
                diagnostics["n_group_rounds"] += 1
                columns = task.columns + tuple(zip(task.layer, draws))
                partition: dict[tuple, list[int]] = {}
                for pos, sig in enumerate(self._signatures(task.layer,
                                                           draws)):
                    partition.setdefault(sig, []).append(pos)
                for sig, positions in partition.items():
                    sub_members = task.members[positions]
                    sub_columns = tuple((firing, values[positions])
                                        for firing, values in columns)
                    if all(component is None for component in sig):
                        # No sampled value enabled anything: terminal.
                        groups.append(_ColumnarGroup(sub_members,
                                                     task.shared,
                                                     sub_columns))
                        diagnostics["n_groups"] += 1
                        continue
                    follow_up = None
                    if len(positions) >= min_group:
                        try:
                            follow_up = self._next_round(task, sig,
                                                         sub_members,
                                                         sub_columns,
                                                         max_steps)
                        except (BatchUnsupported, _FallbackNeeded,
                                DistributionError, ValidationError):
                            follow_up = None
                    if isinstance(follow_up, _ColumnarGroup):
                        groups.append(follow_up)
                        diagnostics["n_groups"] += 1
                        continue
                    if isinstance(follow_up, _Round):
                        next_wave.append(follow_up)
                        continue
                    # Residual group: finish each member on the scalar
                    # engine from a fork of the group state.
                    if regions:
                        # A scalar continuation would sample any
                        # still-constrained firing unconstrained,
                        # silently changing the guided proposal law -
                        # decline the whole batch instead.
                        return None
                    if rngs is None:
                        rngs = world_rngs()
                    for position in positions:
                        world = int(task.members[position])
                        run = self._fallback(task.engine, task.shared,
                                             columns, position,
                                             rngs[world], policy,
                                             max_steps)
                        scalar_runs.append((world, run))
                    diagnostics["n_split"] += len(positions)
            wave = next_wave
        return BatchOutcome(size, tuple(groups), tuple(scalar_runs),
                            diagnostics, base=self.closed,
                            growable=self._growable)

    def _next_round(self, task: _Round, sig: tuple,
                    sub_members: np.ndarray, sub_columns: tuple,
                    max_steps: int):
        """Advance one signature group by one cascade round.

        Returns a terminal :class:`_ColumnarGroup` when the shared
        trigger facts plus the deterministic cascade leave nothing
        applicable, or a :class:`_Round` carrying the next vectorized
        existential layer.  Raises :class:`_FallbackNeeded` (budget) or
        :class:`BatchUnsupported` (structure) to send the group's
        members to the scalar engine instead.
        """
        engine = overlay_fork(task.engine)
        trigger_facts: list[Fact] = []
        for component, firing in zip(sig, task.layer):
            if component is None:
                # The sampled fact varies across the group's worlds
                # but provably matches no body atom; retire the pair
                # abstractly so it never re-fires.
                engine.retire_existential(firing.aux_relation,
                                          firing.prefix)
                continue
            aux = Fact(firing.aux_relation,
                       firing.prefix + (component,))
            engine.add_fact(aux)
            trigger_facts.append(aux)
            for head in firing.head_facts(component):
                engine.add_fact(head)
                trigger_facts.append(head)
        shared = task.shared.add_all(trigger_facts)
        # Conservative per-world step bound: shared facts plus the
        # auxiliary and head-template facts of every *unbound* column -
        # bound columns' facts are already inside ``shared``, counting
        # them again would force needless scalar fallbacks near the
        # budget.
        unbound_facts = task.unbound_facts \
            + sum(1 + len(firing.heads)
                  for component, firing in zip(sig, task.layer)
                  if component is None)
        budget_used = (len(shared) - len(self.instance)
                       + unbound_facts)
        while True:
            applicable = engine.applicable()
            deterministic = [firing for firing in applicable
                             if not firing.existential]
            if not deterministic:
                break
            for firing in deterministic:
                budget_used += 1
                if budget_used > max_steps:
                    raise _FallbackNeeded
                fact = firing.fact()
                engine.add_fact(fact)
                shared = shared.add(fact)
        existential = [firing for firing in applicable
                       if firing.existential]
        if not existential:
            return _ColumnarGroup(sub_members, shared, sub_columns)
        next_layer = tuple(self._prepare_firing(firing, engine.source)
                           for firing in existential)
        if budget_used + self._layer_step_bound(next_layer) > max_steps:
            raise _FallbackNeeded
        return _Round(engine, shared, sub_members, next_layer,
                      sub_columns, unbound_facts)

    def _fallback(self, engine: IncrementalApplicability,
                  shared: Instance, columns: tuple, position: int,
                  rng: np.random.Generator, policy: ChasePolicy,
                  max_steps: int) -> ChaseRun:
        """Finish one world on the scalar engine from its group state.

        The world's state is the group's shared state plus its own
        sampled facts, reconstructed from the columns; the remaining
        step budget is exact (steps already executed equal the facts
        added over the input instance - each chase step adds exactly
        one new fact), so truncation semantics match the scalar loop.
        """
        state = overlay_fork(engine)
        facts: list[Fact] = []
        for firing, values in columns:
            sampled = values[position].item()
            facts.append(Fact(firing.aux_relation,
                              firing.prefix + (sampled,)))
            facts.extend(firing.head_facts(sampled))
        for fact in facts:
            state.add_fact(fact)
        current = shared.add_all(facts)
        steps = len(current) - len(self.instance)
        run = run_chase_prepared(self.translated, state, current,
                                 policy, rng, max_steps - steps)
        return ChaseRun(run.instance, run.terminated, steps + run.steps)

    def _signatures(self, layer: tuple, draws: list) -> list[tuple]:
        """Per-world enabled-trigger signatures for one fired layer.

        A component is the sampled value when it can enable a firing
        (an always-trigger, or a pinned value the draw actually hit)
        and None otherwise.  Worlds sharing a signature agree on every
        fact visible to rule matching, so they continue as one group.
        """
        components: list[list] = []
        for firing, values in zip(layer, draws):
            if firing.trigger == NEVER:
                components.append([None] * values.shape[0])
                continue
            listed = values.tolist()
            if firing.trigger == ALWAYS:
                components.append(listed)
            else:
                pinned = firing.pinned
                components.append([value if value in pinned else None
                                   for value in listed])
        return list(zip(*components))

    def _firing_region(self, firing: _LayerFiring, regions: dict | None):
        """The feasible region constraining one firing's draw (or None).

        Event-derived regions are keyed by the full ground prefix
        (identifying exactly one draw per world); observation pins by
        the carried prefix (forcing every matching firing, mirroring
        likelihood weighting).  Both apply at once by intersection; an
        empty intersection means the evidence items contradict each
        other on this draw, so no world has positive posterior mass.
        """
        if not regions:
            return None
        region = regions.get((firing.aux_relation, firing.prefix))
        info = self.translated.aux_info[firing.aux_relation]
        carried = firing.prefix[:info.n_carried]
        pin = regions.get((firing.aux_relation, carried))
        if pin is not None and pin is not region:
            region = pin if region is None else region.intersect(pin)
            if region.is_empty:
                raise MeasureError(
                    f"evidence items contradict each other on the "
                    f"draw of {firing.aux_relation!r} with prefix "
                    f"{firing.prefix!r}: the feasible region is empty")
        return region

    def _draw_wave(self, wave: list, rng: np.random.Generator,
                   pool: bool, diagnostics: dict,
                   regions: dict | None = None,
                   log_weights=None) -> list[list]:
        """Per-task draw arrays for one wave, same-key calls pooled.

        Each (firing, signature group) of the wave is one draw
        *request*.  With ``pool`` enabled, requests sharing a
        (distribution, parameters) key - across every group of the
        round - are served by a single ``sample_batch`` call whose
        flat result is sliced back per request in request order; the
        draws are iid, so any split of the flat array preserves the
        product law (the same argument that lets one firing's draws
        share a call within a group).  With ``pool`` disabled the
        grouping key is additionally the task, reproducing the
        one-call-per-(group, distribution, params) schedule.

        With ``regions``, constrained requests pool on (distribution,
        params, region) and draw via ``sample_batch_truncated``; the
        call's per-draw log importance weight is accumulated into
        ``log_weights`` for every member world (iid given the key, so
        the pooled slicing argument carries over unchanged).

        ``diagnostics`` gains ``n_draw_calls`` (``sample_batch``
        invocations) and ``n_pooled_draws`` (requests merged into a
        call they would not have had to themselves).
        """
        requests: list[tuple[int, int, tuple, int]] = []
        firing_regions: list = []
        for task_index, task in enumerate(wave):
            count = len(task.members)
            for firing_index, firing in enumerate(task.layer):
                region = self._firing_region(firing, regions)
                key = firing.distribution_key if pool \
                    else (task_index,) + firing.distribution_key
                if region is not None:
                    key = key + (region,)
                requests.append((task_index, firing_index, key, count))
                firing_regions.append(region)
        by_key: dict[tuple, list[int]] = {}
        for request_index, (_t, _f, key, _c) in enumerate(requests):
            by_key.setdefault(key, []).append(request_index)
        draws: list[list] = [[None] * len(task.layer) for task in wave]
        for members in by_key.values():
            task_index, firing_index, _key, _count = \
                requests[members[0]]
            firing = wave[task_index].layer[firing_index]
            region = firing_regions[members[0]]
            info = self.translated.aux_info[firing.aux_relation]
            _name, params = firing.distribution_key
            total = sum(requests[member][3] for member in members)
            if region is None:
                flat = np.asarray(info.distribution.sample_batch(
                    params, total, rng))
                log_w = None
            else:
                flat, log_w = info.distribution.sample_batch_truncated(
                    params, region, total, rng)
                flat = np.asarray(flat)
                diagnostics["n_guided_draws"] = \
                    diagnostics.get("n_guided_draws", 0) + total
            if flat.shape != (total,):
                raise ChaseError(
                    f"{info.distribution.name}.sample_batch returned "
                    f"shape {flat.shape}, expected ({total},)")
            offset = 0
            for member in members:
                t_index, f_index, _k, count = requests[member]
                draws[t_index][f_index] = flat[offset:offset + count]
                offset += count
                if log_w is not None:
                    log_weights[wave[t_index].members] += log_w
            diagnostics["n_draw_calls"] += 1
            diagnostics["n_pooled_draws"] += len(members) - 1
        return draws

    def _draw_wave_per_world(self, wave: list, rngs: list,
                             diagnostics: dict) -> list[list]:
        """Per-task draw arrays for one wave under per-world streams.

        Each world draws its round's values from *its own* generator,
        layer firings in layer order - the schedule a scalar chase of
        that world alone would follow, so a world's draw sequence is a
        function of its trajectory and generator only, never of which
        other worlds share the batch.  Sharded sampling
        (:mod:`repro.serving`) relies on exactly that to make merged
        output invariant to the shard count.  No pooling: pooled
        ``sample_batch`` calls consume one shared stream in
        batch-layout order, which is the co-membership dependence this
        schedule exists to remove.
        """
        draws: list[list] = []
        for task in wave:
            infos = [self.translated.aux_info[firing.aux_relation]
                     for firing in task.layer]
            columns: list[list] = [[] for _ in task.layer]
            for world in task.members.tolist():
                rng = rngs[world]
                for column, firing, info in zip(columns, task.layer,
                                                infos):
                    _name, params = firing.distribution_key
                    column.append(info.distribution.sample(params, rng))
                    diagnostics["n_draw_calls"] += 1
            draws.append([np.asarray(column) for column in columns])
        return draws

    def _draw_layer(self, layer: tuple, size: int,
                    rng: np.random.Generator) -> list[np.ndarray]:
        """One numpy array of ``size`` samples per layer firing.

        The single-group form of :meth:`_draw_wave` (kept as the
        documented replay entry point: for one group, pooled and
        unpooled schedules are identical call-for-call, so replaying
        the first round's draws by hand stays bit-exact).
        """
        task = _Round(self._engine, self.closed, np.arange(size),
                      tuple(layer), ())
        scratch = {"n_draw_calls": 0, "n_pooled_draws": 0}
        return self._draw_wave([task], rng, True, scratch)[0]


# ---------------------------------------------------------------------------
# Columnar possible-world ensemble
# ---------------------------------------------------------------------------

_PENDING = object()


class ColumnarMonteCarloPDB(MonteCarloPDB):
    """A Monte-Carlo SPDB backed by a :class:`BatchOutcome`.

    Worlds are *not* materialized up front: ``marginal`` and
    ``fact_marginals`` read the columnar arrays directly (one numpy
    comparison per candidate column), and the full ``worlds`` list is
    built lazily on first access for callers that genuinely need the
    instances (events, expectations, world-distribution tests).
    Results are identical either way - the columnar reads are exact
    counts over the same ensemble.
    """

    def __init__(self, outcome: BatchOutcome,
                 visible: tuple[str, ...], keep_aux: bool = False):
        # Deliberately skips MonteCarloPDB.__init__: ``_worlds`` is a
        # lazy property here.
        self._outcome = outcome
        self._visible = tuple(visible)
        self._visible_set = frozenset(visible)
        self._keep_aux = bool(keep_aux)
        self.truncated = sum(1 for _, run in outcome.scalar_runs
                             if not run.terminated)
        self._cache: list[Instance] | None = None
        self._slots: list[Instance | None] | None = None
        self._scalar_worlds: list[tuple[int, Instance]] | None = None
        self._group_views: dict[int, Instance] = {}
        #: How many times the grouped worlds were expanded into per-world
        #: instances.  A tripwire for "columnar" paths that secretly
        #: materialize: stays 0 as long as only columnar reads (marginal
        #: scans, compiled queries) touch this PDB.
        self.materializations = 0

    # -- columnar plumbing --------------------------------------------------

    @property
    def materialized(self) -> bool:
        """Whether the world list has been built (diagnostics/tests)."""
        return self._cache is not None

    @property
    def growable_relations(self) -> frozenset | None:
        """Relations that may gain facts after the shared fixpoint.

        None when the outcome carries no stable-relation metadata.
        Relations outside this set hold exactly :meth:`stable_view`'s
        facts in every terminated world, which is what the columnar
        query planner's lifted fast path relies on.
        """
        return self._outcome.growable

    def stable_view(self) -> Instance | None:
        """The shared closed instance, restricted the way worlds are.

        None when the outcome carries no base-instance metadata.  For
        every relation outside :attr:`growable_relations`, this view's
        facts equal that relation's facts in **every** terminated
        world (grouped or scalar fallback): stable relations never
        gain a fact after the shared fixpoint.
        """
        if self._outcome.base is None:
            return None
        return self._view(self._outcome.base)

    def _view(self, instance: Instance) -> Instance:
        return instance if self._keep_aux \
            else instance.restrict(self._visible)

    def _group_view(self, index: int) -> Instance:
        view = self._group_views.get(index)
        if view is None:
            view = self._view(self._outcome.groups[index].shared)
            self._group_views[index] = view
        return view

    def _scalar_slots(self) -> list[tuple[int, Instance]]:
        """(world index, output view) of every *terminated* scalar run."""
        if self._scalar_worlds is None:
            self._scalar_worlds = [
                (index, self._view(run.instance))
                for index, run in self._outcome.scalar_runs
                if run.terminated]
        return self._scalar_worlds

    def _column_templates(self, firing: _LayerFiring) -> list[tuple]:
        """(relation, args-with-None, sample position) fact templates.

        Restricted to the visible schema unless auxiliaries are kept:
        companion heads of *normalized* multi-random-term rules are
        ``Split#`` helper relations, which are implementation detail
        exactly like the ``Result#`` auxiliaries.
        """
        if self._keep_aux:
            templates = list(firing.heads)
            templates.append((firing.aux_relation,
                              firing.prefix + (None,),
                              len(firing.prefix)))
            return templates
        return [template for template in firing.heads
                if template[0] in self._visible_set]

    @property
    def _worlds(self) -> list[Instance]:
        if self._cache is None:
            self._cache = [slot for slot in self.world_slots()
                           if slot is not None]
        return self._cache

    def world_slots(self) -> list[Instance | None]:
        """Output instance per *world index* (None = truncated).

        The per-slot form of the lazy ``worlds`` list: slot ``i`` is
        world ``i``'s output, so per-world weight/mask vectors (the
        streaming layer's bookkeeping) align with it positionally.
        """
        if self._slots is None:
            self._slots = self._materialize_slots()
        return self._slots

    def _materialize_slots(self) -> list[Instance | None]:
        self.materializations += 1
        outcome = self._outcome
        slots: list = [_PENDING] * outcome.size
        for index, run in outcome.scalar_runs:
            slots[index] = self._view(run.instance) if run.terminated \
                else None
        for group_index, group in enumerate(outcome.groups):
            base = self._group_view(group_index)
            members = group.members.tolist()
            if not group.columns:
                for world in members:
                    slots[world] = base
                continue
            listed = [(firing, values.tolist())
                      for firing, values in group.columns]
            for position, world in enumerate(members):
                facts: list[Fact] = []
                for firing, values in listed:
                    sampled = values[position]
                    if self._keep_aux:
                        facts.append(Fact(firing.aux_relation,
                                          firing.prefix + (sampled,)))
                        facts.extend(firing.head_facts(sampled))
                    else:
                        facts.extend(
                            f for f in firing.head_facts(sampled)
                            if f.relation in self._visible_set)
                slots[world] = base.add_all(facts)
        missing = sum(1 for slot in slots if slot is _PENDING)
        if missing:
            raise ChaseError(
                f"batch outcome left {missing} worlds unaccounted for")
        return slots

    # -- fast reads ---------------------------------------------------------

    @property
    def n_runs(self) -> int:
        return self._outcome.size

    def total_mass(self) -> float:
        return (self._outcome.size - self.truncated) \
            / self._outcome.size

    def _group_fact_hits(self, group_index: int, f: Fact):
        """How the group's members hold ``f``.

        ``True`` - every member (the fact sits in the shared view);
        a boolean array aligned with ``members`` - per-world, read off
        the sample columns; ``None`` - no member can hold it.
        """
        if f in self._group_view(group_index):
            return True
        fact_args = f.args
        mask = None
        for firing, values in self._outcome.groups[group_index].columns:
            for relation, args, position in \
                    self._column_templates(firing):
                if relation != f.relation \
                        or len(args) != len(fact_args):
                    continue
                if any(expected is not None
                       and expected != fact_args[index]
                       for index, expected in enumerate(args)):
                    continue
                wanted = fact_args[position]
                if not isinstance(wanted, (int, float)) \
                        or isinstance(wanted, bool):
                    continue
                hits = values == wanted
                mask = hits if mask is None else (mask | hits)
        return mask

    def marginal(self, f: Fact) -> float:
        """Exact ensemble frequency of ``f``, straight off the columns."""
        return self.weighted_count(f, None) / self._outcome.size

    def weighted_count(self, f: Fact, weights) -> float:
        """Total weight of the worlds holding ``f`` (columnar).

        ``weights`` is a per-world-index vector (length ``size``;
        truncated slots must carry zero) or None for unit weights -
        the ``None`` form backs :meth:`marginal`, the vector form backs
        the streaming layer's weighted posterior reads.
        """
        count = 0
        for index, world in self._scalar_slots():
            if f in world:
                count += 1 if weights is None else weights[index]
        for group_index, group in enumerate(self._outcome.groups):
            hits = self._group_fact_hits(group_index, f)
            if hits is None:
                continue
            if weights is None:
                count += len(group.members) if hits is True \
                    else int(np.count_nonzero(hits))
            else:
                member_weights = weights[group.members]
                count += float(member_weights.sum()) if hits is True \
                    else float(member_weights[hits].sum())
        return count

    def fact_mask(self, f: Fact) -> np.ndarray:
        """Boolean per-world-index membership of ``f`` (truncated False)."""
        mask = np.zeros(self._outcome.size, dtype=bool)
        for index, world in self._scalar_slots():
            if f in world:
                mask[index] = True
        for group_index, group in enumerate(self._outcome.groups):
            hits = self._group_fact_hits(group_index, f)
            if hits is None:
                continue
            if hits is True:
                mask[group.members] = True
            else:
                mask[group.members[hits]] = True
        return mask

    def fact_marginals_columnar(self,
                                relations: tuple[str, ...] | None = None,
                                ) -> dict[Fact, float]:
        """Marginal of every output fact, computed columnar.

        :func:`repro.pdb.stats.fact_marginals` dispatches here, so
        batch results answer complete marginal tables without
        materializing the ensemble.
        """
        size = self._outcome.size
        return {fact: count / size
                for fact, count in
                self.weighted_fact_totals(None, relations).items()}

    def weighted_fact_totals(self, weights,
                             relations: tuple[str, ...] | None = None,
                             ) -> dict[Fact, float]:
        """Total (weighted) count of every output fact, columnar.

        ``weights`` as in :meth:`weighted_count`; with None the values
        are the plain ensemble counts.  Callers normalize themselves
        (by ``size`` for frequencies, by the total weight for
        self-normalized posterior estimates).
        """
        totals: dict[Fact, float] = {}

        def admit(relation: str) -> bool:
            return relations is None or relation in relations

        for index, world in self._scalar_slots():
            weight = 1 if weights is None else weights[index]
            for fact in world.facts:
                if admit(fact.relation):
                    totals[fact] = totals.get(fact, 0) + weight
        for group_index, group in enumerate(self._outcome.groups):
            shared = self._group_view(group_index)
            member_weights = None if weights is None \
                else weights[group.members]
            group_weight = len(group.members) if weights is None \
                else float(member_weights.sum())
            for fact in shared.facts:
                if admit(fact.relation):
                    totals[fact] = totals.get(fact, 0) + group_weight
            by_template: dict[tuple, list[np.ndarray]] = {}
            for firing, values in group.columns:
                for template in self._column_templates(firing):
                    if admit(template[0]):
                        by_template.setdefault(template, []).append(
                            values)
            for collision in self._collision_classes(by_template):
                self._count_columns(collision, by_template, shared,
                                    totals, member_weights)
        return totals

    @staticmethod
    def _templates_may_collide(first: tuple, second: tuple) -> bool:
        """Whether two distinct templates can emit the same fact."""
        relation_a, args_a, position_a = first
        relation_b, args_b, position_b = second
        if relation_a != relation_b or len(args_a) != len(args_b):
            return False
        if position_a == position_b:
            return args_a == args_b  # identical templates share a key
        for index in range(len(args_a)):
            if index in (position_a, position_b):
                continue
            if args_a[index] != args_b[index]:
                return False
        return True

    def _collision_classes(self, by_template: dict) -> list[list[tuple]]:
        """Partition templates into classes that may emit equal facts.

        A new template can bridge several existing classes (collision
        is not transitive), in which case they all merge - facts that
        can coincide must be counted in one pass.
        """
        classes: list[list[tuple]] = []
        for template in by_template:
            matching = [existing for existing in classes
                        if any(self._templates_may_collide(template,
                                                           other)
                               for other in existing)]
            if not matching:
                classes.append([template])
                continue
            merged = matching[0]
            merged.append(template)
            for other in matching[1:]:
                merged.extend(other)
                classes.remove(other)
        return classes

    def _count_columns(self, templates: list[tuple], by_template: dict,
                       shared: Instance, totals: dict,
                       member_weights=None) -> None:
        """Count per-world occurrences of the templates' emitted facts.

        Single-template classes count via ``np.unique``; collision
        classes (several templates able to emit the same fact - e.g.
        two Trig rules sampling into the same head) count the per-value
        union masks so no world is counted twice.  Facts already in the
        group's shared instance were counted for every member and are
        skipped.  ``member_weights`` (aligned with the group's member
        columns) switches integer counting to weighted totals.
        """
        if len(templates) == 1 and len(by_template[templates[0]]) == 1:
            relation, args, position = templates[0]
            column = by_template[templates[0]][0]
            if member_weights is None:
                values, counts = np.unique(column, return_counts=True)
            else:
                values, inverse = np.unique(column, return_inverse=True)
                counts = np.bincount(inverse, weights=member_weights)
            for value, count in zip(values.tolist(), counts.tolist()):
                fact = self._template_fact(templates[0], value)
                if fact in shared:
                    continue
                totals[fact] = totals.get(fact, 0) + count
            return
        stacked = np.stack([values for template in templates
                            for values in by_template[template]])
        owners = [template for template in templates
                  for _ in by_template[template]]
        # One world may produce the same fact through several columns
        # (and, across positions, through several sampled values); OR
        # the per-column hit masks per *fact* before counting so each
        # world contributes at most once.
        fact_masks: dict[Fact, np.ndarray] = {}
        for value in np.unique(stacked).tolist():
            hits = stacked == value
            for row, template in enumerate(owners):
                if not hits[row].any():
                    continue
                fact = self._template_fact(template, value)
                if fact in shared:
                    continue
                mask = fact_masks.get(fact)
                fact_masks[fact] = hits[row] if mask is None \
                    else (mask | hits[row])
        for fact, mask in fact_masks.items():
            count = int(np.count_nonzero(mask)) if member_weights is None \
                else float(member_weights[mask].sum())
            totals[fact] = totals.get(fact, 0) + count

    @staticmethod
    def _template_fact(template: tuple, value) -> Fact:
        relation, args, position = template
        filled = list(args)
        filled[position] = value
        return Fact(relation, tuple(filled))

    def __repr__(self) -> str:
        state = "materialized" if self._cache is not None \
            else "columnar"
        return (f"ColumnarMonteCarloPDB(<{self.n_runs - self.truncated}"
                f" worlds, {self.truncated} truncated, {state}>)")


# ---------------------------------------------------------------------------
# Observed-sample effects on a finished batch (streaming evidence)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ObservedColumn:
    """One sample column an observation touches in a finished batch.

    ``log_density`` is the per-member log importance factor
    ``log ψ⟨ā⟩(v)`` (``-inf`` when the observed value has zero
    density).  ``force`` says whether the column's sampled values must
    be overwritten with the observed value to match what a
    likelihood-weighted chase would have emitted; when False the
    column already holds the observed value in every member (it was
    bound into the group signature), so only the weight applies.
    """

    group_index: int
    column_index: int
    log_density: float
    force: bool


def observation_effects(outcome: BatchOutcome,
                        translated: ExistentialProgram,
                        aux_relation: str, carried: tuple,
                        value) -> list[ObservedColumn]:
    """Where (and whether) an observation lands on a finished batch.

    This is the batched counterpart of :func:`repro.core.observe.
    _fire_observed`: for each columnar group column whose firing
    matches ``(aux_relation, carried)``, decide whether forcing the
    observed ``value`` into the already-sampled worlds reproduces the
    likelihood-weighted chase *exactly*.  It does iff the value's
    trigger status matches what the worlds actually cascaded on:

    * ``NEVER`` trigger - no sampled value ever enables a downstream
      firing, so forcing is always exact;
    * ``PINNED``, column unbound (sampled values outside the pin set)
      and ``value`` also outside - forcing is exact; ``value`` inside
      the pin set would have enabled firings these worlds never ran;
    * ``PINNED``/``ALWAYS``, column bound into the signature - the
      cascade already reflects the constant sampled value, so the
      observation is exact iff it *equals* that value (weight-only).

    Any other combination - and any terminated scalar-fallback world
    that fired a matching auxiliary (its trajectory is opaque) -
    raises :class:`StreamingUnsupported`; callers fall back to the
    one-shot weighted chase.  Worlds in groups without a matching
    column never fired the observation's sample and keep factor 1,
    exactly like the scalar scheme.
    """
    info = translated.aux_info[aux_relation]
    for _index, run in outcome.scalar_runs:
        if not run.terminated:
            continue
        for fact in run.instance.facts_of(aux_relation):
            if fact.args[:info.n_carried] == carried:
                raise StreamingUnsupported(
                    f"observation on {aux_relation!r}{carried!r} "
                    "touches a scalar-fallback world; its draw "
                    "cannot be re-weighted columnar")
    effects: list[ObservedColumn] = []
    for group_index, group in enumerate(outcome.groups):
        for column_index, (firing, values) in enumerate(group.columns):
            if firing.aux_relation != aux_relation \
                    or firing.prefix[:info.n_carried] != carried:
                continue
            _name, params = firing.distribution_key
            density = float(info.distribution.density(params, value))
            log_density = math.log(density) if density > 0 \
                else -math.inf
            if firing.trigger == NEVER:
                bound = False
            elif firing.trigger == ALWAYS:
                bound = True
            else:
                # Pinned columns are uniform by construction: a pinned
                # sampled value is bound into the group signature, so
                # either every member holds it (bound) or none does.
                bound = values[0] in firing.pinned
            if bound:
                if value == values[0]:
                    effects.append(ObservedColumn(
                        group_index, column_index, log_density, False))
                    continue
                raise StreamingUnsupported(
                    f"observed {aux_relation!r}{carried!r} = {value!r} "
                    f"contradicts the signature-bound sample "
                    f"{values[0]!r}; these worlds cascaded on it")
            if firing.trigger == PINNED and value in firing.pinned:
                raise StreamingUnsupported(
                    f"observed {aux_relation!r}{carried!r} = {value!r} "
                    "is a trigger value; forcing it would enable "
                    "firings the sampled worlds never ran")
            effects.append(ObservedColumn(
                group_index, column_index, log_density, True))
    return effects
