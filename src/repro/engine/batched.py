"""Vectorized batch chase: advance B independent runs at once.

``Session.sample(n)`` replays the sequential chase ``n`` times; for the
large class of programs whose randomness sits in a single "layer" above
a deterministic base (Examples 3.4/3.5 of the paper, and most
statistical-modelling workloads in the Bárány-et-al. tradition), almost
all of that work is identical across runs.  :class:`BatchedChase`
exploits the structure:

1. **Shared deterministic prefix.**  The deterministic fragment of the
   translated program ``Ĝ`` is a plain Datalog program; its least
   fixpoint over the input instance is computed *once* per batch via
   :func:`repro.engine.seminaive.seminaive_fixpoint` and shared by all
   ``B`` worlds (no random facts exist yet, so every world agrees).
2. **Vectorized sampling layer.**  The existential firings applicable
   on the closed instance are identical across worlds.  Each firing's
   ``B`` independent draws are produced by a *single* call to the
   distribution's numpy sampler (:meth:`sample_batch`), with firings
   sharing a parameter tuple grouped into one call.  The per-world
   sampled values live in columnar numpy arrays - the batch's fact
   store - and are only materialized into :class:`Fact` objects at the
   end.  Both the auxiliary fact ``R_i(ā, y)`` and its (3.B) companion
   head are emitted directly from the firing's ground prefix: under the
   per-rule translation the companion head is fully determined by the
   auxiliary fact, so no rule matching is needed.
3. **Lazy per-world splitting.**  A sampled fact may enable further
   firings (e.g. ``Trig(x, ...) :- ..., Earthquake(c, 1)``).  A static
   *trigger analysis* over the translated rule bodies classifies each
   layer firing as never / always / pinned-value triggering; only the
   worlds whose sampled values actually hit a trigger are split out of
   the batch and continued in the scalar engine
   (:func:`repro.core.chase.run_chase_prepared`) from a fork of the
   shared state.  The fallback guarantees the sampled law is *exactly*
   the sequential-chase law: the batched prefix is itself a legitimate
   chase order, and for the weakly acyclic programs this backend
   accepts, Theorem 6.1 makes the output distribution independent of
   that order.

The backend never silently approximates: callers outside the supported
class (Bárány translation, non-weakly-acyclic programs, trace
recording, step budgets too tight for the prefix) are *declined* via
:exc:`BatchUnsupported` / a ``None`` return, and
:meth:`repro.api.Session.sample` falls back to the scalar loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.applicability import IncrementalApplicability
from repro.core.chase import ChaseRun, run_chase_prepared
from repro.core.policies import ChasePolicy
from repro.core.terms import Const, Var
from repro.core.translate import (DetRule, ExistentialProgram, ExtRule,
                                  validate_params_in_theta)
from repro.engine.seminaive import seminaive_fixpoint
from repro.errors import ChaseError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

#: Trigger classifications of a layer firing's sampled fact.
NEVER, ALWAYS, PINNED = "never", "always", "pinned"


class BatchUnsupported(ChaseError):
    """The program/instance is outside the batched backend's class.

    Raised during :class:`BatchedChase` preparation;
    :meth:`repro.api.Session.sample` catches it and falls back to the
    scalar loop (identical draws to ``backend="scalar"``).
    """


@dataclass(frozen=True)
class _LayerFiring:
    """One existential firing of the shared sampling layer, prepared.

    ``head_args`` is the companion (3.B) head with ``None`` standing in
    at ``head_position`` for the sampled value; ``trigger`` / ``pinned``
    summarize the static analysis of whether the emitted head fact can
    enable further firings (``pinned`` holds the sampled values that
    would - only numeric values matter, samples are numbers).
    """

    aux_relation: str
    prefix: tuple
    distribution_key: tuple
    head_relation: str
    head_args: tuple
    head_position: int
    trigger: str
    pinned: frozenset


class BatchedChase:
    """A prepared batch sampler for one (translated program, instance).

    Construction performs all per-(program, instance) work: the shared
    deterministic fixpoint, the applicability bootstrap on the closed
    instance, companion lookup and the trigger analysis.
    :meth:`run_batch` then costs one vectorized draw per firing group
    plus fact materialization - independent of how many times it is
    called, so sessions cache the instance
    (:meth:`repro.api.Session.sample` keeps it alongside the scalar
    engine bases).
    """

    def __init__(self, translated: ExistentialProgram,
                 instance: Instance):
        if translated.semantics != "grohe":
            raise BatchUnsupported(
                "batched chase requires the per-rule (grohe) "
                "translation; the Bárány translation shares auxiliary "
                "relations across rules")
        self.translated = translated
        self.instance = instance
        det_rules = translated.deterministic_rules()
        self.closed = seminaive_fixpoint(det_rules, instance) \
            if det_rules else instance
        self.det_steps = len(self.closed) - len(instance)
        self._engine = IncrementalApplicability(translated, self.closed)
        self._companions = self._collect_companions()
        self._body_atoms = self._collect_body_atoms()
        self.layer = tuple(self._prepare_firing(firing)
                           for firing in self._engine.applicable())

    # -- preparation --------------------------------------------------------

    def _collect_companions(self) -> dict:
        """aux relation -> (companion DetRule, its aux body atom)."""
        companions: dict[str, tuple] = {}
        for rule in self.translated.rules:
            if not isinstance(rule, DetRule):
                continue
            for atom in rule.body:
                if atom.relation in self.translated.aux_relations:
                    if atom.relation in companions:
                        raise BatchUnsupported(
                            f"auxiliary relation {atom.relation!r} has "
                            "several companion rules")
                    companions[atom.relation] = (rule, atom)
        return companions

    def _collect_body_atoms(self) -> dict:
        """relation -> body atoms anywhere in ``Ĝ`` (aux atoms excluded).

        Auxiliary relations are excluded on purpose: under the per-rule
        translation an auxiliary fact only ever matches its own
        companion's auxiliary atom, and the companion's head is emitted
        directly by the layer (its ground head is a function of the
        auxiliary fact alone).
        """
        by_relation: dict[str, list] = {}
        for rule in self.translated.rules:
            for atom in rule.body:
                if atom.relation in self.translated.aux_relations:
                    continue
                by_relation.setdefault(atom.relation, []).append(atom)
        return by_relation

    def _prepare_firing(self, firing) -> _LayerFiring:
        if not firing.existential:
            raise BatchUnsupported(
                "deterministic firing survived the shared fixpoint "
                f"({firing!r}); instance outside the batched class")
        ext = self.translated.rules[firing.rule_index]
        if not isinstance(ext, ExtRule):
            raise BatchUnsupported(f"firing {firing!r} does not map to "
                                   "an existential rule")
        info = self.translated.aux_info[firing.relation]
        prefix = firing.values
        params = validate_params_in_theta(ext, prefix[info.n_carried:])
        companion_pair = self._companions.get(firing.relation)
        if companion_pair is None:
            raise BatchUnsupported(
                f"auxiliary relation {firing.relation!r} has no "
                "companion rule")
        companion, aux_atom = companion_pair
        head_args, head_position = self._ground_companion_head(
            companion, aux_atom, prefix)
        trigger, pinned = self._trigger_analysis(
            companion.head.relation, head_args, head_position)
        return _LayerFiring(
            aux_relation=firing.relation,
            prefix=prefix,
            distribution_key=(id(info.distribution), params),
            head_relation=companion.head.relation,
            head_args=head_args,
            head_position=head_position,
            trigger=trigger,
            pinned=frozenset(pinned))

    @staticmethod
    def _ground_companion_head(companion: DetRule, aux_atom,
                               prefix: tuple) -> tuple[tuple, int]:
        """The companion head as ground args with None at the sample slot.

        The auxiliary atom's terms are the carried head terms, the
        distribution parameters and finally the existential variable;
        matching them against the ground prefix binds every variable
        the companion head mentions (head variables are carried terms).
        """
        binding: dict = {}
        existential = aux_atom.terms[-1]
        for term, value in zip(aux_atom.terms[:-1], prefix):
            if isinstance(term, Var):
                binding[term] = value
        head_args: list = []
        head_position = -1
        for index, term in enumerate(companion.head.terms):
            if term == existential:
                if head_position >= 0:
                    raise BatchUnsupported(
                        "existential variable repeats in companion "
                        f"head {companion.head!r}")
                head_position = index
                head_args.append(None)
            elif isinstance(term, Const):
                head_args.append(term.value)
            elif isinstance(term, Var):
                if term not in binding:
                    raise BatchUnsupported(
                        f"companion head variable {term!r} not bound "
                        "by the auxiliary prefix")
                head_args.append(binding[term])
            else:
                raise BatchUnsupported(
                    f"unexpected companion head term {term!r}")
        if head_position < 0:
            raise BatchUnsupported(
                f"companion head {companion.head!r} does not mention "
                "the existential variable")
        return tuple(head_args), head_position

    def _trigger_analysis(self, relation: str, head_args: tuple,
                          position: int) -> tuple[str, set]:
        """Classify whether the emitted head fact can enable firings.

        The emitted fact is fixed across worlds except at ``position``
        (the sampled value).  It can only enable a new firing by
        matching some rule-body atom; for each candidate atom the fixed
        columns either rule the match out entirely, or pin the sampled
        value to one concrete constant, or leave it free (any sample
        triggers).  Worlds whose samples hit a pin (or any world, under
        ``always``) are split to the scalar engine; the rest provably
        have an empty applicable set and are final.
        """
        pinned: set = set()
        for atom in self._body_atoms.get(relation, ()):
            verdict = self._atom_pin(atom, head_args, position)
            if verdict is ALWAYS:
                return ALWAYS, set()
            if verdict is not None:
                pinned.update(verdict)
        return (PINNED, pinned) if pinned else (NEVER, pinned)

    @staticmethod
    def _atom_pin(atom, head_args: tuple, position: int):
        """None (can never match) | ALWAYS | set of pinned sample values."""
        if atom.arity != len(head_args):
            return None
        binding: dict = {}
        for index, term in enumerate(atom.terms):
            if index == position:
                continue
            value = head_args[index]
            if isinstance(term, Const):
                if term.value != value:
                    return None
            elif isinstance(term, Var):
                if term in binding and binding[term] != value:
                    return None
                binding[term] = value
            else:
                return None
        sample_term = atom.terms[position]
        if isinstance(sample_term, Const):
            return {sample_term.value}
        if isinstance(sample_term, Var):
            if sample_term in binding:
                return {binding[sample_term]}
            return ALWAYS
        return None

    # -- execution ----------------------------------------------------------

    def run_batch(self, size: int, batch_rng: np.random.Generator,
                  world_rngs, policy: ChasePolicy,
                  max_steps: int) -> tuple[list[ChaseRun], dict] | None:
        """Sample ``size`` chase runs; None declines (budget too tight).

        ``world_rngs`` is a zero-argument callable producing the
        per-world generators used by split worlds only (lazy: fully
        batched runs never touch it).  The returned diagnostics dict
        reports how many worlds stayed vectorized.
        """
        layer = self.layer
        # Conservative budget bound: prefix facts + one auxiliary and
        # one head fact per firing.  Tighter-budget callers get exact
        # truncation semantics from the scalar loop instead.
        if self.det_steps + 2 * len(layer) > max_steps:
            return None
        if not layer:
            run = ChaseRun(self.closed, True, self.det_steps)
            return [run] * size, {"n_split": 0, "n_firings": 0}

        draws = self._draw_layer(size, batch_rng)
        split = np.zeros(size, dtype=bool)
        for index, firing in enumerate(layer):
            if firing.trigger == ALWAYS:
                split[:] = True
                break
            if firing.trigger == PINNED:
                numeric = [value for value in firing.pinned
                           if isinstance(value, (int, float))
                           and not isinstance(value, bool)]
                if numeric:
                    split |= np.isin(draws[index],
                                     np.asarray(numeric))

        values = [column.tolist() for column in draws]
        rngs = None
        runs: list[ChaseRun] = []
        for world in range(size):
            facts = []
            new_heads = set()
            for index, firing in enumerate(layer):
                sampled = values[index][world]
                facts.append(Fact(firing.aux_relation,
                                  firing.prefix + (sampled,)))
                head_args = list(firing.head_args)
                head_args[firing.head_position] = sampled
                head = Fact(firing.head_relation, tuple(head_args))
                facts.append(head)
                if head not in self.closed:
                    new_heads.add(head)
            steps = self.det_steps + len(layer) + len(new_heads)
            current = self.closed.add_all(facts)
            if not split[world]:
                runs.append(ChaseRun(current, True, steps))
                continue
            if rngs is None:
                rngs = world_rngs()
            state = self._engine.fork()
            for fact in facts:
                state.add_fact(fact)
            run = run_chase_prepared(
                self.translated, state, current, policy, rngs[world],
                max_steps - steps)
            runs.append(ChaseRun(run.instance, run.terminated,
                                 steps + run.steps))
        return runs, {"n_split": int(split.sum()),
                      "n_firings": len(layer)}

    def _draw_layer(self, size: int,
                    rng: np.random.Generator) -> list[np.ndarray]:
        """One numpy array of ``size`` samples per layer firing.

        Firings sharing a (distribution, parameters) pair are served by
        a single ``sample_batch`` call of ``size * count`` draws - the
        draws are iid, so slicing the flat array per firing preserves
        the product law.
        """
        groups: dict[tuple, list[int]] = {}
        for index, firing in enumerate(self.layer):
            groups.setdefault(firing.distribution_key, []).append(index)
        draws: list[np.ndarray | None] = [None] * len(self.layer)
        for key, members in groups.items():
            _ident, params = key
            info = self.translated.aux_info[
                self.layer[members[0]].aux_relation]
            flat = np.asarray(info.distribution.sample_batch(
                params, size * len(members), rng))
            if flat.shape != (size * len(members),):
                raise ChaseError(
                    f"{info.distribution.name}.sample_batch returned "
                    f"shape {flat.shape}, expected "
                    f"({size * len(members)},)")
            for offset, index in enumerate(members):
                draws[index] = flat[offset * size:(offset + 1) * size]
        return draws  # type: ignore[return-value]
