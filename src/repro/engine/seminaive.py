"""Deterministic Datalog evaluation: naive and semi-naive fixpoints.

GDatalog degenerates to plain Datalog when no rule is random; moreover
the *deterministic* rules of a translated program ``Ĝ`` (the (3.B)
companions and all originally-deterministic rules) form a Datalog
program whose fixpoint the chase interleaves with sampling.  This
module implements the classic bottom-up engines:

* :func:`naive_fixpoint` - re-derive everything until nothing is new
  (the reference implementation for differential testing);
* :func:`seminaive_fixpoint` - delta-driven: each iteration only joins
  rule bodies that touch at least one newly-derived fact.

Both return the least fixpoint ``T_P^ω(D)`` as a new instance.  They are
exposed publicly (a usable Datalog engine in their own right) and are
benchmarked against each other in the engine-ablation experiment (E13).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.program import Program
from repro.core.rules import Rule
from repro.engine.matching import (IndexedSource, match_atoms,
                                   match_atoms_with_pinned)
from repro.errors import UnsupportedProgramError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


def _require_deterministic(rules: Iterable[Rule]) -> tuple[Rule, ...]:
    rules = tuple(rules)
    for rule in rules:
        if rule.is_random():
            raise UnsupportedProgramError(
                f"Datalog evaluation requires deterministic rules; "
                f"{rule!r} samples")
    return rules


def naive_fixpoint(program: Program | Sequence[Rule],
                   instance: Instance,
                   max_iterations: int | None = None) -> Instance:
    """Least fixpoint by naive iteration.

    Every iteration evaluates every rule body over the whole current
    instance.  Quadratic and slow - kept as the differential-testing
    baseline for :func:`seminaive_fixpoint`.
    """
    rules = _require_deterministic(
        program.rules if isinstance(program, Program) else program)
    current = instance
    iterations = 0
    while True:
        source = IndexedSource(current.facts)
        new_facts: set[Fact] = set()
        for rule in rules:
            for binding in match_atoms(rule.body, source):
                derived = rule.head.ground(binding)
                if derived not in current:
                    new_facts.add(derived)
        if not new_facts:
            return current
        current = current.add_all(new_facts)
        iterations += 1
        if max_iterations is not None and iterations >= max_iterations:
            return current


def seminaive_fixpoint(program: Program | Sequence[Rule],
                       instance: Instance,
                       max_iterations: int | None = None) -> Instance:
    """Least fixpoint by semi-naive (delta) iteration.

    Iteration ``i`` only considers body matches that use at least one
    fact derived in iteration ``i − 1``, by pinning each body atom to
    each delta fact in turn.  First iteration seeds with the full
    instance as delta (covering bodiless rules via the empty match).
    """
    closed, _source = seminaive_closure(program, instance,
                                        max_iterations)
    return closed


def seminaive_closure(program: Program | Sequence[Rule],
                      instance: Instance,
                      max_iterations: int | None = None,
                      ) -> tuple[Instance, IndexedSource]:
    """:func:`seminaive_fixpoint` plus its warm :class:`IndexedSource`.

    The returned source mirrors the returned instance exactly, with
    every per-signature hash index the evaluation built still attached.
    Callers that keep matching against the fixpoint (the batched chase
    bootstraps its applicability engine on it) reuse the source instead
    of re-indexing the closed instance from scratch.
    """
    rules = _require_deterministic(
        program.rules if isinstance(program, Program) else program)
    source = IndexedSource(instance.facts)
    all_facts: set[Fact] = set(instance.facts)

    # Iteration 0: full evaluation (equivalently: delta = everything).
    delta: set[Fact] = set()
    for rule in rules:
        for binding in match_atoms(rule.body, source):
            derived = rule.head.ground(binding)
            if derived not in all_facts:
                delta.add(derived)

    # Group rules by body relation for delta dispatch.
    by_relation: dict[str, list[tuple[Rule, int]]] = {}
    for rule in rules:
        for position, body_atom in enumerate(rule.body):
            by_relation.setdefault(body_atom.relation, []).append(
                (rule, position))

    iterations = 0
    while delta:
        for f in delta:
            all_facts.add(f)
            source.add_fact(f)
        next_delta: set[Fact] = set()
        for f in delta:
            for rule, position in by_relation.get(f.relation, ()):
                for binding in match_atoms_with_pinned(
                        rule.body, source, position, f):
                    derived = rule.head.ground(binding)
                    if derived not in all_facts and \
                            derived not in next_delta:
                        next_delta.add(derived)
        delta = next_delta
        iterations += 1
        if max_iterations is not None and iterations >= max_iterations:
            for f in delta:
                all_facts.add(f)
                source.add_fact(f)
            break
    return Instance(all_facts), source


def evaluate_datalog(program: Program | Sequence[Rule],
                     instance: Instance,
                     engine: str = "seminaive") -> Instance:
    """Evaluate a deterministic Datalog program to its fixpoint.

    ``engine`` selects ``"naive"`` or ``"seminaive"`` (default).
    """
    if engine == "naive":
        return naive_fixpoint(program, instance)
    if engine == "seminaive":
        return seminaive_fixpoint(program, instance)
    raise ValueError(f"unknown engine {engine!r}")
