"""Deprecation machinery for the legacy flat-function API.

Since the :mod:`repro.api` facade became the primary public surface,
the historical top-level entry points (``run_chase``, ``exact_spdb``,
``sample_spdb``, the conditioning functions, ...) live on as thin
delegating shims.  Each shim announces itself exactly like this module
prescribes so that tests can assert the deprecation contract uniformly.
"""

from __future__ import annotations

import warnings


def warn_legacy(old: str, new: str) -> None:
    """Emit the standard :class:`DeprecationWarning` for a legacy shim.

    ``stacklevel=3`` points the warning at the *caller* of the shim
    (warn_legacy -> shim -> caller), which is what linters and test
    harnesses want to see.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.api - compile "
        f"once with repro.compile(...), then infer many times through "
        f"the returned Session)",
        DeprecationWarning, stacklevel=3)
