"""Numeric verification of Definition 2.1 and Fact 2.3 conditions.

The paper's measurability machinery (Fact 2.3, Gaudard & Hadwin)
requires the parameterized family to satisfy three conditions:

1. **normalization** - ``∫ ψ⟨θ⟩ dµ = 1`` for every ``θ``
   (Definition 2.1);
2. **continuity in θ** - ``θ ↦ ψ⟨θ⟩(x)`` continuous for every ``x``;
3. **identifiability** - ``θ ≠ θ' ⇒ P_ψ⟨θ⟩ ≠ P_ψ⟨θ'⟩``.

These cannot be proven at runtime, but they can be *checked
numerically* at concrete parameters - catching broken custom
distributions before they corrupt a program's semantics.  The checks
are used by the test suite across the whole built-in catalogue and are
exported for users registering their own families.

All verifiers return booleans (within tolerances);
:func:`fact_2_3_report` bundles them into a readable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import ParameterizedDistribution


def verify_normalization(distribution: ParameterizedDistribution,
                         params: Sequence, tolerance: float = 5e-3,
                         grid_width: float = 60.0,
                         grid_points: int = 50001) -> bool:
    """Check ``∫ ψ⟨θ⟩ dµ ≈ 1`` at one parameter point.

    Discrete families sum the density over the truncated support (the
    truncation itself aims for mass ``1 − 1e-9``, so an unnormalized
    pmf shows up as a sum far from 1).  Continuous families are
    integrated by trapezoid over an adaptively-narrowed grid: a coarse
    scan locates where the density is non-negligible, then a fine pass
    integrates that region - keeping the discretization error at jump
    discontinuities (Uniform/Exponential edges) below ``tolerance``.
    """
    params = distribution.validate_params(params)
    if distribution.is_discrete:
        pairs, _residue = distribution.truncated_support(params, 1e-9)
        total = sum(mass for _, mass in pairs)
        return abs(total - 1.0) <= tolerance + 1e-6
    try:
        centre = distribution.mean(params)
    except NotImplementedError:
        centre = 0.0
    coarse = np.linspace(centre - grid_width, centre + grid_width, 2001)
    values = np.asarray([distribution.density(params, float(x))
                         for x in coarse])
    alive = np.nonzero(values > 1e-13)[0]
    if alive.size == 0:
        return False
    margin = coarse[1] - coarse[0]
    low = float(coarse[alive[0]]) - margin
    high = float(coarse[alive[-1]]) + margin
    xs = np.linspace(low, high, grid_points)
    ys = np.asarray([distribution.density(params, float(x))
                     for x in xs])
    return abs(float(np.trapezoid(ys, xs)) - 1.0) <= tolerance


def verify_parameter_continuity(distribution: ParameterizedDistribution,
                                params: Sequence, x,
                                which: int = 0,
                                steps: Sequence[float] = (1e-2, 1e-4),
                                tolerance_ratio: float = 0.2) -> bool:
    """Check ``θ ↦ ψ⟨θ⟩(x)`` looks continuous at one point.

    Perturbs parameter ``which`` by decreasing steps; the density
    change must shrink with the step (up to ``tolerance_ratio`` slack
    for flat regions, where both changes are ~0).  Families with a
    *discrete* parameter space (integer parameters) are vacuously
    continuous: the perturbed point lies outside ``Θ_ψ``, and every
    function on a discrete space is continuous.
    """
    from repro.errors import DistributionError
    params = list(distribution.validate_params(params))
    base = distribution.density(tuple(params), x)
    changes = []
    for step in steps:
        perturbed = list(params)
        perturbed[which] = perturbed[which] + step
        try:
            value = distribution.density(tuple(perturbed), x)
        except DistributionError:
            # Perturbation leaves Θ_ψ: discrete parameter coordinate.
            return True
        changes.append(abs(value - base))
    if changes[0] <= 1e-12:
        return changes[-1] <= 1e-9
    return changes[-1] <= changes[0] * tolerance_ratio + 1e-12


def distribution_distance(distribution: ParameterizedDistribution,
                          first: Sequence, second: Sequence,
                          grid_width: float = 60.0,
                          grid_points: int = 4001) -> float:
    """A numeric lower bound on ``TV(P_ψ⟨θ⟩, P_ψ⟨θ'⟩)``.

    Discrete: exact TV on the union of truncated supports.  Continuous:
    half the L1 distance of densities on a wide grid (trapezoid).
    """
    first = distribution.validate_params(first)
    second = distribution.validate_params(second)
    if distribution.is_discrete:
        support: dict = {}
        for params in (first, second):
            for value, _mass in \
                    distribution.truncated_support(params, 1e-10)[0]:
                support[value] = None
        return 0.5 * sum(
            abs(distribution.density(first, value)
                - distribution.density(second, value))
            for value in support)
    try:
        centre = 0.5 * (distribution.mean(first)
                        + distribution.mean(second))
    except NotImplementedError:
        centre = 0.0
    xs = np.linspace(centre - grid_width, centre + grid_width,
                     grid_points)
    gaps = np.asarray([
        abs(distribution.density(first, float(x))
            - distribution.density(second, float(x))) for x in xs])
    return 0.5 * float(np.trapezoid(gaps, xs))


def verify_identifiability(distribution: ParameterizedDistribution,
                           first: Sequence, second: Sequence,
                           minimum_distance: float = 1e-6) -> bool:
    """Check distinct parameters induce distinguishable measures."""
    if distribution.validate_params(first) == \
            distribution.validate_params(second):
        return True  # same point of Θ: nothing to distinguish
    return distribution_distance(distribution, first, second) \
        >= minimum_distance


def verify_batch_consistency(distribution: ParameterizedDistribution,
                             params: Sequence, n: int = 4000,
                             seed: int = 0,
                             alpha: float = 1e-4) -> bool:
    """Check ``sample_batch`` draws from the same law as ``sample``.

    The batched chase engine (:mod:`repro.engine.batched`) substitutes
    one :meth:`sample_batch` call for ``n`` scalar :meth:`sample`
    calls, so a custom family whose two samplers disagree corrupts
    every batched inference silently.  This runs a two-sample
    Kolmogorov-Smirnov test between the two samplers at one parameter
    point (with a generous critical value - it separates wrong-law
    bugs from Monte-Carlo noise, not subtle miscalibrations).
    """
    from repro.measures.empirical import (ks_critical_value,
                                          ks_two_sample)
    params = distribution.validate_params(params)
    rng = np.random.default_rng(seed)
    batch = [float(x) for x in
             distribution.sample_batch(params, n, rng)]
    scalar = [float(distribution.sample(params, rng))
              for _ in range(n)]
    statistic = ks_two_sample(batch, scalar)
    return statistic <= 1.3 * ks_critical_value(n, n, alpha)


@dataclass(frozen=True)
class Fact23Report:
    """Outcome of the Fact 2.3 condition checks at sample parameters."""

    distribution: str
    normalization_ok: bool
    continuity_ok: bool
    identifiability_ok: bool

    def all_ok(self) -> bool:
        return (self.normalization_ok and self.continuity_ok
                and self.identifiability_ok)

    def __repr__(self) -> str:
        flags = [
            ("normalization", self.normalization_ok),
            ("θ-continuity", self.continuity_ok),
            ("identifiability", self.identifiability_ok),
        ]
        inner = ", ".join(f"{name}={'ok' if ok else 'FAIL'}"
                          for name, ok in flags)
        return f"Fact23Report({self.distribution}: {inner})"


def fact_2_3_report(distribution: ParameterizedDistribution,
                    parameter_points: Sequence[Sequence],
                    test_values: Sequence) -> Fact23Report:
    """Run all three checks over sample parameters and values.

    ``parameter_points`` needs at least two distinct points for the
    identifiability check; ``test_values`` are the ``x`` points for the
    continuity check.
    """
    normalization = all(verify_normalization(distribution, params)
                        for params in parameter_points)
    continuity = all(
        verify_parameter_continuity(distribution, params, x)
        for params in parameter_points for x in test_values)
    identifiability = True
    for i, first in enumerate(parameter_points):
        for second in parameter_points[i + 1:]:
            if not verify_identifiability(distribution, first, second):
                identifiability = False
    return Fact23Report(distribution.name, normalization, continuity,
                        identifiability)
