"""Finite mixtures of parameterized distributions (cf. Remark 2.4).

Remark 2.4 of the paper considers distributions mixing discrete and
continuous parts, to be handled "by considering these parts
separately".  This module implements the unambiguous same-kind case: a
:class:`FiniteMixture` of components that are either all discrete or
all continuous, whose density is the weighted sum of component
densities with respect to the shared base measure - a genuine
parameterized distribution in the sense of Definition 2.1.

Components carry *fixed* parameters (the mixture itself takes no
program-level parameters), so a mixture is registered once and used as
a zero-parameter random term, e.g.::

    registry.register(FiniteMixture("BimodalNoise", [
        (0.5, Normal(), (-2.0, 1.0)),
        (0.5, Normal(), (2.0, 1.0)),
    ]))
    Program.parse("Noise(BimodalNoise<>) :- true.", registry)

Mixing a discrete with a continuous component is rejected: the sum of
a pmf and a pdf is not a density against either base measure, exactly
the subtlety Remark 2.4 defers.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Sequence

import numpy as np

from repro.distributions.base import ParameterizedDistribution
from repro.errors import DistributionError


class FiniteMixture(ParameterizedDistribution):
    """A fixed finite mixture ``Σ w_i · ψ_i⟨θ_i⟩`` (same-kind components).

    ``components`` is a sequence of ``(weight, distribution, params)``
    triples; weights must be positive and sum to 1.
    """

    param_arity = 0

    def __init__(self, name: str,
                 components: Sequence[tuple[float,
                                            ParameterizedDistribution,
                                            Sequence]]):
        if not components:
            raise DistributionError("mixture needs at least one "
                                    "component")
        self.name = name
        prepared = []
        kinds = set()
        total = 0.0
        for weight, distribution, params in components:
            weight = float(weight)
            if weight <= 0.0:
                raise DistributionError(
                    f"{name}: component weights must be positive")
            validated = distribution.validate_params(tuple(params))
            prepared.append((weight, distribution, validated))
            kinds.add(distribution.is_discrete)
            total += weight
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(
                f"{name}: weights must sum to 1 (got {total})")
        if len(kinds) != 1:
            raise DistributionError(
                f"{name}: mixing discrete and continuous components "
                "has no common base measure (Remark 2.4); split the "
                "model into separate rules instead")
        self.components = tuple(prepared)
        self.is_discrete = kinds.pop()

    def _check_params(self, params: tuple) -> tuple:
        return ()

    def density(self, params: Sequence[Any], x: Any) -> float:
        self.validate_params(params)
        return math.fsum(
            weight * distribution.density(component_params, x)
            for weight, distribution, component_params
            in self.components)

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> Any:
        self.validate_params(params)
        u = rng.random()
        cumulative = 0.0
        for weight, distribution, component_params in self.components:
            cumulative += weight
            if u < cumulative:
                return distribution.sample(component_params, rng)
        weight, distribution, component_params = self.components[-1]
        return distribution.sample(component_params, rng)

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        self.validate_params(params)
        size = int(size)
        weights = np.asarray([w for w, _d, _p in self.components])
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0  # guard against fsum drift at the edge
        choices = np.searchsorted(cumulative, rng.random(size),
                                  side="right")
        parts = []
        for index, (_w, distribution, component_params) in \
                enumerate(self.components):
            count = int(np.count_nonzero(choices == index))
            parts.append(distribution.sample_batch(
                component_params, count, rng) if count else None)
        dtype = np.result_type(*(part.dtype for part in parts
                                 if part is not None)) \
            if any(part is not None for part in parts) else float
        out = np.empty(size, dtype=dtype)
        for index, part in enumerate(parts):
            if part is not None:
                out[choices == index] = part
        return out

    def support(self, params: Sequence[Any]) -> Iterator[Any]:
        if not self.is_discrete:
            return super().support(params)
        seen: set = set()

        def union() -> Iterator[Any]:
            # Round-robin over component supports so infinite supports
            # do not starve later components.
            iterators = [distribution.support(component_params)
                         for _w, distribution, component_params
                         in self.components]
            alive = list(iterators)
            while alive:
                still_alive = []
                for iterator in alive:
                    try:
                        value = next(iterator)
                    except StopIteration:
                        continue
                    still_alive.append(iterator)
                    if value not in seen:
                        seen.add(value)
                        yield value
                alive = still_alive

        return union()

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return self.is_discrete and all(
            distribution.support_is_finite(component_params)
            for _w, distribution, component_params in self.components)

    def cdf(self, params: Sequence[Any], x: float) -> float:
        self.validate_params(params)
        return math.fsum(
            weight * distribution.cdf(component_params, x)
            for weight, distribution, component_params
            in self.components)

    def mean(self, params: Sequence[Any]) -> float:
        return math.fsum(
            weight * distribution.mean(component_params)
            for weight, distribution, component_params
            in self.components)

    def variance(self, params: Sequence[Any]) -> float:
        # Law of total variance over the component indicator.
        overall_mean = self.mean(params)
        total = 0.0
        for weight, distribution, component_params in self.components:
            component_mean = distribution.mean(component_params)
            total += weight * (distribution.variance(component_params)
                               + (component_mean - overall_mean) ** 2)
        return total
