"""Discrete parameterized distributions (counting base measure).

The catalogue covers Example 2.2's discrete families (Flip, Binomial,
Poisson) and further standard families used by the examples, workloads
and tests.  Each class documents its parameter space ``Θ_ψ``; Fact 2.3's
regularity conditions (continuity in θ, identifiability) hold for all of
them, as the paper notes for "most common parametric families".
"""

from __future__ import annotations

import math
from itertools import count
from typing import Any, Iterator, Sequence

import numpy as np

from repro.distributions.base import (ParameterizedDistribution, as_float,
                                      as_int, require)
from repro.pdb.facts import normalize_value


class Flip(ParameterizedDistribution):
    """A biased coin: ``Flip⟨p⟩(1) = p``, ``Flip⟨p⟩(0) = 1 − p``.

    ``Θ_Flip = [0, 1]`` (Example 2.2).  Values are the integers 0/1.
    """

    name = "Flip"
    param_arity = 1
    is_discrete = True

    def _check_params(self, params: tuple) -> tuple:
        p = as_float(params[0], self.name, "bias")
        require(0.0 <= p <= 1.0, self.name, f"bias must be in [0,1]: {p}")
        return (p,)

    def density(self, params: Sequence[Any], x: Any) -> float:
        (p,) = self.validate_params(params)
        x = normalize_value(x)
        if x == 1:
            return p
        if x == 0:
            return 1.0 - p
        return 0.0

    def sample(self, params: Sequence[Any], rng: np.random.Generator) -> int:
        (p,) = self.validate_params(params)
        return int(rng.random() < p)

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        (p,) = self.validate_params(params)
        return (rng.random(size) < p).astype(np.int64)

    def support(self, params: Sequence[Any]) -> Iterator[int]:
        yield 0
        yield 1

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return True

    def mean(self, params: Sequence[Any]) -> float:
        (p,) = self.validate_params(params)
        return p

    def variance(self, params: Sequence[Any]) -> float:
        (p,) = self.validate_params(params)
        return p * (1.0 - p)


class Bernoulli(Flip):
    """Alias of :class:`Flip` under its statistics name.

    Registered separately: Example 1.1's program ``G'_0`` relies on two
    distributions that are equal as measures but differ *by name*
    (``Flip`` vs ``Flip'``), which changes the semantics of [3] but not
    ours.  Having a genuine same-law/different-name pair in the registry
    lets tests reproduce that discussion.
    """

    name = "Bernoulli"


class Binomial(ParameterizedDistribution):
    """Binomial: number of successes among ``n`` trials of bias ``p``.

    ``Θ = {(n, p) : n ∈ N, p ∈ [0, 1]}``.  (Example 2.2 parameterizes by
    ``(n, k)``; we use the conventional ``(n, p)`` with finite support
    ``{0..n}`` per parameter - the union over parameters is infinite,
    exactly the phenomenon the example highlights.)
    """

    name = "Binomial"
    param_arity = 2
    is_discrete = True

    def _check_params(self, params: tuple) -> tuple:
        n = as_int(params[0], self.name, "n")
        p = as_float(params[1], self.name, "p")
        require(n >= 0, self.name, f"n must be >= 0: {n}")
        require(0.0 <= p <= 1.0, self.name, f"p must be in [0,1]: {p}")
        return (n, p)

    def density(self, params: Sequence[Any], x: Any) -> float:
        n, p = self.validate_params(params)
        x = normalize_value(x)
        if not isinstance(x, (int, float)) or not float(x).is_integer():
            return 0.0
        k = int(x)
        if k < 0 or k > n:
            return 0.0
        return float(math.comb(n, k) * (p ** k) * ((1.0 - p) ** (n - k)))

    def sample(self, params: Sequence[Any], rng: np.random.Generator) -> int:
        n, p = self.validate_params(params)
        return int(rng.binomial(n, p))

    def sample_many(self, params: Sequence[Any],
                    rng: np.random.Generator, count: int) -> list:
        n, p = self.validate_params(params)
        return [int(v) for v in rng.binomial(n, p, size=count)]

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        n, p = self.validate_params(params)
        return rng.binomial(n, p, size=size).astype(np.int64)

    def support(self, params: Sequence[Any]) -> Iterator[int]:
        n, _p = self.validate_params(params)
        return iter(range(n + 1))

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return True

    def mean(self, params: Sequence[Any]) -> float:
        n, p = self.validate_params(params)
        return n * p

    def variance(self, params: Sequence[Any]) -> float:
        n, p = self.validate_params(params)
        return n * p * (1.0 - p)


class Poisson(ParameterizedDistribution):
    """Poisson: ``ψ⟨λ⟩(k) = λ^k e^{−λ} / k!`` with ``Θ = R_{>0}``.

    Infinite support for every parameter (Example 2.2); exact inference
    relies on :meth:`truncated_support` with explicit residue mass.
    """

    name = "Poisson"
    param_arity = 1
    is_discrete = True

    def _check_params(self, params: tuple) -> tuple:
        lam = as_float(params[0], self.name, "rate")
        require(lam > 0.0, self.name, f"rate must be > 0: {lam}")
        return (lam,)

    def density(self, params: Sequence[Any], x: Any) -> float:
        (lam,) = self.validate_params(params)
        x = normalize_value(x)
        if not isinstance(x, (int, float)) or not float(x).is_integer():
            return 0.0
        k = int(x)
        if k < 0:
            return 0.0
        return float(math.exp(k * math.log(lam) - lam - math.lgamma(k + 1)))

    def sample(self, params: Sequence[Any], rng: np.random.Generator) -> int:
        (lam,) = self.validate_params(params)
        return int(rng.poisson(lam))

    def sample_many(self, params: Sequence[Any],
                    rng: np.random.Generator, n: int) -> list:
        (lam,) = self.validate_params(params)
        return [int(v) for v in rng.poisson(lam, size=n)]

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        (lam,) = self.validate_params(params)
        return rng.poisson(lam, size=size).astype(np.int64)

    def support(self, params: Sequence[Any]) -> Iterator[int]:
        return count(0)

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return False

    def mean(self, params: Sequence[Any]) -> float:
        (lam,) = self.validate_params(params)
        return lam

    def variance(self, params: Sequence[Any]) -> float:
        (lam,) = self.validate_params(params)
        return lam


class Geometric(ParameterizedDistribution):
    """Geometric on {0, 1, 2, ...}: failures before the first success.

    ``ψ⟨p⟩(k) = (1−p)^k p`` with ``Θ = (0, 1]``.
    """

    name = "Geometric"
    param_arity = 1
    is_discrete = True

    def _check_params(self, params: tuple) -> tuple:
        p = as_float(params[0], self.name, "success probability")
        require(0.0 < p <= 1.0, self.name, f"p must be in (0,1]: {p}")
        return (p,)

    def density(self, params: Sequence[Any], x: Any) -> float:
        (p,) = self.validate_params(params)
        x = normalize_value(x)
        if not isinstance(x, (int, float)) or not float(x).is_integer():
            return 0.0
        k = int(x)
        if k < 0:
            return 0.0
        return float(((1.0 - p) ** k) * p)

    def sample(self, params: Sequence[Any], rng: np.random.Generator) -> int:
        (p,) = self.validate_params(params)
        # numpy's geometric counts trials (support {1, 2, ...}); shift.
        return int(rng.geometric(p)) - 1

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        (p,) = self.validate_params(params)
        # Same trials-to-failures shift as the scalar sampler.
        return rng.geometric(p, size=size).astype(np.int64) - 1

    def support(self, params: Sequence[Any]) -> Iterator[int]:
        return count(0)

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return False

    def mean(self, params: Sequence[Any]) -> float:
        (p,) = self.validate_params(params)
        return (1.0 - p) / p

    def variance(self, params: Sequence[Any]) -> float:
        (p,) = self.validate_params(params)
        return (1.0 - p) / (p * p)


class DiscreteUniform(ParameterizedDistribution):
    """Uniform over the integer range ``{low, ..., high}``.

    ``Θ = {(low, high) ∈ Z² : low <= high}``.
    """

    name = "DiscreteUniform"
    param_arity = 2
    is_discrete = True

    def _check_params(self, params: tuple) -> tuple:
        low = as_int(params[0], self.name, "low")
        high = as_int(params[1], self.name, "high")
        require(low <= high, self.name, f"need low <= high: {low}, {high}")
        return (low, high)

    def density(self, params: Sequence[Any], x: Any) -> float:
        low, high = self.validate_params(params)
        x = normalize_value(x)
        if not isinstance(x, (int, float)) or not float(x).is_integer():
            return 0.0
        k = int(x)
        if low <= k <= high:
            return 1.0 / (high - low + 1)
        return 0.0

    def sample(self, params: Sequence[Any], rng: np.random.Generator) -> int:
        low, high = self.validate_params(params)
        return int(rng.integers(low, high + 1))

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        low, high = self.validate_params(params)
        return rng.integers(low, high + 1, size=size).astype(np.int64)

    def support(self, params: Sequence[Any]) -> Iterator[int]:
        low, high = self.validate_params(params)
        return iter(range(low, high + 1))

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return True

    def mean(self, params: Sequence[Any]) -> float:
        low, high = self.validate_params(params)
        return (low + high) / 2.0

    def variance(self, params: Sequence[Any]) -> float:
        low, high = self.validate_params(params)
        n = high - low + 1
        return (n * n - 1) / 12.0


class Categorical(ParameterizedDistribution):
    """Categorical over {0, ..., k−1} with explicit probability weights.

    Variadic: the parameters *are* the weights, which must be
    non-negative and sum to 1 (within tolerance).  ``Θ`` is the
    probability simplex of the given dimension.
    """

    name = "Categorical"
    param_arity = -1  # variadic; validate_params overridden
    is_discrete = True

    def validate_params(self, params: Sequence[Any]) -> tuple:
        weights = tuple(as_float(w, self.name, "weight") for w in params)
        require(len(weights) >= 1, self.name, "needs at least one weight")
        require(all(w >= 0.0 for w in weights), self.name,
                f"weights must be non-negative: {weights}")
        total = math.fsum(weights)
        require(abs(total - 1.0) <= 1e-9, self.name,
                f"weights must sum to 1 (got {total})")
        return weights

    def _check_params(self, params: tuple) -> tuple:
        return self.validate_params(params)

    def density(self, params: Sequence[Any], x: Any) -> float:
        weights = self.validate_params(params)
        x = normalize_value(x)
        if not isinstance(x, (int, float)) or not float(x).is_integer():
            return 0.0
        k = int(x)
        if 0 <= k < len(weights):
            return weights[k]
        return 0.0

    def sample(self, params: Sequence[Any], rng: np.random.Generator) -> int:
        weights = self.validate_params(params)
        return int(rng.choice(len(weights), p=np.asarray(weights)))

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        weights = self.validate_params(params)
        return rng.choice(len(weights), size=size,
                          p=np.asarray(weights)).astype(np.int64)

    def support(self, params: Sequence[Any]) -> Iterator[int]:
        weights = self.validate_params(params)
        return iter(range(len(weights)))

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return True

    def mean(self, params: Sequence[Any]) -> float:
        weights = self.validate_params(params)
        return math.fsum(k * w for k, w in enumerate(weights))

    def variance(self, params: Sequence[Any]) -> float:
        weights = self.validate_params(params)
        mean = self.mean(params)
        return math.fsum(w * (k - mean) ** 2
                         for k, w in enumerate(weights))
