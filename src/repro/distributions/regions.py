"""Feasible regions for conditioned draws.

The backward evidence pass (:mod:`repro.core.backward`) derives, for
each sampled position that can reach an observed relation, a *feasible
region*: the set of values the draw must land in for the evidence to
have a chance of holding.  A :class:`Region` is the closed-under-
intersection-and-union representation of such sets:

* a finite **pin set** of exact values (discrete draws, or continuous
  draws disintegrated at a point), and/or
* a finite union of real **intervals** with configurable endpoint
  closure (continuous truncations, or integer ranges for discrete
  draws constrained through an :class:`repro.pdb.events.Interval`).

Regions are frozen and hashable so the batched engine can use them as
part of a draw-pooling key (all worlds sharing ``(distribution,
params, region)`` draw from one truncated ``sample_batch_truncated``
call).  Soundness of guided conditioning only needs regions to be
*over*-approximations of the feasible set - intersections and unions
here are exact, and every constructor keeps the invariant that the
represented set is exactly ``points ∪ intervals``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.pdb.facts import normalize_value

_INF = float("inf")


def _point_sort_key(value: Any) -> tuple:
    """Total order over mixed-type pin values (numbers first)."""
    if isinstance(value, bool):
        return (1, "", str(value))
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    return (2, "", str(value))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _interval_contains(interval: tuple, value: Any) -> bool:
    if not _is_number(value):
        return False
    low, high, closed_left, closed_right = interval
    x = float(value)
    if x < low or (x == low and not closed_left):
        return False
    if x > high or (x == high and not closed_right):
        return False
    return True


def _intersect_pair(first: tuple, second: tuple) -> tuple | None:
    """Intersection of two intervals (None when empty)."""
    a_low, a_high, a_cl, a_cr = first
    b_low, b_high, b_cl, b_cr = second
    if a_low > b_low:
        low, closed_left = a_low, a_cl
    elif b_low > a_low:
        low, closed_left = b_low, b_cl
    else:
        low, closed_left = a_low, a_cl and b_cl
    if a_high < b_high:
        high, closed_right = a_high, a_cr
    elif b_high < a_high:
        high, closed_right = b_high, b_cr
    else:
        high, closed_right = a_high, a_cr and b_cr
    if low > high:
        return None
    if low == high and not (closed_left and closed_right):
        return None
    return (low, high, closed_left, closed_right)


def _merge_intervals(intervals: Iterable[tuple]) -> tuple[tuple, ...]:
    """Sorted union of intervals, overlapping/touching runs merged."""
    pending = sorted(intervals,
                     key=lambda iv: (iv[0], not iv[2], iv[1], not iv[3]))
    merged: list[list] = []
    for low, high, closed_left, closed_right in pending:
        if merged:
            last = merged[-1]
            touches = low < last[1] or (
                low == last[1] and (closed_left or last[3]))
            if touches:
                if low == last[0]:
                    last[2] = last[2] or closed_left
                if high > last[1]:
                    last[1], last[3] = high, closed_right
                elif high == last[1]:
                    last[3] = last[3] or closed_right
                continue
        merged.append([low, high, closed_left, closed_right])
    return tuple(tuple(entry) for entry in merged)


@dataclass(frozen=True)
class Region:
    """A pin set plus a union of intervals; the set is their union."""

    points: tuple = ()
    intervals: tuple = ()

    def __post_init__(self):
        intervals = []
        points = [normalize_value(p) for p in self.points]
        for interval in self.intervals:
            low, high, closed_left, closed_right = interval
            low, high = float(low), float(high)
            if low > high:
                continue
            if low == high:
                if closed_left and closed_right:
                    points.append(normalize_value(low))
                continue
            intervals.append((low, high, bool(closed_left),
                              bool(closed_right)))
        merged = _merge_intervals(intervals)
        unique: list = []
        for point in points:
            if point in unique:
                continue
            if any(_interval_contains(iv, point) for iv in merged):
                continue
            unique.append(point)
        unique.sort(key=_point_sort_key)
        object.__setattr__(self, "points", tuple(unique))
        object.__setattr__(self, "intervals", merged)

    # -- constructors --------------------------------------------------------

    @classmethod
    def pins(cls, values: Iterable[Any]) -> "Region":
        """The finite pin set ``{values...}``."""
        return cls(points=tuple(values))

    @classmethod
    def point(cls, value: Any) -> "Region":
        """The singleton ``{value}``."""
        return cls(points=(value,))

    @classmethod
    def interval(cls, low: float = -_INF, high: float = _INF,
                 closed_left: bool = True,
                 closed_right: bool = True) -> "Region":
        """One real interval (infinite endpoints give rays)."""
        return cls(intervals=((low, high, closed_left, closed_right),))

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.points and not self.intervals

    def single_point(self) -> tuple | None:
        """``(value,)`` when the region is one exact pin, else None."""
        if len(self.points) == 1 and not self.intervals:
            return (self.points[0],)
        return None

    def contains(self, value: Any) -> bool:
        value = normalize_value(value)
        if any(point == value for point in self.points):
            return True
        return any(_interval_contains(iv, value) for iv in self.intervals)

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership over a numeric sample column."""
        values = np.asarray(values)
        if values.dtype == object:
            return np.fromiter(
                (self.contains(v) for v in values.tolist()),
                dtype=bool, count=values.shape[0])
        out = np.zeros(values.shape, dtype=bool)
        numeric = [float(p) for p in self.points if _is_number(p)]
        if numeric:
            out |= np.isin(values, np.asarray(numeric))
        for low, high, closed_left, closed_right in self.intervals:
            left = values >= low if closed_left else values > low
            right = values <= high if closed_right else values < high
            out |= left & right
        return out

    # -- algebra -------------------------------------------------------------

    def intersect(self, other: "Region") -> "Region":
        points = [p for p in self.points if other.contains(p)]
        points += [p for p in other.points if self.contains(p)]
        intervals = []
        for first in self.intervals:
            for second in other.intervals:
                met = _intersect_pair(first, second)
                if met is not None:
                    intervals.append(met)
        return Region(points=tuple(points), intervals=tuple(intervals))

    def union(self, other: "Region") -> "Region":
        return Region(points=self.points + other.points,
                      intervals=self.intervals + other.intervals)

    def __repr__(self) -> str:
        parts = []
        if self.points:
            parts.append("{" + ", ".join(repr(p) for p in self.points)
                         + "}")
        for low, high, closed_left, closed_right in self.intervals:
            left = "[" if closed_left else "("
            right = "]" if closed_right else ")"
            parts.append(f"{left}{low}, {high}{right}")
        return "Region(" + (" ∪ ".join(parts) or "∅") + ")"
