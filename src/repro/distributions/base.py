"""Parameterized distributions (Definition 2.1).

A parameterized distribution ``ψ`` consists of a base measure space -
either a Euclidean space with Lebesgue measure or a discrete space with
counting measure - and a density family ``ψ⟨θ⟩`` over a parameter space
``Θ_ψ``, with ``∫ ψ⟨θ⟩ dµ = 1`` for every ``θ``.

:class:`ParameterizedDistribution` captures exactly this structure:

* ``is_discrete`` selects the base-measure kind;
* :meth:`validate_params` decides membership in ``Θ_ψ`` (raising
  :class:`repro.errors.DistributionError` otherwise - the paper requires
  valuations mapping into ``Θ_ψ``, Definition 3.1);
* :meth:`density` is ``ψ⟨θ⟩(x)`` - a pmf for discrete, pdf for
  continuous distributions;
* :meth:`sample` draws from ``P_ψ⟨θ⟩`` (Eq. 2.A) using numpy;
* discrete distributions enumerate their support, possibly lazily with
  an explicit *truncation*: :meth:`truncated_support` returns pairs
  covering at least ``1 - tolerance`` of the mass, enabling exact chase
  enumeration with the residue tracked as error mass.

Fact 2.3's conditions (continuity in θ, identifiability) are documented
per distribution; :meth:`distinct_parameters` operationalizes
identifiability, which the Bárány-style semantics (§6.2) relies on when
keying samples by parameter values.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Sequence

import numpy as np

from repro.distributions.regions import Region
from repro.distributions.regions import _interval_contains as _in_interval
from repro.errors import DistributionError
from repro.measures.discrete import DiscreteMeasure

#: Upper bound on integers enumerated when a discrete draw is
#: constrained through bounded intervals (e.g. ``DiscreteUniform``
#: pinned to ``[1, 10^5]``); beyond it the truncated-support walk is
#: used instead.
_INTERVAL_ENUM_CAP = 100_000
#: Retry rounds for region-filtered rejection (continuous families
#: without an inverse CDF); exhausting it raises so guided inference
#: can fall back instead of silently spinning.
_REJECTION_ROUNDS = 64


class ParameterizedDistribution:
    """Abstract base for parameterized distributions.

    Subclasses define class attributes ``name`` (the symbolic name used
    in programs, e.g. ``"Flip"``), ``param_arity`` and ``is_discrete``,
    and implement the per-θ behaviour.
    """

    #: Symbolic name used in program text (``ψ⟨θ⟩`` is ``Name<θ>``).
    name: str = "?"
    #: Number of parameters (length of θ tuples).
    param_arity: int = 0
    #: Discrete (counting base measure) vs continuous (Lebesgue).
    is_discrete: bool = True

    # -- parameter space Θ_ψ ---------------------------------------------------

    def validate_params(self, params: Sequence[Any]) -> tuple:
        """Check ``params ∈ Θ_ψ``; return the normalized tuple.

        Subclasses override :meth:`_check_params`; this wrapper enforces
        arity and converts to a canonical tuple of floats/values.
        """
        params = tuple(params)
        if len(params) != self.param_arity:
            raise DistributionError(
                f"{self.name} expects {self.param_arity} parameter(s), "
                f"got {len(params)}")
        return self._check_params(params)

    def _check_params(self, params: tuple) -> tuple:
        raise NotImplementedError

    def distinct_parameters(self, first: tuple, second: tuple) -> bool:
        """Whether two parameter tuples induce different measures.

        Definition 2.1 / Fact 2.3 require the family to be identifiable
        (θ ≠ θ' ⇒ P_ψ⟨θ⟩ ≠ P_ψ⟨θ'⟩); all built-in families are, so the
        default compares normalized tuples.
        """
        return self.validate_params(first) != self.validate_params(second)

    # -- density and sampling -----------------------------------------------------

    def density(self, params: Sequence[Any], x: Any) -> float:
        """``ψ⟨θ⟩(x)``: pmf (discrete) or pdf (continuous)."""
        raise NotImplementedError

    def log_density(self, params: Sequence[Any], x: Any) -> float:
        """``log ψ⟨θ⟩(x)`` (−inf outside the support)."""
        d = self.density(params, x)
        if d <= 0.0:
            return float("-inf")
        return float(np.log(d))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> Any:
        """Draw one value from ``P_ψ⟨θ⟩``."""
        raise NotImplementedError

    def sample_many(self, params: Sequence[Any], rng: np.random.Generator,
                    n: int) -> list:
        """Draw ``n`` iid values (subclasses may vectorize)."""
        return [self.sample(params, rng) for _ in range(n)]

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` iid values from ``P_ψ⟨θ⟩`` as a numpy array.

        The batched chase engine (:mod:`repro.engine.batched`) calls
        this once per (distribution, parameters) key per round -
        pooling the draws of *every* firing and signature group that
        shares the key into one call, then slicing the flat array back
        per consumer.  That pooling is sound exactly because this
        method's contract requires the ``size`` draws to be iid from
        ``P_ψ⟨θ⟩``: any split of an iid array preserves the product
        law, so implementations must not introduce cross-draw
        structure (antithetic pairs, stratification, common random
        numbers) - the registry tripwire tests assert law-consistency
        with :meth:`sample`.  Implementations are free to consume the
        generator differently from ``size`` scalar calls - batched
        draws are *law*-equal, not draw-for-draw equal, to scalar
        ones.  The base implementation delegates to
        :meth:`sample_many` (so a family that already vectorized that
        hook batches fast automatically); every built-in family
        overrides it with a single numpy call.
        """
        return np.asarray(self.sample_many(params, rng, int(size)))

    # -- truncated/conditional sampling -----------------------------------------

    def sample_batch_truncated(self, params: Sequence[Any],
                               region: Region, size: int,
                               rng: np.random.Generator,
                               ) -> tuple[np.ndarray, float]:
        """Draw ``size`` iid values from ``P_ψ⟨θ⟩`` conditioned on a region.

        Returns ``(values, log_weight)``: the draws follow the prior
        law restricted to ``region`` and renormalized, and
        ``log_weight`` is the per-draw log importance weight that makes
        a self-normalized posterior over such draws law-exact -
        ``log P_ψ⟨θ⟩(region)`` for positive-mass regions, and the log
        *density* at the point for a continuous single-point region
        (the disintegrated likelihood-weighting case).  The weight is a
        single scalar because the draws are iid given ``(θ, region)``.

        The base implementation covers every family: discrete draws
        renormalize the pmf over the region's candidates (pins checked
        directly via :meth:`density`, bounded intervals enumerated,
        unbounded intervals walked through :meth:`truncated_support` -
        mass below its ``1e-12`` residue is treated as infeasible);
        continuous draws use the inverse CDF when :meth:`ppf` is
        implemented and region-filtered rejection with a retry budget
        otherwise, with the region mass taken from :meth:`cdf` where
        available and from numeric quadrature of :meth:`density` as the
        last resort (Gamma, Beta).  Raises
        :class:`~repro.errors.DistributionError` when the region is
        empty, carries (numerically) zero prior mass, or the rejection
        budget is exhausted.
        """
        params = self.validate_params(params)
        size = int(size)
        if region.is_empty:
            raise DistributionError(
                f"{self.name}: empty feasible region")
        if self.is_discrete:
            return self._sample_truncated_discrete(params, region, size,
                                                   rng)
        return self._sample_truncated_continuous(params, region, size,
                                                 rng)

    def ppf(self, params: Sequence[Any], q: np.ndarray) -> np.ndarray:
        """Inverse CDF at quantiles ``q`` (array-capable; optional).

        Families with a classical closed form (Normal, LogNormal,
        Exponential, Uniform, Laplace) override this; the base raises
        so :meth:`sample_batch_truncated` knows to fall back to
        region-filtered rejection.
        """
        raise NotImplementedError(
            f"{self.name} does not expose an inverse CDF")

    def _sample_truncated_discrete(self, params: tuple, region: Region,
                                   size: int, rng: np.random.Generator,
                                   ) -> tuple[np.ndarray, float]:
        values: list = []
        masses: list[float] = []
        for point in region.points:
            mass = self.density(params, point)
            if mass > 0.0:
                values.append(point)
                masses.append(mass)
        if region.intervals:
            seen = set(values)
            for value, mass in self._interval_candidates(params, region):
                if mass > 0.0 and value not in seen:
                    seen.add(value)
                    values.append(value)
                    masses.append(mass)
        total = math.fsum(masses)
        if total <= 0.0:
            raise DistributionError(
                f"{self.name}: feasible region {region!r} has zero "
                "prior mass")
        probs = np.asarray(masses, dtype=float)
        probs /= probs.sum()
        index = rng.choice(len(values), size=size, p=probs)
        return np.asarray(values)[index], float(math.log(min(total, 1.0)))

    def _interval_candidates(self, params: tuple, region: Region):
        """``(value, pmf)`` pairs of the support inside the intervals.

        Bounded intervals are enumerated directly over the integers
        (every built-in discrete family is integer-valued), so a rare
        pin deep in the tail - ``Poisson⟨0.1⟩`` constrained to
        ``[900, 1000]`` - keeps its exact mass; unbounded intervals
        fall back to the truncated-support walk, whose ``<= 1e-12``
        uncovered residue is the only approximation.
        """
        bounded = []
        span = 0
        for low, high, closed_left, closed_right in region.intervals:
            if not (math.isfinite(low) and math.isfinite(high)):
                bounded = None
                break
            first = math.ceil(low)
            if first == low and not closed_left:
                first += 1
            last = math.floor(high)
            if last == high and not closed_right:
                last -= 1
            bounded.append((first, last))
            span += max(last - first + 1, 0)
        if bounded is not None and span <= _INTERVAL_ENUM_CAP:
            for first, last in bounded:
                for value in range(first, last + 1):
                    yield value, self.density(params, value)
            return
        pairs, _residue = self.truncated_support(params)
        for value, mass in pairs:
            if any(_in_interval(interval, value)
                   for interval in region.intervals):
                yield value, mass

    def _sample_truncated_continuous(self, params: tuple,
                                     region: Region, size: int,
                                     rng: np.random.Generator,
                                     ) -> tuple[np.ndarray, float]:
        single = region.single_point()
        if single is not None:
            (value,) = single
            log_density = self.log_density(params, value)
            if log_density == float("-inf"):
                raise DistributionError(
                    f"{self.name}: zero density at pinned value "
                    f"{value!r}")
            return np.full(size, float(value)), float(log_density)
        if not region.intervals:
            raise DistributionError(
                f"{self.name} is continuous; the multi-point pin set "
                f"{region!r} is a null event (pin one value or use an "
                "interval)")
        # Extra pin points alongside intervals are Lebesgue-null;
        # the conditional law lives on the intervals alone.
        mass = self._interval_mass(params, region.intervals)
        if mass <= 1e-300:
            raise DistributionError(
                f"{self.name}: feasible region {region!r} has zero "
                "prior mass")
        draws = self._ppf_truncated(params, region.intervals, size, rng)
        if draws is None:
            draws = self._rejection_truncated(params, region, size, rng,
                                              mass)
        return draws, float(math.log(min(mass, 1.0)))

    def _cdf_clipped(self, params: tuple, x: float) -> float:
        if x == float("-inf"):
            return 0.0
        if x == float("inf"):
            return 1.0
        return min(max(self.cdf(params, x), 0.0), 1.0)

    def _interval_mass(self, params: tuple, intervals: tuple) -> float:
        """Prior mass of an interval union (CDF, else quadrature)."""
        try:
            total = 0.0
            for low, high, _cl, _cr in intervals:
                total += (self._cdf_clipped(params, high)
                          - self._cdf_clipped(params, low))
            return min(max(total, 0.0), 1.0)
        except NotImplementedError:
            return self._quadrature_mass(params, intervals)

    def _quadrature_mass(self, params: tuple, intervals: tuple) -> float:
        """Trapezoid mass of intervals for CDF-less families.

        The integration window is clipped to mean ± 40 standard
        deviations (the density is numerically zero beyond), and the
        grid is geometrically refined toward both interval endpoints so
        integrable endpoint singularities (Beta with ``α < 1``, Gamma
        with shape ``< 1``) keep sub-percent accuracy.
        """
        center = self.mean(params)
        spread = math.sqrt(self.variance(params)) or 1.0
        window_low = center - 40.0 * spread
        window_high = center + 40.0 * spread
        total = 0.0
        for low, high, _cl, _cr in intervals:
            a = max(low, window_low)
            b = min(high, window_high)
            if a >= b:
                continue
            width = b - a
            offsets = width * np.geomspace(1e-12, 0.5, 128)
            grid = np.unique(np.concatenate([
                np.linspace(a, b, 2049), a + offsets, b - offsets]))
            density = np.asarray([self.density(params, float(x))
                                  for x in grid])
            total += float(np.trapezoid(density, grid))
        return min(max(total, 0.0), 1.0)

    def _ppf_truncated(self, params: tuple, intervals: tuple, size: int,
                       rng: np.random.Generator) -> np.ndarray | None:
        """Exact inverse-CDF draws over an interval union (or None)."""
        try:
            lows = np.asarray([self._cdf_clipped(params, low)
                               for low, _h, _cl, _cr in intervals])
            highs = np.asarray([self._cdf_clipped(params, high)
                                for _l, high, _cl, _cr in intervals])
            masses = np.maximum(highs - lows, 0.0)
            total = float(masses.sum())
            if total <= 0.0:
                raise DistributionError(
                    f"{self.name}: feasible intervals have zero prior "
                    "mass")
            chosen = rng.choice(len(intervals), size=size,
                                p=masses / total)
            q = lows[chosen] + rng.random(size) * masses[chosen]
            return np.asarray(self.ppf(params, q), dtype=float)
        except NotImplementedError:
            return None

    def _rejection_truncated(self, params: tuple, region: Region,
                             size: int, rng: np.random.Generator,
                             mass: float) -> np.ndarray:
        """Region-filtered rejection with a retry budget (law-exact)."""
        per_round = min(max(int(size / max(mass, 1e-6)) + 16, size, 256),
                        1_000_000)
        accepted: list[np.ndarray] = []
        collected = 0
        drawn = 0
        for _ in range(_REJECTION_ROUNDS):
            chunk = np.asarray(self.sample_batch(params, per_round, rng))
            keep = chunk[region.mask(chunk)]
            drawn += per_round
            if keep.size:
                accepted.append(keep)
                collected += keep.size
            if collected >= size:
                return np.concatenate(accepted)[:size]
        raise DistributionError(
            f"{self.name}: truncated-rejection budget exhausted "
            f"({collected}/{size} accepted in {drawn} draws for region "
            f"{region!r})")

    # -- moments (used by tests and examples; optional) ----------------------------

    def mean(self, params: Sequence[Any]) -> float:
        raise NotImplementedError(f"{self.name} does not expose a mean")

    def variance(self, params: Sequence[Any]) -> float:
        raise NotImplementedError(f"{self.name} does not expose a variance")

    # -- discrete support ------------------------------------------------------------

    def support(self, params: Sequence[Any]) -> Iterator[Any]:
        """Iterate the support (discrete only; possibly infinite)."""
        raise DistributionError(
            f"{self.name} is continuous; its support is uncountable")

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        """Whether :meth:`support` terminates for these parameters."""
        return False

    def truncated_support(self, params: Sequence[Any],
                          tolerance: float = 1e-12,
                          max_points: int = 100_000,
                          ) -> tuple[list[tuple[Any, float]], float]:
        """``([(value, mass), ...], residue)`` covering mass ≥ 1−tolerance.

        For finite-support distributions the residue is 0.  For infinite
        discrete supports (Poisson, Geometric) enumeration stops once
        the accumulated mass reaches ``1 - tolerance`` (or at
        ``max_points``); the uncovered ``residue`` is reported so exact
        inference can move it to error mass instead of silently
        renormalizing.
        """
        if not self.is_discrete:
            raise DistributionError(
                f"{self.name} is continuous; exact enumeration requires "
                "a discrete distribution")
        params = self.validate_params(params)
        pairs: list[tuple[Any, float]] = []
        accumulated = 0.0
        for value in self.support(params):
            mass = self.density(params, value)
            if mass > 0.0:
                pairs.append((value, mass))
                accumulated += mass
            if accumulated >= 1.0 - tolerance:
                break
            if len(pairs) >= max_points:
                break
        return pairs, max(1.0 - accumulated, 0.0)

    def finite_support_values(self, params: Sequence[Any],
                              max_points: int = 128,
                              ) -> tuple | None:
        """The full support as a tuple, or None when not small/finite.

        Returns None for continuous families, for discrete families
        with infinite support (Poisson, Geometric), and for finite
        supports larger than ``max_points``.  The batched chase engine
        (:mod:`repro.engine.batched`) uses this to intersect trigger
        pins with the reachable sample values - a pin outside the
        support can never fire, so the world never needs to leave the
        vectorized batch - and to bound how many signature groups an
        always-triggering firing can cascade into.
        """
        if not self.is_discrete:
            return None
        params = self.validate_params(params)
        if not self.support_is_finite(params):
            return None
        values: list = []
        for value in self.support(params):
            values.append(value)
            if len(values) > max_points:
                return None
        return tuple(values)

    def measure(self, params: Sequence[Any],
                tolerance: float = 1e-12) -> DiscreteMeasure:
        """``P_ψ⟨θ⟩`` as a (possibly sub-probability) discrete measure."""
        pairs, _residue = self.truncated_support(params, tolerance)
        return DiscreteMeasure(dict(pairs))

    # -- continuous CDF (optional; used by KS tests) -------------------------------------

    def cdf(self, params: Sequence[Any], x: float) -> float:
        """The CDF of ``P_ψ⟨θ⟩`` where available."""
        raise NotImplementedError(f"{self.name} does not expose a CDF")

    def __repr__(self) -> str:
        kind = "discrete" if self.is_discrete else "continuous"
        return f"<{self.name} ({kind}, {self.param_arity} params)>"


def require(condition: bool, distribution_name: str, message: str) -> None:
    """Raise :class:`DistributionError` unless ``condition`` holds."""
    if not condition:
        raise DistributionError(f"{distribution_name}: {message}")


def as_float(value: Any, distribution_name: str, role: str) -> float:
    """Coerce a parameter to float, rejecting non-numeric values."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        result = float(value)
        if np.isnan(result):
            raise DistributionError(
                f"{distribution_name}: {role} must not be NaN")
        return result
    raise DistributionError(
        f"{distribution_name}: {role} must be numeric, got {value!r}")


def as_int(value: Any, distribution_name: str, role: str) -> int:
    """Coerce a parameter to int, rejecting fractional values."""
    f = as_float(value, distribution_name, role)
    if not float(f).is_integer():
        raise DistributionError(
            f"{distribution_name}: {role} must be an integer, got {value!r}")
    return int(f)
