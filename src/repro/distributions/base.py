"""Parameterized distributions (Definition 2.1).

A parameterized distribution ``ψ`` consists of a base measure space -
either a Euclidean space with Lebesgue measure or a discrete space with
counting measure - and a density family ``ψ⟨θ⟩`` over a parameter space
``Θ_ψ``, with ``∫ ψ⟨θ⟩ dµ = 1`` for every ``θ``.

:class:`ParameterizedDistribution` captures exactly this structure:

* ``is_discrete`` selects the base-measure kind;
* :meth:`validate_params` decides membership in ``Θ_ψ`` (raising
  :class:`repro.errors.DistributionError` otherwise - the paper requires
  valuations mapping into ``Θ_ψ``, Definition 3.1);
* :meth:`density` is ``ψ⟨θ⟩(x)`` - a pmf for discrete, pdf for
  continuous distributions;
* :meth:`sample` draws from ``P_ψ⟨θ⟩`` (Eq. 2.A) using numpy;
* discrete distributions enumerate their support, possibly lazily with
  an explicit *truncation*: :meth:`truncated_support` returns pairs
  covering at least ``1 - tolerance`` of the mass, enabling exact chase
  enumeration with the residue tracked as error mass.

Fact 2.3's conditions (continuity in θ, identifiability) are documented
per distribution; :meth:`distinct_parameters` operationalizes
identifiability, which the Bárány-style semantics (§6.2) relies on when
keying samples by parameter values.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DistributionError
from repro.measures.discrete import DiscreteMeasure


class ParameterizedDistribution:
    """Abstract base for parameterized distributions.

    Subclasses define class attributes ``name`` (the symbolic name used
    in programs, e.g. ``"Flip"``), ``param_arity`` and ``is_discrete``,
    and implement the per-θ behaviour.
    """

    #: Symbolic name used in program text (``ψ⟨θ⟩`` is ``Name<θ>``).
    name: str = "?"
    #: Number of parameters (length of θ tuples).
    param_arity: int = 0
    #: Discrete (counting base measure) vs continuous (Lebesgue).
    is_discrete: bool = True

    # -- parameter space Θ_ψ ---------------------------------------------------

    def validate_params(self, params: Sequence[Any]) -> tuple:
        """Check ``params ∈ Θ_ψ``; return the normalized tuple.

        Subclasses override :meth:`_check_params`; this wrapper enforces
        arity and converts to a canonical tuple of floats/values.
        """
        params = tuple(params)
        if len(params) != self.param_arity:
            raise DistributionError(
                f"{self.name} expects {self.param_arity} parameter(s), "
                f"got {len(params)}")
        return self._check_params(params)

    def _check_params(self, params: tuple) -> tuple:
        raise NotImplementedError

    def distinct_parameters(self, first: tuple, second: tuple) -> bool:
        """Whether two parameter tuples induce different measures.

        Definition 2.1 / Fact 2.3 require the family to be identifiable
        (θ ≠ θ' ⇒ P_ψ⟨θ⟩ ≠ P_ψ⟨θ'⟩); all built-in families are, so the
        default compares normalized tuples.
        """
        return self.validate_params(first) != self.validate_params(second)

    # -- density and sampling -----------------------------------------------------

    def density(self, params: Sequence[Any], x: Any) -> float:
        """``ψ⟨θ⟩(x)``: pmf (discrete) or pdf (continuous)."""
        raise NotImplementedError

    def log_density(self, params: Sequence[Any], x: Any) -> float:
        """``log ψ⟨θ⟩(x)`` (−inf outside the support)."""
        d = self.density(params, x)
        if d <= 0.0:
            return float("-inf")
        return float(np.log(d))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> Any:
        """Draw one value from ``P_ψ⟨θ⟩``."""
        raise NotImplementedError

    def sample_many(self, params: Sequence[Any], rng: np.random.Generator,
                    n: int) -> list:
        """Draw ``n`` iid values (subclasses may vectorize)."""
        return [self.sample(params, rng) for _ in range(n)]

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` iid values from ``P_ψ⟨θ⟩`` as a numpy array.

        The batched chase engine (:mod:`repro.engine.batched`) calls
        this once per (distribution, parameters) key per round -
        pooling the draws of *every* firing and signature group that
        shares the key into one call, then slicing the flat array back
        per consumer.  That pooling is sound exactly because this
        method's contract requires the ``size`` draws to be iid from
        ``P_ψ⟨θ⟩``: any split of an iid array preserves the product
        law, so implementations must not introduce cross-draw
        structure (antithetic pairs, stratification, common random
        numbers) - the registry tripwire tests assert law-consistency
        with :meth:`sample`.  Implementations are free to consume the
        generator differently from ``size`` scalar calls - batched
        draws are *law*-equal, not draw-for-draw equal, to scalar
        ones.  The base implementation delegates to
        :meth:`sample_many` (so a family that already vectorized that
        hook batches fast automatically); every built-in family
        overrides it with a single numpy call.
        """
        return np.asarray(self.sample_many(params, rng, int(size)))

    # -- moments (used by tests and examples; optional) ----------------------------

    def mean(self, params: Sequence[Any]) -> float:
        raise NotImplementedError(f"{self.name} does not expose a mean")

    def variance(self, params: Sequence[Any]) -> float:
        raise NotImplementedError(f"{self.name} does not expose a variance")

    # -- discrete support ------------------------------------------------------------

    def support(self, params: Sequence[Any]) -> Iterator[Any]:
        """Iterate the support (discrete only; possibly infinite)."""
        raise DistributionError(
            f"{self.name} is continuous; its support is uncountable")

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        """Whether :meth:`support` terminates for these parameters."""
        return False

    def truncated_support(self, params: Sequence[Any],
                          tolerance: float = 1e-12,
                          max_points: int = 100_000,
                          ) -> tuple[list[tuple[Any, float]], float]:
        """``([(value, mass), ...], residue)`` covering mass ≥ 1−tolerance.

        For finite-support distributions the residue is 0.  For infinite
        discrete supports (Poisson, Geometric) enumeration stops once
        the accumulated mass reaches ``1 - tolerance`` (or at
        ``max_points``); the uncovered ``residue`` is reported so exact
        inference can move it to error mass instead of silently
        renormalizing.
        """
        if not self.is_discrete:
            raise DistributionError(
                f"{self.name} is continuous; exact enumeration requires "
                "a discrete distribution")
        params = self.validate_params(params)
        pairs: list[tuple[Any, float]] = []
        accumulated = 0.0
        for value in self.support(params):
            mass = self.density(params, value)
            if mass > 0.0:
                pairs.append((value, mass))
                accumulated += mass
            if accumulated >= 1.0 - tolerance:
                break
            if len(pairs) >= max_points:
                break
        return pairs, max(1.0 - accumulated, 0.0)

    def finite_support_values(self, params: Sequence[Any],
                              max_points: int = 128,
                              ) -> tuple | None:
        """The full support as a tuple, or None when not small/finite.

        Returns None for continuous families, for discrete families
        with infinite support (Poisson, Geometric), and for finite
        supports larger than ``max_points``.  The batched chase engine
        (:mod:`repro.engine.batched`) uses this to intersect trigger
        pins with the reachable sample values - a pin outside the
        support can never fire, so the world never needs to leave the
        vectorized batch - and to bound how many signature groups an
        always-triggering firing can cascade into.
        """
        if not self.is_discrete:
            return None
        params = self.validate_params(params)
        if not self.support_is_finite(params):
            return None
        values: list = []
        for value in self.support(params):
            values.append(value)
            if len(values) > max_points:
                return None
        return tuple(values)

    def measure(self, params: Sequence[Any],
                tolerance: float = 1e-12) -> DiscreteMeasure:
        """``P_ψ⟨θ⟩`` as a (possibly sub-probability) discrete measure."""
        pairs, _residue = self.truncated_support(params, tolerance)
        return DiscreteMeasure(dict(pairs))

    # -- continuous CDF (optional; used by KS tests) -------------------------------------

    def cdf(self, params: Sequence[Any], x: float) -> float:
        """The CDF of ``P_ψ⟨θ⟩`` where available."""
        raise NotImplementedError(f"{self.name} does not expose a CDF")

    def __repr__(self) -> str:
        kind = "discrete" if self.is_discrete else "continuous"
        return f"<{self.name} ({kind}, {self.param_arity} params)>"


def require(condition: bool, distribution_name: str, message: str) -> None:
    """Raise :class:`DistributionError` unless ``condition`` holds."""
    if not condition:
        raise DistributionError(f"{distribution_name}: {message}")


def as_float(value: Any, distribution_name: str, role: str) -> float:
    """Coerce a parameter to float, rejecting non-numeric values."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        result = float(value)
        if np.isnan(result):
            raise DistributionError(
                f"{distribution_name}: {role} must not be NaN")
        return result
    raise DistributionError(
        f"{distribution_name}: {role} must be numeric, got {value!r}")


def as_int(value: Any, distribution_name: str, role: str) -> int:
    """Coerce a parameter to int, rejecting fractional values."""
    f = as_float(value, distribution_name, role)
    if not float(f).is_integer():
        raise DistributionError(
            f"{distribution_name}: {role} must be an integer, got {value!r}")
    return int(f)
