"""Parameterized distributions (Definition 2.1) and their registry."""

from repro.distributions.base import ParameterizedDistribution
from repro.distributions.mixture import FiniteMixture
from repro.distributions.verify import (Fact23Report, fact_2_3_report,
                                        verify_batch_consistency,
                                        verify_identifiability,
                                        verify_normalization,
                                        verify_parameter_continuity)
from repro.distributions.continuous import (Beta, Exponential, Gamma,
                                            Laplace, LogNormal, Normal,
                                            Uniform)
from repro.distributions.discrete import (Bernoulli, Binomial, Categorical,
                                          DiscreteUniform, Flip, Geometric,
                                          Poisson)
from repro.distributions.registry import (DEFAULT_REGISTRY,
                                          AliasedDistribution,
                                          DistributionRegistry,
                                          default_registry)

__all__ = [
    "AliasedDistribution", "Bernoulli", "Beta", "Binomial", "Categorical",
    "DEFAULT_REGISTRY", "DiscreteUniform", "DistributionRegistry",
    "Exponential", "Fact23Report", "FiniteMixture", "Flip", "Gamma",
    "Geometric", "Laplace", "LogNormal", "Normal",
    "ParameterizedDistribution", "Poisson", "Uniform",
    "default_registry", "fact_2_3_report", "verify_batch_consistency",
    "verify_identifiability", "verify_normalization",
    "verify_parameter_continuity",
]
