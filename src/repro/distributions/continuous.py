"""Continuous parameterized distributions (Lebesgue base measure).

These are the point of the paper: rule heads may sample from absolutely
continuous laws such as ``Normal⟨µ, σ²⟩``.  Example 2.2 displays the
normal density (with a typographical error - the exponent denominator
is missing the factor 2; we implement the correct density

    Normal⟨µ, σ²⟩(x) = exp(−(x−µ)² / (2σ²)) / sqrt(2πσ²)

and record the erratum in EXPERIMENTS.md).  All families expose exact
densities, CDFs where classical closed forms exist (for KS testing),
moments and vectorizable numpy samplers.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.distributions.base import (ParameterizedDistribution, as_float,
                                      require)


def _as_real(x: Any) -> float | None:
    """Value as float if it is a real number, else None."""
    if isinstance(x, bool):
        return float(x)
    if isinstance(x, (int, float)):
        return float(x)
    return None


_ERFC = np.vectorize(math.erfc)


def _standard_normal_ppf(q: np.ndarray) -> np.ndarray:
    """``Φ^{-1}(q)``: Acklam's rational approximation, Halley-polished.

    The initial approximation is accurate to ~1.15e-9 relative error
    over (0, 1); one Halley refinement against the exact ``erfc``-based
    CDF brings it to machine precision, which is what lets truncated
    normal draws (:meth:`Normal.sample_batch_truncated`) be treated as
    exact inverse-CDF samples in the law tests.
    """
    q = np.asarray(q, dtype=float)
    q = np.clip(q, 1e-300, 1.0 - 1e-16)
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    split = 0.02425
    x = np.empty_like(q)
    lower = q < split
    upper = q > 1.0 - split
    middle = ~(lower | upper)
    if np.any(middle):
        r = q[middle] - 0.5
        s = r * r
        x[middle] = ((((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s
                       + a[4]) * s + a[5]) * r
                     / (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s
                         + b[4]) * s + 1.0))
    if np.any(lower):
        r = np.sqrt(-2.0 * np.log(q[lower]))
        x[lower] = (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r
                     + c[4]) * r + c[5]) \
            / ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0)
    if np.any(upper):
        r = np.sqrt(-2.0 * np.log(1.0 - q[upper]))
        x[upper] = -((((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r
                       + c[4]) * r + c[5])
                     / ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r
                        + 1.0))
    # One Halley step: e = Φ(x) − q, u = e / φ(x).
    e = 0.5 * _ERFC(-x / math.sqrt(2.0)) - q
    u = e * np.sqrt(2.0 * np.pi) * np.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


class Normal(ParameterizedDistribution):
    """Normal distribution parameterized by mean and *variance*.

    ``Θ = R × R_{>0}`` (Example 2.2): the second parameter is σ², not σ,
    matching the paper's ``Normal⟨µ, σ²⟩`` notation.
    """

    name = "Normal"
    param_arity = 2
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        mu = as_float(params[0], self.name, "mean")
        var = as_float(params[1], self.name, "variance")
        require(var > 0.0, self.name, f"variance must be > 0: {var}")
        return (mu, var)

    def density(self, params: Sequence[Any], x: Any) -> float:
        mu, var = self.validate_params(params)
        value = _as_real(x)
        if value is None:
            return 0.0
        return float(math.exp(-(value - mu) ** 2 / (2.0 * var))
                     / math.sqrt(2.0 * math.pi * var))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        mu, var = self.validate_params(params)
        return float(rng.normal(mu, math.sqrt(var)))

    def sample_many(self, params: Sequence[Any],
                    rng: np.random.Generator, n: int) -> list:
        mu, var = self.validate_params(params)
        return rng.normal(mu, math.sqrt(var), size=n).tolist()

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        mu, var = self.validate_params(params)
        return rng.normal(mu, math.sqrt(var), size=size)

    def cdf(self, params: Sequence[Any], x: float) -> float:
        mu, var = self.validate_params(params)
        return 0.5 * (1.0 + math.erf((x - mu) / math.sqrt(2.0 * var)))

    def ppf(self, params: Sequence[Any], q: np.ndarray) -> np.ndarray:
        mu, var = self.validate_params(params)
        return mu + math.sqrt(var) * _standard_normal_ppf(q)

    def mean(self, params: Sequence[Any]) -> float:
        mu, _var = self.validate_params(params)
        return mu

    def variance(self, params: Sequence[Any]) -> float:
        _mu, var = self.validate_params(params)
        return var


class LogNormal(ParameterizedDistribution):
    """Log-normal: ``exp(Z)`` with ``Z ~ Normal⟨µ, σ²⟩``.

    ``Θ = R × R_{>0}``.  Included because the introduction motivates
    continuous PDBs with real-world log-normal phenomena [29].
    """

    name = "LogNormal"
    param_arity = 2
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        mu = as_float(params[0], self.name, "log-mean")
        var = as_float(params[1], self.name, "log-variance")
        require(var > 0.0, self.name, f"log-variance must be > 0: {var}")
        return (mu, var)

    def density(self, params: Sequence[Any], x: Any) -> float:
        mu, var = self.validate_params(params)
        value = _as_real(x)
        if value is None or value <= 0.0:
            return 0.0
        return float(math.exp(-(math.log(value) - mu) ** 2 / (2.0 * var))
                     / (value * math.sqrt(2.0 * math.pi * var)))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        mu, var = self.validate_params(params)
        return float(rng.lognormal(mu, math.sqrt(var)))

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        mu, var = self.validate_params(params)
        return rng.lognormal(mu, math.sqrt(var), size=size)

    def cdf(self, params: Sequence[Any], x: float) -> float:
        mu, var = self.validate_params(params)
        if x <= 0.0:
            return 0.0
        return 0.5 * (1.0 + math.erf(
            (math.log(x) - mu) / math.sqrt(2.0 * var)))

    def ppf(self, params: Sequence[Any], q: np.ndarray) -> np.ndarray:
        mu, var = self.validate_params(params)
        return np.exp(mu + math.sqrt(var) * _standard_normal_ppf(q))

    def mean(self, params: Sequence[Any]) -> float:
        mu, var = self.validate_params(params)
        return math.exp(mu + var / 2.0)

    def variance(self, params: Sequence[Any]) -> float:
        mu, var = self.validate_params(params)
        return (math.exp(var) - 1.0) * math.exp(2.0 * mu + var)


class Exponential(ParameterizedDistribution):
    """Exponential with rate λ: ``ψ⟨λ⟩(x) = λ e^{−λx}`` on ``x >= 0``.

    ``Θ = R_{>0}``.  (The conclusion of the paper names exponential
    distributions as a natural application.)
    """

    name = "Exponential"
    param_arity = 1
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        rate = as_float(params[0], self.name, "rate")
        require(rate > 0.0, self.name, f"rate must be > 0: {rate}")
        return (rate,)

    def density(self, params: Sequence[Any], x: Any) -> float:
        (rate,) = self.validate_params(params)
        value = _as_real(x)
        if value is None or value < 0.0:
            return 0.0
        return float(rate * math.exp(-rate * value))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        (rate,) = self.validate_params(params)
        return float(rng.exponential(1.0 / rate))

    def sample_many(self, params: Sequence[Any],
                    rng: np.random.Generator, n: int) -> list:
        (rate,) = self.validate_params(params)
        return rng.exponential(1.0 / rate, size=n).tolist()

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        (rate,) = self.validate_params(params)
        return rng.exponential(1.0 / rate, size=size)

    def cdf(self, params: Sequence[Any], x: float) -> float:
        (rate,) = self.validate_params(params)
        if x <= 0.0:
            return 0.0
        return 1.0 - math.exp(-rate * x)

    def ppf(self, params: Sequence[Any], q: np.ndarray) -> np.ndarray:
        (rate,) = self.validate_params(params)
        return -np.log1p(-np.asarray(q, dtype=float)) / rate

    def mean(self, params: Sequence[Any]) -> float:
        (rate,) = self.validate_params(params)
        return 1.0 / rate

    def variance(self, params: Sequence[Any]) -> float:
        (rate,) = self.validate_params(params)
        return 1.0 / (rate * rate)


class Uniform(ParameterizedDistribution):
    """Continuous uniform on ``[low, high]`` with ``low < high``."""

    name = "Uniform"
    param_arity = 2
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        low = as_float(params[0], self.name, "low")
        high = as_float(params[1], self.name, "high")
        require(low < high, self.name, f"need low < high: {low}, {high}")
        return (low, high)

    def density(self, params: Sequence[Any], x: Any) -> float:
        low, high = self.validate_params(params)
        value = _as_real(x)
        if value is None or not low <= value <= high:
            return 0.0
        return 1.0 / (high - low)

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        low, high = self.validate_params(params)
        return float(rng.uniform(low, high))

    def sample_many(self, params: Sequence[Any],
                    rng: np.random.Generator, n: int) -> list:
        low, high = self.validate_params(params)
        return rng.uniform(low, high, size=n).tolist()

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        low, high = self.validate_params(params)
        return rng.uniform(low, high, size=size)

    def cdf(self, params: Sequence[Any], x: float) -> float:
        low, high = self.validate_params(params)
        if x <= low:
            return 0.0
        if x >= high:
            return 1.0
        return (x - low) / (high - low)

    def ppf(self, params: Sequence[Any], q: np.ndarray) -> np.ndarray:
        low, high = self.validate_params(params)
        return low + np.asarray(q, dtype=float) * (high - low)

    def mean(self, params: Sequence[Any]) -> float:
        low, high = self.validate_params(params)
        return (low + high) / 2.0

    def variance(self, params: Sequence[Any]) -> float:
        low, high = self.validate_params(params)
        return (high - low) ** 2 / 12.0


class Gamma(ParameterizedDistribution):
    """Gamma with shape ``k > 0`` and rate ``λ > 0``.

    ``ψ⟨k, λ⟩(x) = λ^k x^{k−1} e^{−λx} / Γ(k)`` on ``x > 0``.
    """

    name = "Gamma"
    param_arity = 2
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        shape = as_float(params[0], self.name, "shape")
        rate = as_float(params[1], self.name, "rate")
        require(shape > 0.0, self.name, f"shape must be > 0: {shape}")
        require(rate > 0.0, self.name, f"rate must be > 0: {rate}")
        return (shape, rate)

    def density(self, params: Sequence[Any], x: Any) -> float:
        shape, rate = self.validate_params(params)
        value = _as_real(x)
        if value is None or value <= 0.0:
            return 0.0
        log_density = (shape * math.log(rate)
                       + (shape - 1.0) * math.log(value)
                       - rate * value - math.lgamma(shape))
        return float(math.exp(log_density))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        shape, rate = self.validate_params(params)
        return float(rng.gamma(shape, 1.0 / rate))

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        shape, rate = self.validate_params(params)
        return rng.gamma(shape, 1.0 / rate, size=size)

    def mean(self, params: Sequence[Any]) -> float:
        shape, rate = self.validate_params(params)
        return shape / rate

    def variance(self, params: Sequence[Any]) -> float:
        shape, rate = self.validate_params(params)
        return shape / (rate * rate)


class Beta(ParameterizedDistribution):
    """Beta on ``[0, 1]`` with shape parameters ``α, β > 0``."""

    name = "Beta"
    param_arity = 2
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        alpha = as_float(params[0], self.name, "alpha")
        beta = as_float(params[1], self.name, "beta")
        require(alpha > 0.0, self.name, f"alpha must be > 0: {alpha}")
        require(beta > 0.0, self.name, f"beta must be > 0: {beta}")
        return (alpha, beta)

    def density(self, params: Sequence[Any], x: Any) -> float:
        alpha, beta = self.validate_params(params)
        value = _as_real(x)
        if value is None or not 0.0 < value < 1.0:
            return 0.0
        log_norm = (math.lgamma(alpha + beta) - math.lgamma(alpha)
                    - math.lgamma(beta))
        return float(math.exp(log_norm + (alpha - 1.0) * math.log(value)
                              + (beta - 1.0) * math.log(1.0 - value)))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        alpha, beta = self.validate_params(params)
        return float(rng.beta(alpha, beta))

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        alpha, beta = self.validate_params(params)
        return rng.beta(alpha, beta, size=size)

    def mean(self, params: Sequence[Any]) -> float:
        alpha, beta = self.validate_params(params)
        return alpha / (alpha + beta)

    def variance(self, params: Sequence[Any]) -> float:
        alpha, beta = self.validate_params(params)
        total = alpha + beta
        return alpha * beta / (total * total * (total + 1.0))


class Laplace(ParameterizedDistribution):
    """Laplace (double exponential) with location µ and scale b > 0."""

    name = "Laplace"
    param_arity = 2
    is_discrete = False

    def _check_params(self, params: tuple) -> tuple:
        loc = as_float(params[0], self.name, "location")
        scale = as_float(params[1], self.name, "scale")
        require(scale > 0.0, self.name, f"scale must be > 0: {scale}")
        return (loc, scale)

    def density(self, params: Sequence[Any], x: Any) -> float:
        loc, scale = self.validate_params(params)
        value = _as_real(x)
        if value is None:
            return 0.0
        return float(math.exp(-abs(value - loc) / scale) / (2.0 * scale))

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> float:
        loc, scale = self.validate_params(params)
        return float(rng.laplace(loc, scale))

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        loc, scale = self.validate_params(params)
        return rng.laplace(loc, scale, size=size)

    def cdf(self, params: Sequence[Any], x: float) -> float:
        loc, scale = self.validate_params(params)
        if x < loc:
            return 0.5 * math.exp((x - loc) / scale)
        return 1.0 - 0.5 * math.exp(-(x - loc) / scale)

    def ppf(self, params: Sequence[Any], q: np.ndarray) -> np.ndarray:
        loc, scale = self.validate_params(params)
        q = np.clip(np.asarray(q, dtype=float), 1e-300, 1.0 - 1e-16)
        return np.where(q < 0.5,
                        loc + scale * np.log(2.0 * q),
                        loc - scale * np.log(2.0 * (1.0 - q)))

    def mean(self, params: Sequence[Any]) -> float:
        loc, _scale = self.validate_params(params)
        return loc

    def variance(self, params: Sequence[Any]) -> float:
        _loc, scale = self.validate_params(params)
        return 2.0 * scale * scale
