"""Registry mapping distribution names to implementations.

The paper fixes a family ``Ψ`` of parameterized distributions that a
program may use (Section 3.1).  A :class:`DistributionRegistry` is that
family: the parser resolves ``Name⟨θ⟩`` random terms against it, and
custom families can be registered for applications.

A name-aliasing helper reproduces the paper's ``Flip'`` device
(Example 1.1): two registered names bound to the *same law* are
different elements of ``Ψ`` and therefore behave differently under the
semantics of [3] (which keys samples by distribution name) while being
interchangeable under this paper's semantics.
"""

from __future__ import annotations

from typing import Iterator

from repro.distributions.base import ParameterizedDistribution
from repro.distributions.continuous import (Beta, Exponential, Gamma,
                                            Laplace, LogNormal, Normal,
                                            Uniform)
from repro.distributions.discrete import (Bernoulli, Binomial, Categorical,
                                          DiscreteUniform, Flip, Geometric,
                                          Poisson)
from repro.errors import DistributionError


class DistributionRegistry:
    """A family ``Ψ`` of named parameterized distributions."""

    def __init__(self, distributions: list[ParameterizedDistribution]
                 | None = None):
        self._by_name: dict[str, ParameterizedDistribution] = {}
        for distribution in distributions or []:
            self.register(distribution)

    def register(self, distribution: ParameterizedDistribution,
                 name: str | None = None) -> None:
        """Add a distribution under its name (or an explicit alias)."""
        key = name or distribution.name
        if key in self._by_name:
            raise DistributionError(f"distribution {key!r} already "
                                    "registered")
        self._by_name[key] = distribution

    def alias(self, existing: str, alias_name: str) -> None:
        """Register a second *name* for an existing law.

        The alias shares the implementation object, so the laws are
        identical; only the name differs.  Under the paper's semantics
        programs are invariant under such renaming; under [3]'s they are
        not (Example 1.1, ``Flip`` vs ``Flip'``).
        """
        self.register(AliasedDistribution(self[existing], alias_name))

    def __getitem__(self, name: str) -> ParameterizedDistribution:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise DistributionError(
                f"unknown distribution {name!r} (known: {known})") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._by_name))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))

    def copy(self) -> "DistributionRegistry":
        registry = DistributionRegistry()
        registry._by_name = dict(self._by_name)
        return registry


class AliasedDistribution(ParameterizedDistribution):
    """A distribution that delegates everything but its name."""

    def __init__(self, inner: ParameterizedDistribution, name: str):
        self._inner = inner
        self.name = name
        self.param_arity = inner.param_arity
        self.is_discrete = inner.is_discrete

    def validate_params(self, params):
        return self._inner.validate_params(params)

    def _check_params(self, params):
        return self._inner.validate_params(params)

    def density(self, params, x):
        return self._inner.density(params, x)

    def sample(self, params, rng):
        return self._inner.sample(params, rng)

    def sample_batch(self, params, size, rng):
        return self._inner.sample_batch(params, size, rng)

    def support(self, params):
        return self._inner.support(params)

    def support_is_finite(self, params):
        return self._inner.support_is_finite(params)

    def cdf(self, params, x):
        return self._inner.cdf(params, x)

    def ppf(self, params, q):
        return self._inner.ppf(params, q)

    def sample_batch_truncated(self, params, region, size, rng):
        return self._inner.sample_batch_truncated(params, region, size, rng)

    def mean(self, params):
        return self._inner.mean(params)

    def variance(self, params):
        return self._inner.variance(params)


def default_registry() -> DistributionRegistry:
    """The standard family Ψ: Example 2.2's distributions and more.

    Includes the ``FlipPrime`` alias of ``Flip`` (the paper's ``Flip'``)
    so Example 1.1's ``G'_0`` can be written directly.
    """
    registry = DistributionRegistry([
        Flip(), Bernoulli(), Binomial(), Poisson(), Geometric(),
        DiscreteUniform(), Categorical(),
        Normal(), LogNormal(), Exponential(), Uniform(), Gamma(), Beta(),
        Laplace(),
    ])
    registry.alias("Flip", "FlipPrime")
    return registry


#: Shared default registry used when none is supplied explicitly.
DEFAULT_REGISTRY = default_registry()
