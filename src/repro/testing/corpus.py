"""Persisting and replaying shrunk reproducers.

When the fuzz runner finds a discrepancy it shrinks the case
(:mod:`repro.testing.shrink`) and saves it here as one JSON document:
the program in parseable surface syntax (every generated case
round-trips through :func:`repro.core.source.program_to_source`), the
input facts, the failing oracle's name and the observed detail.  The
pytest suite (``tests/test_fuzz_corpus.py``) replays every corpus file
on each run, so a discrepancy found once keeps failing the build until
the underlying bug is fixed - and guards against its regression
forever after.

File format (``schema_version`` 1)::

    {
      "schema_version": 1,
      "oracle": "chase-order",
      "seed": 123456,
      "kind": "exact",
      "detail": "policy last: exact SPDBs disagree: ...",
      "program": "R0(Flip<0.5>) :- E0(x).",
      "extensional": ["E0"],
      "facts": [{"relation": "E0", "args": [0]}, ...]
    }
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.program import Program
from repro.core.source import program_to_source
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.testing.fuzz import FuzzCase
from repro.testing.oracles import (FAIL, SKIP, Oracle, OracleOutcome,
                                   oracles_by_name)

SCHEMA_VERSION = 1


def _plain(value):
    """Coerce fact arguments to JSON-serializable plain Python."""
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return value


def case_to_payload(case: FuzzCase, oracle_name: str,
                    detail: str = "") -> dict:
    """The JSON document for one reproducer."""
    return {
        "schema_version": SCHEMA_VERSION,
        "oracle": oracle_name,
        "seed": int(case.seed),
        "kind": case.kind,
        "detail": detail,
        "program": program_to_source(case.program),
        "extensional": sorted(case.program.extensional),
        "facts": [{"relation": fact.relation,
                   "args": [_plain(arg) for arg in fact.args]}
                  for fact in case.instance.sorted_facts()],
    }


def payload_to_case(payload: dict) -> tuple[FuzzCase, str, str]:
    """Rebuild ``(case, oracle_name, detail)`` from a JSON document."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported corpus schema_version {version!r}")
    program = Program.parse(payload["program"],
                            extensional=payload["extensional"] or None)
    instance = Instance(
        Fact(item["relation"], tuple(item["args"]))
        for item in payload["facts"])
    case = FuzzCase(int(payload["seed"]), payload["kind"], program,
                    instance)
    return case, payload["oracle"], payload.get("detail", "")


def save_reproducer(directory: str | Path, case: FuzzCase,
                    oracle_name: str, detail: str = "") -> Path:
    """Persist a shrunk reproducer; returns its path.

    The filename embeds a content digest, so re-finding the same
    minimized case is idempotent rather than corpus-polluting.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = case_to_payload(case, oracle_name, detail)
    stable = dict(payload)
    stable.pop("detail", None)  # details may carry run-varying numbers
    stable.pop("seed", None)
    digest = hashlib.sha256(
        json.dumps(stable, sort_keys=True).encode()).hexdigest()[:12]
    path = directory / f"{oracle_name}-{digest}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                    + "\n")
    return path


def load_reproducer(path: str | Path) -> tuple[FuzzCase, str, str]:
    """Load one corpus file back into a replayable case."""
    return payload_to_case(json.loads(Path(path).read_text()))


def iter_corpus(directory: str | Path) -> Iterator[Path]:
    """The corpus files of a directory, in stable name order."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    yield from sorted(directory.glob("*.json"))


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one persisted reproducer."""

    path: Path
    oracle: str
    outcome: OracleOutcome
    detail: str  # the detail recorded when the case was saved


def replay_file(path: str | Path,
                oracles: dict[str, Oracle] | None = None,
                ) -> ReplayResult:
    """Re-run one corpus file through its recorded oracle."""
    oracles = oracles if oracles is not None else oracles_by_name()
    case, oracle_name, detail = load_reproducer(path)
    oracle = oracles.get(oracle_name)
    if oracle is None:
        outcome = OracleOutcome(SKIP,
                                f"unknown oracle {oracle_name!r}")
    else:
        try:
            outcome = oracle.check(case)
        except Exception as error:  # crash = the bug still reproduces
            outcome = OracleOutcome(FAIL,
                                    f"{type(error).__name__}: {error}")
    return ReplayResult(Path(path), oracle_name, outcome, detail)


def replay_corpus(directory: str | Path,
                  oracles: dict[str, Oracle] | None = None,
                  ) -> list[ReplayResult]:
    """Replay every reproducer in a corpus directory."""
    return [replay_file(path, oracles)
            for path in iter_corpus(directory)]
