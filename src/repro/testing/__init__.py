"""Differential fuzzing for the GDatalog engines (``repro.testing``).

The paper's correctness story is a collection of *agreement theorems*:
the probabilistic chase defines the same distribution no matter the
chase order (Theorems 5.6 / 6.1), Monte-Carlo sampling converges to
the exact SPDB, and every reachable instance satisfies the induced
functional dependencies (Lemma 3.10).  This subsystem turns those
theorems into an unbounded, automatic test generator:

* :mod:`~repro.testing.fuzz` - seeded random workloads spanning the
  grammar (all registered distributions, recursion, weak acyclicity on
  and off);
* :mod:`~repro.testing.oracles` - paired pipelines that must agree
  (naive vs semi-naive, sequential vs parallel, exact vs sampled,
  facade vs legacy shims, FDs, termination analysis);
* :mod:`~repro.testing.shrink` - delta-debugging minimizer for
  discrepancies;
* :mod:`~repro.testing.corpus` - persisted reproducers replayed by the
  pytest suite forever after;
* :mod:`~repro.testing.runner` - the budgeted loop behind the
  ``repro fuzz`` CLI subcommand and the pytest fuzz pass.

Quickstart::

    from repro.testing import run_fuzz
    report = run_fuzz(budget=200, seed=0,
                      corpus_dir="tests/fuzz_corpus")
    assert report.ok(), report.summary()

or from the shell::

    repro fuzz --budget 200 --seed 0 --corpus tests/fuzz_corpus
"""

from repro.testing.corpus import (ReplayResult, case_to_payload,
                                  iter_corpus, load_reproducer,
                                  payload_to_case, replay_corpus,
                                  replay_file, save_reproducer)
from repro.testing.fuzz import (CONTINUOUS, DEFAULT_FUZZ_CONFIG,
                                FINITE_DISCRETE, INFINITE_DISCRETE,
                                KINDS, CoverageTracker, FuzzCase,
                                FuzzConfig, case_features, case_seed,
                                distribution_parameters, generate_case,
                                generate_case_guided,
                                random_value_positions, rebuild_case)
from repro.testing.oracles import (BaranyAgreementOracle,
                                   BatchedVsScalarOracle,
                                   ChaseOrderOracle, ExactVsSampleOracle,
                                   FacadeVsLegacyOracle, FixpointOracle,
                                   InducedFDOracle, Oracle,
                                   OracleOutcome, StaticDynamicOracle,
                                   TerminationOracle,
                                   default_oracles, oracles_by_name)
from repro.testing.runner import (Discrepancy, FuzzReport, OracleStats,
                                  evaluate, run_fuzz)
from repro.testing.shrink import (case_rank, case_size, literal_cost,
                                  relation_count, shrink_case)

__all__ = [
    "CONTINUOUS", "BaranyAgreementOracle", "BatchedVsScalarOracle",
    "ChaseOrderOracle", "DEFAULT_FUZZ_CONFIG",
    "Discrepancy", "ExactVsSampleOracle", "FINITE_DISCRETE",
    "FacadeVsLegacyOracle", "FixpointOracle", "FuzzCase", "FuzzConfig",
    "FuzzReport", "INFINITE_DISCRETE", "InducedFDOracle", "KINDS",
    "Oracle", "OracleOutcome", "OracleStats", "ReplayResult",
    "StaticDynamicOracle",
    "TerminationOracle", "CoverageTracker", "case_features",
    "case_rank", "case_seed", "case_size",
    "case_to_payload", "literal_cost", "relation_count",
    "default_oracles", "distribution_parameters", "evaluate",
    "generate_case", "generate_case_guided", "iter_corpus",
    "load_reproducer",
    "oracles_by_name", "payload_to_case", "random_value_positions",
    "rebuild_case", "replay_corpus", "replay_file", "run_fuzz",
    "save_reproducer", "shrink_case",
]
