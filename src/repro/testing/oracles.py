"""Differential oracles: paired pipelines that must agree.

The paper's central theorems are *agreement* statements - the output
distribution does not depend on the chase order (Theorem 6.1 sequential,
Theorem 5.6 parallel), Monte-Carlo sampling converges to the exact SPDB,
and every reachable instance satisfies the induced FDs (Lemma 3.10).
Each :class:`Oracle` here checks one such agreement on a generated
:class:`~repro.testing.fuzz.FuzzCase` and reports
:class:`OracleOutcome`:

* ``fixpoint``       - naive vs semi-naive Datalog fixpoints on the
  deterministic fragment;
* ``chase-order``    - sequential chases under different policies vs
  the parallel chase: exact SPDBs must agree to float tolerance for
  discrete programs, and Kolmogorov-Smirnov for continuous ones;
* ``exact-vs-sample``- exact SPDB vs Monte-Carlo sampling, with
  binomial-sigma marginal bounds and a chi-squared world-distribution
  test;
* ``facade-legacy``  - the :mod:`repro.api` facade vs the deprecated
  top-level shims, which must be draw-for-draw identical;
* ``batched-scalar`` - the vectorized batch backend
  (:mod:`repro.engine.batched`) vs the scalar per-run loop: exact
  marginal/chi-squared agreement against the exact SPDB where
  enumeration is available, KS agreement of sampled values for
  continuous programs, draw-for-draw identity where the batched
  backend must fall back to the scalar loop, bit-identity of pooled
  vs unpooled draw schedules wherever no cross-group pooling occurred
  (draw identity is mandated there - the schedules coincide), and -
  on every batched result - exact identity of the columnar marginal
  reads with counts over the materialized worlds (the multi-round
  cascade and the columnar fact store must describe the same
  ensemble);
* ``barany-agreement`` - the per-rule (Grohe) vs per-distribution
  (Bárány, Section 6.2) semantics on programs where the two provably
  coincide: no random rule carries a head variable, and random rules
  either use pairwise distinct distribution families or share a family
  only with provably disjoint ground parameter tuples, so no draw is
  shared under one semantics but independent under the other;
* ``columnar-query`` - the columnar query planner
  (:mod:`repro.query.columnar`) vs naive per-world evaluation on
  randomly generated relational plans: answers must be *identical*
  per world slot (the planner is a compilation, not an estimate),
  push-forward distributions must be bit-equal - over plain batched
  ensembles and streamed importance-weighted posteriors alike - and
  vectorizable plans must never materialize the grouped worlds;
* ``sharded-single`` - sharded sampling (:mod:`repro.serving`, inline
  workers) vs the single-process paths: shard-count invariance is
  draw-for-draw (2 vs 3 shards bit-identical), sharded scalar mode is
  bit-identical to the single-process scalar loop, and the merged
  ensemble agrees with the exact SPDB where enumeration is available;
* ``conditioning``   - constraint-guided conditioning
  (:mod:`repro.core.backward` + truncated batch proposals) vs the
  established posterior paths on self-sampled evidence: guided vs
  likelihood weighting on observation pins, guided vs the exact
  conditioned SPDB (marginal identity within binomial sigmas) on
  enumerable event evidence, and guided vs rejection - with a KS test
  of the value columns where the importance weights are uniform -
  elsewhere;
* ``induced-fds``    - Lemma 3.10 on sampled chase runs (including
  truncated ones - the FDs hold on every *reachable* instance);
* ``termination``    - the static analysis (Section 6.3) vs observed
  chase behaviour;
* ``static-dynamic`` - the :mod:`repro.analysis` lint and capability
  predictions vs the engines: predicted batch-eligible programs must
  not fall back to the scalar loop, predicted-stable relations must
  never grow in any sampled world, predicted streaming-safe
  observations must not raise ``StreamingUnsupported``, and
  lint-clean programs must compile and sample without a program
  error.

Oracles return ``"skip"`` when a case is outside their precondition
(e.g. exact enumeration of a continuous program); the fuzz runner
reports per-oracle skip counts so shrinkage of coverage is visible.
Any exception escaping an engine is converted by the runner into a
failing outcome - crashes on well-formed workloads are bugs too.

Statistical thresholds are deliberately conservative (5-6 sigma /
``alpha <= 1e-4``): with seeded workloads every verdict is
reproducible, and the thresholds only need to separate "gross semantic
disagreement" from Monte-Carlo noise.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass

from repro.analysis import deep_analyze
from repro.api.session import CompiledProgram, Session, compile as \
    _compile
from repro.core.policies import (DEFAULT_POLICY, FirstPolicy,
                                 LastPolicy, RoundRobinPolicy)
from repro.core.fd import check_all_fds, fd_violation_report, induced_fds
from repro.core.observe import Observation
from repro.core.terms import Const, RandomTerm
from repro.errors import (DistributionError, MeasureError, ReproError,
                          StreamingUnsupported, ValidationError)
from repro.core.program import Program
from repro.core.semantics import (apply_to_pdb as legacy_apply_to_pdb,
                                  exact_spdb, sample_spdb)
from repro.core.termination import weakly_acyclic
from repro.engine.seminaive import (naive_fixpoint, seminaive_closure,
                                    seminaive_fixpoint)
from repro.measures.empirical import ks_critical_value, ks_two_sample
from repro.pdb.database import DiscretePDB, MonteCarloPDB
from repro.pdb.events import ContainsFactEvent
from repro.pdb.stats import fact_marginals
from repro.testing.fuzz import FuzzCase, random_value_positions

#: Statuses an oracle can report.
OK, FAIL, SKIP = "ok", "fail", "skip"


@dataclass(frozen=True)
class OracleOutcome:
    """Verdict of one oracle on one case."""

    status: str
    detail: str = ""

    def __bool__(self) -> bool:
        return self.status != FAIL


def _ok() -> OracleOutcome:
    return OracleOutcome(OK)


def _fail(detail: str) -> OracleOutcome:
    return OracleOutcome(FAIL, detail)


def _skip(detail: str) -> OracleOutcome:
    return OracleOutcome(SKIP, detail)


class Oracle:
    """Base class: a named differential check on fuzz cases."""

    #: Stable identifier used by the CLI, corpus files and reports.
    name: str = "?"

    def check(self, case: FuzzCase) -> OracleOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<oracle {self.name}>"


# ---------------------------------------------------------------------------
# Comparison helpers (module-level so tests can exercise them directly)
# ---------------------------------------------------------------------------

def compare_discrete_pdbs(first: DiscretePDB, second: DiscretePDB,
                          tolerance: float = 1e-9) -> str | None:
    """None if the exact SPDBs agree pointwise, else a description."""
    if first.allclose(second, tolerance):
        return None
    return (f"exact SPDBs disagree: tv={first.tv_distance(second):.3g} "
            f"({first.support_size()} vs {second.support_size()} worlds,"
            f" err {first.err_mass():.3g} vs {second.err_mass():.3g})")


def compare_monte_carlo_pdbs(first: MonteCarloPDB,
                             second: MonteCarloPDB) -> str | None:
    """None if the ensembles are draw-for-draw identical."""
    if first.truncated != second.truncated:
        return (f"truncation counts differ: {first.truncated} vs "
                f"{second.truncated}")
    if first.worlds != second.worlds:
        mismatches = sum(1 for a, b in zip(first.worlds, second.worlds)
                         if a != b)
        return (f"sampled worlds differ ({mismatches} positional "
                f"mismatches of {len(first.worlds)})")
    return None


def marginals_agree(exact: DiscretePDB, sampled: MonteCarloPDB,
                    z: float = 6.0, slack: float = 0.02) -> str | None:
    """Every exact fact marginal within ``z`` binomial sigmas."""
    n = sampled.n_runs
    for fact, probability in fact_marginals(exact).items():
        sigma = math.sqrt(max(probability * (1 - probability) / n,
                              1e-12))
        estimate = sampled.marginal(fact)
        if abs(estimate - probability) > z * sigma + slack:
            return (f"marginal of {fact!r}: exact {probability:.4f} vs "
                    f"sampled {estimate:.4f} (n={n})")
    return None


def worlds_agree_chi_squared(exact: DiscretePDB,
                             sampled: MonteCarloPDB) -> str | None:
    """Chi-squared test of the sampled world distribution.

    Also flags any sampled world outside the exact support - for a
    zero-err exact SPDB such a world is an outright semantic bug, not
    noise.
    """
    counts: dict = {}
    for world in sampled.worlds:
        counts[world] = counts.get(world, 0) + 1
    for world in counts:
        if exact.prob_of_instance(world) <= 0.0 \
                and exact.err_mass() <= 1e-12:
            return (f"sampled world outside exact support: "
                    f"{world.canonical_text()!r}")
    support = [world for world, _ in exact.worlds()]
    observed = [counts.get(world, 0) for world in support]
    expected = [exact.prob_of_instance(world) for world in support]
    missing = sampled.n_runs - sum(observed) - sampled.truncated
    if exact.err_mass() > 0 or missing > 0:
        observed.append(missing + sampled.truncated)
        expected.append(max(1.0 - sum(expected), 1e-12))
    total_expected = sum(expected)
    statistic = 0.0
    for count, probability in zip(observed, expected):
        mean = probability / total_expected * sampled.n_runs
        if mean <= 0:
            continue
        statistic += (count - mean) ** 2 / mean
    dof = max(len(expected) - 1, 1)
    limit = dof + 8.0 * math.sqrt(2.0 * dof) + 8.0
    if statistic > limit:
        return (f"world-distribution chi-squared {statistic:.1f} "
                f"exceeds limit {limit:.1f} (dof={dof})")
    return None


def ks_agreement(first: list[float], second: list[float],
                 alpha: float = 1e-4, slack: float = 1.3,
                 minimum: int = 10) -> str | None:
    """Two-sample KS check with a generous critical value."""
    if len(first) < minimum or len(second) < minimum:
        return None  # too little data to distinguish anything
    statistic = ks_two_sample(first, second)
    limit = slack * ks_critical_value(len(first), len(second), alpha)
    if statistic > limit:
        return (f"KS statistic {statistic:.4f} exceeds {limit:.4f} "
                f"(n={len(first)}, m={len(second)})")
    return None


def sampled_values(pdb: MonteCarloPDB, positions: dict[str, int],
                   ) -> list[float]:
    """Extract the sampled numbers from an ensemble's worlds."""
    values: list[float] = []
    for world in pdb.worlds:
        for relation, position in positions.items():
            for fact in sorted(world.facts_of(relation),
                               key=lambda f: f.sort_key()):
                value = fact.args[position]
                if isinstance(value, (int, float)):
                    values.append(float(value))
    return values


def _compiled(case: FuzzCase) -> CompiledProgram:
    return _compile(case.program)


def _session(case: FuzzCase, **overrides) -> Session:
    return _compiled(case).on(case.instance, **overrides)


def _exactable(case: FuzzCase) -> bool:
    return case.program.is_discrete() and weakly_acyclic(case.program)


# ---------------------------------------------------------------------------
# The oracles
# ---------------------------------------------------------------------------

class FixpointOracle(Oracle):
    """Naive vs semi-naive fixpoints on the deterministic fragment."""

    name = "fixpoint"

    def check(self, case: FuzzCase) -> OracleOutcome:
        det_rules = case.program.deterministic_rules()
        if not det_rules:
            return _skip("no deterministic rules")
        program = Program(det_rules,
                          registry=case.program.registry)
        naive = naive_fixpoint(program, case.instance)
        seminaive = seminaive_fixpoint(program, case.instance)
        if naive != seminaive:
            only_naive = naive.difference(seminaive)
            only_semi = seminaive.difference(naive)
            return _fail(
                f"fixpoints differ: naive-only "
                f"{sorted(map(repr, only_naive.facts))[:5]}, "
                f"seminaive-only "
                f"{sorted(map(repr, only_semi.facts))[:5]}")
        return _ok()


class ChaseOrderOracle(Oracle):
    """Policy and parallel/sequential independence (Thms 5.6 / 6.1)."""

    name = "chase-order"

    def __init__(self, n_runs: int = 120):
        self.n_runs = n_runs

    def check(self, case: FuzzCase) -> OracleOutcome:
        if not weakly_acyclic(case.program):
            return _skip("not weakly acyclic")
        if case.program.is_discrete():
            return self._check_exact(case)
        return self._check_statistical(case)

    def _check_exact(self, case: FuzzCase) -> OracleOutcome:
        session = _session(case)
        reference = session.exact(policy=FirstPolicy()).pdb
        for variant in (LastPolicy(), RoundRobinPolicy()):
            detail = compare_discrete_pdbs(
                reference, session.exact(policy=variant).pdb)
            if detail:
                return _fail(f"policy {variant.name}: {detail}")
        detail = compare_discrete_pdbs(
            reference, session.exact(parallel=True).pdb)
        if detail:
            return _fail(f"parallel chase: {detail}")
        return _ok()

    def _check_statistical(self, case: FuzzCase) -> OracleOutcome:
        positions = random_value_positions(case.program)
        if not positions:
            return _skip("no single-random-term heads to compare")
        n = self.n_runs
        base = _compiled(case)
        ensembles = []
        # backend="scalar" pinned: this oracle exercises the *scalar*
        # chase's order independence - under "auto" both policy
        # variants would route to the batched backend, whose prefix is
        # policy-independent by construction (the batched-scalar
        # oracle covers that backend separately).
        for index, overrides in enumerate((
                {"policy": FirstPolicy()},
                {"policy": LastPolicy()},
                {"parallel": True})):
            session = base.on(case.instance, seed=case.seed + index,
                              backend="scalar", **overrides)
            ensembles.append(sampled_values(session.sample(n).pdb,
                                            positions))
        labels = ("first-policy", "last-policy", "parallel")
        for index in range(1, len(ensembles)):
            detail = ks_agreement(ensembles[0], ensembles[index])
            if detail:
                return _fail(f"{labels[0]} vs {labels[index]}: {detail}")
        return _ok()


class ExactVsSampleOracle(Oracle):
    """Exact SPDB vs Monte-Carlo sampling (statistical tolerance)."""

    name = "exact-vs-sample"

    def __init__(self, n_runs: int = 300):
        self.n_runs = n_runs

    def check(self, case: FuzzCase) -> OracleOutcome:
        if not _exactable(case):
            return _skip("exact enumeration unavailable")
        # Pinned to the scalar sampler; the batched-scalar oracle
        # makes the same exact-SPDB comparison for the batched side.
        session = _session(case, seed=case.seed, backend="scalar")
        exact = session.exact().pdb
        sampled = session.sample(self.n_runs).pdb
        detail = marginals_agree(exact, sampled)
        if detail:
            return _fail(detail)
        detail = worlds_agree_chi_squared(exact, sampled)
        if detail:
            return _fail(detail)
        return _ok()


class FacadeVsLegacyOracle(Oracle):
    """The api facade vs the deprecated shims: identical draws."""

    name = "facade-legacy"

    def __init__(self, n_runs: int = 60, max_steps: int = 150):
        self.n_runs = n_runs
        self.max_steps = max_steps

    def check(self, case: FuzzCase) -> OracleOutcome:
        seed = case.seed & 0x7FFFFFFF
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            facade_mc = _session(
                case, seed=seed, streams="shared",
                max_steps=self.max_steps).sample(self.n_runs).pdb
            legacy_mc = sample_spdb(
                case.program, case.instance, self.n_runs, rng=seed,
                max_steps=self.max_steps)
            detail = compare_monte_carlo_pdbs(facade_mc, legacy_mc)
            if detail:
                return _fail(f"sample path: {detail}")
            if _exactable(case):
                facade_exact = _session(case).exact().pdb
                legacy_exact = exact_spdb(case.program, case.instance)
                detail = compare_discrete_pdbs(facade_exact,
                                               legacy_exact)
                if detail:
                    return _fail(f"exact path: {detail}")
                if case.input_pdb is not None:
                    facade_mix = _compiled(case) \
                        .apply_to_pdb(case.input_pdb).pdb
                    legacy_mix = legacy_apply_to_pdb(case.program,
                                                     case.input_pdb)
                    detail = compare_discrete_pdbs(facade_mix,
                                                   legacy_mix)
                    if detail:
                        return _fail(f"apply_to_pdb path: {detail}")
        return _ok()


class BatchedVsScalarOracle(Oracle):
    """The vectorized batch backend vs the scalar loop (same law).

    For weakly acyclic programs the two backends sample the same
    output distribution (Theorem 6.1 underwrites the batched prefix);
    the comparison is statistical.  Outside the batched backend's
    class (non-weakly-acyclic programs) it must fall back to the
    scalar loop, so there the check is exact draw-for-draw identity.
    On accepted cases the oracle additionally replays the batch with
    cross-group draw pooling disabled: whenever no cross-group pooling
    occurred the two schedules are identical, so the outcomes must be
    bit-for-bit equal (see :meth:`_pooling_identity`).
    """

    name = "batched-scalar"

    def __init__(self, n_runs: int = 250):
        self.n_runs = n_runs

    def check(self, case: FuzzCase) -> OracleOutcome:
        if not weakly_acyclic(case.program):
            return self._check_fallback_identity(case)
        if _exactable(case):
            return self._check_exact(case)
        return self._check_statistical(case)

    def _check_fallback_identity(self, case: FuzzCase) -> OracleOutcome:
        batched = _session(case, seed=case.seed, max_steps=200,
                           backend="batched").sample(30).pdb
        scalar = _session(case, seed=case.seed, max_steps=200,
                          backend="scalar").sample(30).pdb
        detail = compare_monte_carlo_pdbs(batched, scalar)
        if detail:
            return _fail(f"fallback not draw-identical: {detail}")
        return _ok()

    @staticmethod
    def _columnar_consistency(result) -> str | None:
        """Columnar marginal reads == counts over materialized worlds.

        Batched results answer ``marginal``/``fact_marginals`` from
        the columnar sample arrays; walking ``pdb.worlds`` then
        materializes the very same ensemble.  The two views must agree
        *exactly* (they are counts of one set of draws, not separate
        estimates), across every cascade round and fallback world.
        """
        pdb = result.pdb
        columnar = dict(result.fact_marginals())
        counts: dict = {}
        for world in pdb.worlds:  # materializes the ensemble
            for fact in world.facts:
                counts[fact] = counts.get(fact, 0) + 1
        materialized = {fact: count / pdb.n_runs
                        for fact, count in counts.items()}
        if columnar != materialized:
            keys = set(columnar) | set(materialized)
            diffs = [f"{fact!r}: columnar {columnar.get(fact)} vs "
                     f"worlds {materialized.get(fact)}"
                     for fact in keys
                     if columnar.get(fact) != materialized.get(fact)]
            return ("columnar marginals disagree with materialized "
                    f"worlds ({len(diffs)} facts): "
                    + "; ".join(sorted(diffs)[:4]))
        spot = [result.marginal(fact) == probability
                for fact, probability in list(columnar.items())[:10]]
        if not all(spot):
            return "single-fact marginal disagrees with the table"
        return None

    @staticmethod
    def _pooling_identity(session: Session, n: int = 40) -> str | None:
        """Pooled vs unpooled draw schedules replayed on one seed.

        Where draw identity is mandated, the two schedules are the
        *same* schedule: a round with a single signature group (every
        first round, and every round of a single-group cascade) issues
        identical ``sample_batch`` calls pooled or not, and scalar
        fallback worlds always draw from their own spawned streams.
        So when *every* wave of the pooled run had exactly one group
        (``n_group_rounds == n_rounds`` - cross-group pooling was
        structurally impossible), the unpooled replay follows the
        identical draw trajectory and the two outcomes must agree
        bit-for-bit - columnar groups and scalar fallback runs alike.
        A multi-group wave anywhere disarms the check: pooling may
        have moved draws (even with coincidentally equal call totals),
        after which only the law is preserved, which the surrounding
        oracle checks separately.
        """
        from repro.engine.batched import ColumnarMonteCarloPDB
        chase = session._batched_chase()
        cfg = session.config
        if chase is None or not isinstance(cfg.seed, int):
            return None
        policy = cfg.policy or DEFAULT_POLICY

        def outcome(pool: bool):
            return chase.run_batch(
                n, cfg.base_rng(), lambda: cfg.spawn_rngs(n), policy,
                cfg.max_steps, cfg.batch_min_group, pool=pool)

        pooled = outcome(True)
        if pooled is None:
            return None
        if pooled.diagnostics["n_group_rounds"] != \
                pooled.diagnostics["n_rounds"]:
            return None  # a multi-group wave: pooling may move draws
        unpooled = outcome(False)
        if unpooled is None:
            return None
        visible = session.compiled.visible_relations
        first = ColumnarMonteCarloPDB(pooled, visible)
        second = ColumnarMonteCarloPDB(unpooled, visible)
        detail = compare_monte_carlo_pdbs(first, second)
        if detail:
            return ("pooled draws not bit-identical to unpooled on a "
                    f"shared schedule: {detail}")
        return None

    def _check_exact(self, case: FuzzCase) -> OracleOutcome:
        session = _session(case, seed=case.seed)
        exact = session.exact().pdb
        result = session.sample(self.n_runs, backend="batched")
        if result.backend != "batched":
            # A silent scalar fallback would make this check vacuous
            # (scalar-vs-exact is ExactVsSampleOracle's job); surface
            # the coverage hole as a skip instead of a hollow ok.
            return _skip("batched backend declined this case")
        detail = self._columnar_consistency(result)
        if detail:
            return _fail(detail)
        detail = self._pooling_identity(session)
        if detail:
            return _fail(detail)
        batched = result.pdb
        detail = marginals_agree(exact, batched)
        if detail:
            return _fail(f"batched sampling: {detail}")
        detail = worlds_agree_chi_squared(exact, batched)
        if detail:
            return _fail(f"batched sampling: {detail}")
        return _ok()

    def _check_statistical(self, case: FuzzCase) -> OracleOutcome:
        positions = random_value_positions(case.program)
        if not positions:
            return _skip("no single-random-term heads to compare")
        base = _compiled(case)
        session = base.on(case.instance, seed=case.seed,
                          backend="batched")
        result = session.sample(self.n_runs)
        if result.backend != "batched":
            return _skip("batched backend declined this case")
        detail = self._columnar_consistency(result)
        if detail:
            return _fail(detail)
        detail = self._pooling_identity(session)
        if detail:
            return _fail(detail)
        scalar = base.on(case.instance, seed=case.seed + 1,
                         backend="scalar").sample(self.n_runs).pdb
        detail = ks_agreement(sampled_values(result.pdb, positions),
                              sampled_values(scalar, positions))
        if detail:
            return _fail(f"batched vs scalar: {detail}")
        return _ok()


class BaranyAgreementOracle(Oracle):
    """Grohe vs Bárány semantics where the two provably coincide.

    Section 6.2 characterizes the difference: the per-rule translation
    draws one sample per (rule, valuation of the carried head terms and
    parameters), while the Bárány translation keys samples by
    (distribution name, parameter tuple) shared across the program.
    The laws disagree exactly when some draw is shared under one
    semantics but independent under the other - repeated distribution
    terms (Example 1.1's ``G0``), or one rule fanning a parameter tuple
    over several carried values.  This oracle checks the complementary
    *agreement class*: every random rule's carried head terms are
    ground (no variables), and any two random rules either use
    distinct distribution families or carry provably disjoint ground
    parameter tuples (see :meth:`agreement_class`).  There the
    auxiliary relations of the two translations correspond one-to-one,
    so the output SPDBs must be equal - pointwise for discrete
    programs, statistically (KS over the sampled values) for
    continuous ones.
    """

    name = "barany-agreement"

    def __init__(self, n_runs: int = 250):
        self.n_runs = n_runs

    @staticmethod
    def agreement_class(program: Program) -> bool:
        """Whether the two semantics provably agree on ``program``.

        Rules of distinct distribution families never collide on a
        Bárány key.  Rules *sharing* a family are admitted too when
        every parameter of every such rule is a ground constant and
        the parameter tuples are pairwise distinct: the Bárány keys
        ``(family, parameters)`` are then provably disjoint across the
        whole chase, so each rule still owns exactly one independent
        draw under both translations.  A shared family with variable
        parameters (or coinciding ground tuples) stays outside the
        class - the ground parameter spaces could overlap at runtime.
        """
        from repro.core.terms import Const
        random_rules = program.random_rules()
        if not random_rules:
            return False
        families: dict[str, list[tuple | None]] = {}
        for rule in random_rules:
            if not rule.is_normal_form():
                return False
            position, term = rule.single_random_term()
            carried = [t for index, t in enumerate(rule.head.terms)
                       if index != position]
            if any(True for term_ in carried
                   for _variable in term_.variables()):
                return False
            params = tuple(param.value for param in term.params) \
                if all(isinstance(param, Const)
                       for param in term.params) else None
            families.setdefault(term.distribution.name,
                                []).append(params)
        for parameter_tuples in families.values():
            if len(parameter_tuples) == 1:
                continue
            if any(params is None for params in parameter_tuples):
                return False
            if len(set(parameter_tuples)) != len(parameter_tuples):
                return False
        return True

    def check(self, case: FuzzCase) -> OracleOutcome:
        if not self.agreement_class(case.program):
            return _skip("outside the semantics-agreement class")
        grohe = _compile(case.program)
        barany = _compile(case.program, semantics="barany")
        if not grohe.analyze().weakly_acyclic \
                or not barany.analyze().weakly_acyclic:
            return _skip("not weakly acyclic under both translations")
        if case.program.is_discrete():
            first = grohe.on(case.instance).exact().pdb
            second = barany.on(case.instance).exact().pdb
            detail = compare_discrete_pdbs(first, second)
            if detail:
                return _fail(f"semantics disagree exactly: {detail}")
            return _ok()
        positions = random_value_positions(case.program)
        if not positions:
            return _skip("no single-random-term heads to compare")
        first = grohe.on(case.instance, seed=case.seed,
                         backend="scalar").sample(self.n_runs).pdb
        second = barany.on(case.instance, seed=case.seed + 1,
                           backend="scalar").sample(self.n_runs).pdb
        detail = ks_agreement(sampled_values(first, positions),
                              sampled_values(second, positions))
        if detail:
            return _fail(f"grohe vs barany sampling: {detail}")
        return _ok()


class ShardedVsSingleOracle(Oracle):
    """Sharded sampling vs the single-process paths (repro.serving).

    The sharded path's guarantees are *exact*, not statistical, so
    this oracle checks identities: (a) shard-count invariance - the
    same plan split two ways and three ways must be draw-for-draw
    identical (per-world SeedSequence streams + the per-world draw
    schedule make a world's outcome independent of its shard); (b) in
    scalar mode, a sharded batch must be bit-identical to the
    single-process scalar loop under ``streams="spawn"`` (same
    streams, same code path per world); and (c) on exactable cases the
    merged ensemble must agree with the exact SPDB (the law check).
    Shards execute inline - the identical worker code path without the
    process pool - keeping the always-on fuzz battery cheap.
    """

    name = "sharded-single"

    def __init__(self, n_runs: int = 48):
        self.n_runs = n_runs

    def _sharded(self, session: Session, shards: int,
                 **overrides):
        from repro.serving import ShardExecutor, sample_sharded
        cfg = session.config.replace(shards=shards, **overrides)
        with ShardExecutor(session.compiled.translated,
                           session.instance, cfg,
                           inline=True) as executor:
            return sample_sharded(session, self.n_runs, cfg,
                                  executor=executor)

    def check(self, case: FuzzCase) -> OracleOutcome:
        seed = case.seed & 0x7FFFFFFF
        session = _session(case, seed=seed, max_steps=200)
        two = self._sharded(session, 2)
        three = self._sharded(session, 3)
        if two.diagnostics["mode"] != three.diagnostics["mode"]:
            return _fail(
                f"shard count changed the execution mode: "
                f"{two.diagnostics['mode']} vs "
                f"{three.diagnostics['mode']} (the batched/scalar "
                "decision must be shard-invariant)")
        detail = compare_monte_carlo_pdbs(two.pdb, three.pdb)
        if detail:
            return _fail(f"2 vs 3 shards: {detail}")
        sharded_scalar = self._sharded(session, 2, backend="scalar")
        single_scalar = session.configure(
            backend="scalar").sample(self.n_runs)
        detail = compare_monte_carlo_pdbs(sharded_scalar.pdb,
                                          single_scalar.pdb)
        if detail:
            return _fail(
                f"sharded scalar vs single-process scalar: {detail}")
        if _exactable(case):
            detail = marginals_agree(session.exact().pdb, two.pdb,
                                     slack=0.05)
            if detail:
                return _fail(f"sharded sampling law: {detail}")
        return _ok()


class InducedFDOracle(Oracle):
    """Lemma 3.10: induced FDs hold on every reachable instance."""

    name = "induced-fds"

    def __init__(self, n_runs: int = 30, max_steps: int = 200):
        self.n_runs = n_runs
        self.max_steps = max_steps

    def check(self, case: FuzzCase) -> OracleOutcome:
        compiled = _compiled(case)
        translated = compiled.translated
        if not induced_fds(translated):
            return _skip("no existential rules, no induced FDs")
        session = compiled.on(case.instance, seed=case.seed,
                              max_steps=self.max_steps)
        for rng in session.config.spawn_rngs(self.n_runs):
            run = session.run(rng=rng)
            if not check_all_fds(translated, run.instance):
                report = fd_violation_report(translated,
                                             [run.instance])
                return _fail("; ".join(report[:3]))
        return _ok()


class TerminationOracle(Oracle):
    """Static termination analysis vs observed chase behaviour."""

    name = "termination"

    def __init__(self, n_runs: int = 10, max_steps: int = 3000,
                 diverging_steps: int = 120):
        self.n_runs = n_runs
        self.max_steps = max_steps
        self.diverging_steps = diverging_steps

    def check(self, case: FuzzCase) -> OracleOutcome:
        compiled = _compiled(case)
        report = compiled.analyze()
        if report.weakly_acyclic:
            session = compiled.on(case.instance, seed=case.seed,
                                  max_steps=self.max_steps)
            for rng in session.config.spawn_rngs(self.n_runs):
                run = session.run(rng=rng)
                if not run.terminated:
                    return _fail(
                        "weakly acyclic program hit the step budget "
                        f"({self.max_steps} steps; Theorem 6.3 says it "
                        "terminates on every input)")
            return _ok()
        if report.almost_surely_diverges():
            # Sound even when the cycle is unreachable from the input:
            # only a run that *entered* a continuous cycle (fired its
            # auxiliary relation) and still terminated contradicts the
            # Section 6.3 argument (a probability-zero event).
            cyclic_relations = {target[0]
                                for _s, target in report.special_cycles}
            session = compiled.on(case.instance, seed=case.seed,
                                  max_steps=self.diverging_steps)
            for rng in session.config.spawn_rngs(3):
                run = session.run(rng=rng)
                entered = any(run.instance.facts_of(relation)
                              for relation in cyclic_relations)
                if run.terminated and entered:
                    return _fail(
                        "almost-surely-diverging program entered its "
                        f"continuous cycle yet terminated after "
                        f"{run.steps} steps")
            return _ok()
        return _skip("may-terminate cycle: no sound assertion")


class StreamingBatchOracle(Oracle):
    """Streamed evidence vs the one-shot weighted chase (repro.api.stream).

    A streaming posterior samples its columnar batch once and folds
    evidence into per-world importance weights; the one-shot
    ``posterior(method="likelihood")`` re-runs the weighted scalar
    chase from scratch.  Both estimate the same disintegrated
    posterior, so their marginals must agree within Monte-Carlo noise.
    Evidence is drawn from the stream's own prior - an
    actually-sampled ``(relation, carried, value)`` triple, so its
    likelihood is never zero - and cases the streaming safety gate
    declines (trigger-valued or signature-contradicting observations)
    skip rather than fail.
    """

    name = "streaming-batch"

    def __init__(self, n_runs: int = 300):
        self.n_runs = n_runs

    def check(self, case: FuzzCase) -> OracleOutcome:
        positions = random_value_positions(case.program)
        if not positions:
            return _skip("no single-random-term heads to observe")
        seed = case.seed & 0x7FFFFFFF
        session = _session(case, seed=seed, max_steps=200)
        try:
            stream = session.stream(self.n_runs)
            prior = fact_marginals(stream.posterior().pdb)
        except (StreamingUnsupported, ValidationError,
                MeasureError) as decline:
            return _skip(f"stream declined: {decline}")
        evidence = self._evidence_from_prior(prior, positions)
        if evidence is None:
            return _skip("prior sampled no observable fact")
        try:
            stream.observe(evidence)
            streamed = stream.posterior()
        except StreamingUnsupported as decline:
            return _skip(f"observation declined: {decline}")
        except MeasureError as degenerate:
            return _skip(f"degenerate posterior: {degenerate}")
        ess = streamed.effective_sample_size
        if ess is not None and ess < 8:
            return _skip(f"effective sample size too low ({ess:.1f})")
        try:
            one_shot = _session(case, seed=seed + 1, max_steps=200) \
                .observe(evidence).posterior(method="likelihood",
                                             n=self.n_runs)
        except MeasureError as degenerate:
            return _skip(f"degenerate one-shot posterior: {degenerate}")
        detail = marginals_agree(one_shot.pdb, streamed.pdb,
                                 slack=0.15)
        if detail:
            return _fail(f"streamed vs one-shot likelihood ({evidence!r}): "
                         f"{detail}")
        return _ok()

    @staticmethod
    def _evidence_from_prior(prior, positions) -> Observation | None:
        for fact in sorted(prior, key=lambda fact: fact.sort_key()):
            position = positions.get(fact.relation)
            if position is None or position >= len(fact.args):
                continue
            carried = fact.args[:position] + fact.args[position + 1:]
            return Observation(fact.relation, carried,
                               fact.args[position])
        return None


class ConditioningOracle(Oracle):
    """Guided conditioning vs likelihood / rejection / exact.

    Evidence is synthesized from the case's *own prior* (a sampled
    observation triple or an actually-produced output fact), so it
    always has positive probability and never trips the measure-zero
    guard.  Per case, up to two differential sub-checks run:

    * **observation path** - a sampled ``(relation, carried, value)``
      triple becomes an :class:`Observation`;
      ``posterior(method="guided")`` (single-point pin regions with
      truncated batch proposals) and ``posterior(method="likelihood")``
      (the weighted scalar chase) estimate the same disintegrated
      posterior, so their marginals must agree within Monte-Carlo
      noise;
    * **event path** - a ``ContainsFactEvent`` on a sampled
      random-head output fact; where exact enumeration is available
      the guided posterior must match the restrict-and-normalize SPDB
      marginal-for-marginal (binomial sigma bounds), elsewhere it is
      compared against plain rejection - including a KS test of the
      sampled value columns whenever the guided weights are uniform
      (then the guided ensemble is an unweighted posterior sample and
      the two-sample statistic applies directly).

    Cases where guided internally falls back (not weakly acyclic,
    batched engine declined) still run - the fallback must agree with
    the reference too - and the outcome detail records whether the
    guided proposal was actually exercised.
    """

    name = "conditioning"

    def __init__(self, n_runs: int = 300):
        self.n_runs = n_runs

    def check(self, case: FuzzCase) -> OracleOutcome:
        positions = random_value_positions(case.program)
        if not positions:
            return _skip("no single-random-term heads to condition on")
        seed = case.seed & 0x7FFFFFFF
        try:
            prior = _session(case, seed=seed, max_steps=200) \
                .sample(96).pdb
        except (ValidationError, MeasureError) as err:
            return _skip(f"prior sampling declined: {err}")
        prior_marginals = fact_marginals(prior)
        exercised: list[str] = []
        detail = self._check_observation(case, seed, prior_marginals,
                                         positions, exercised)
        if detail:
            return _fail(detail)
        detail = self._check_event(case, seed, prior_marginals,
                                   positions, exercised)
        if detail:
            return _fail(detail)
        if not exercised:
            return _skip("prior produced no usable evidence")
        return OracleOutcome(OK, " ".join(exercised))

    def _check_observation(self, case, seed, prior_marginals,
                           positions, exercised) -> str | None:
        evidence = StreamingBatchOracle._evidence_from_prior(
            prior_marginals, positions)
        if evidence is None:
            return None
        try:
            guided = _session(case, seed=seed + 1, max_steps=200) \
                .observe(evidence).posterior(method="guided",
                                             n=self.n_runs)
        except (MeasureError, ValidationError) as degenerate:
            exercised.append(f"obs:declined({degenerate})")
            return None
        try:
            reference = _session(case, seed=seed + 2, max_steps=200) \
                .observe(evidence).posterior(method="likelihood",
                                             n=self.n_runs)
        except (MeasureError, ValidationError):
            exercised.append("obs:no-reference")
            return None
        exercised.append(f"obs:{guided.kind}")
        ess = guided.effective_sample_size
        ref_ess = reference.effective_sample_size
        if (ess is not None and ess < 8) \
                or (ref_ess is not None and ref_ess < 8):
            exercised[-1] += ":low-ess"
            return None
        detail = marginals_agree(reference.pdb, guided.pdb,
                                 slack=0.15)
        if detail:
            return (f"guided vs likelihood ({evidence!r}): {detail} "
                    f"[{case.describe()}]")
        return None

    def _check_event(self, case, seed, prior_marginals, positions,
                     exercised) -> str | None:
        f = self._event_fact(prior_marginals, positions)
        if f is None:
            return None
        evidence = ContainsFactEvent(f)
        try:
            guided = _session(case, seed=seed + 3, max_steps=200) \
                .observe(evidence).posterior(method="guided",
                                             n=self.n_runs)
        except (MeasureError, ValidationError) as degenerate:
            exercised.append(f"event:declined({degenerate})")
            return None
        exercised.append(f"event:{guided.kind}")
        if guided.marginal(f) < 1.0 - 1e-9:
            return (f"guided posterior violates its own evidence: "
                    f"P({f!r}) = {guided.marginal(f)} "
                    f"[{case.describe()}]")
        if _exactable(case):
            try:
                exact = _session(case).observe(evidence) \
                    .posterior(method="exact")
            except MeasureError:
                return None
            detail = marginals_agree(exact.pdb, guided.pdb)
            if detail:
                return (f"guided vs exact ({f!r}): {detail} "
                        f"[{case.describe()}]")
            return None
        try:
            rejection = _session(case, seed=seed + 4, max_steps=200) \
                .observe(evidence).posterior(method="rejection",
                                             n=self.n_runs)
        except MeasureError:
            return None
        detail = self._continuous_agreement(guided, rejection,
                                            positions)
        if detail:
            return (f"guided vs rejection ({f!r}): {detail} "
                    f"[{case.describe()}]")
        return None

    @staticmethod
    def _event_fact(prior_marginals, positions):
        """A random-head output fact to condition on (rarest first).

        Prefers the least likely fact with marginal >= 0.1 - rare
        enough to exercise guidance, frequent enough that the
        rejection reference still accepts a comparable sample.
        """
        candidates = sorted(
            ((probability, fact)
             for fact, probability in prior_marginals.items()
             if fact.relation in positions and probability > 0.0),
            key=lambda pair: (pair[0], pair[1].sort_key()))
        for probability, fact in candidates:
            if probability >= 0.1:
                return fact
        return candidates[-1][1] if candidates else None

    @staticmethod
    def _continuous_agreement(guided, rejection, positions,
                              ) -> str | None:
        """KS of the value columns when guided weights are uniform."""
        weights = getattr(guided.pdb, "weights", None)
        if weights is None:
            # Guided fell back to plain rejection: two *independent*
            # rejection ensembles of the same posterior - compare
            # statistically, not draw-for-draw.
            detail = marginals_agree(rejection.pdb, guided.pdb,
                                     slack=0.15)
            if detail:
                return detail
            return ks_agreement(
                sampled_values(guided.pdb, positions),
                sampled_values(rejection.pdb, positions))
        live = weights[weights > 0]
        if live.size and (live.max() - live.min()) > 1e-9 * live.max():
            return None  # non-uniform weights: KS does not apply
        guided_values = [
            value for world, _w in guided.pdb._iter_weighted()
            for relation, position in positions.items()
            for fact in sorted(world.facts_of(relation),
                               key=lambda f: f.sort_key())
            if isinstance((value := fact.args[position]), (int, float))]
        reference_values = sampled_values(rejection.pdb, positions)
        return ks_agreement([float(v) for v in guided_values],
                            reference_values)


class ColumnarQueryOracle(Oracle):
    """The columnar query planner vs naive per-world evaluation.

    :mod:`repro.query.columnar` *compiles* relational plans to mask
    and reduction operations over the batched ensemble's sample
    arrays; compilation is answer-preserving, not an approximation, so
    every check here is an exact identity (no tolerances):

    * per world slot, the planner's answer relation equals
      ``plan.evaluate(world)`` on the materialized world;
    * the push-forward answer distribution is bit-equal to the one
      assembled naively from the per-world answers - over the plain
      batched ensemble and, when the case supports streaming, over the
      importance-weighted posterior of a stream that just observed
      evidence drawn from its own prior;
    * a vectorizable plan never materializes the grouped worlds
      (``ColumnarMonteCarloPDB.materializations`` stays put while the
      planner runs).

    Plans are generated per case from the ensemble's own relations
    and constants: scans with explicit columns, structural ``where``
    selections, projections, renames, natural joins (shared-column
    via rename), same-schema set operations and count aggregates
    (grouped and global) - the structural fragment the planner
    vectorizes.
    """

    name = "columnar-query"

    def __init__(self, n_runs: int = 120, n_plans: int = 8):
        self.n_runs = n_runs
        self.n_plans = n_plans

    # -- plan generation ----------------------------------------------------

    @staticmethod
    def _arities(pdb) -> dict[str, int]:
        """Visible relations with one consistent arity in the batch."""
        seen: dict[str, set[int]] = {}
        for fact in pdb.weighted_fact_totals(None):
            seen.setdefault(fact.relation, set()).add(len(fact.args))
        return {relation: lengths.pop()
                for relation, lengths in seen.items()
                if len(lengths) == 1}

    @staticmethod
    def _constants(pdb, limit: int = 24) -> list:
        """A pool of ground values the ensemble actually contains."""
        values: list = []
        for fact in sorted(pdb.weighted_fact_totals(None),
                           key=lambda fact: fact.sort_key()):
            values.extend(fact.args)
            if len(values) >= limit:
                break
        return values[:limit]

    @staticmethod
    def _scan(rng: random.Random, arities: dict[str, int],
              relation: str | None = None):
        from repro.query.relalg import Scan
        relation = relation or rng.choice(sorted(arities))
        columns = tuple(f"{relation.lower()}{index}"
                        for index in range(arities[relation]))
        return Scan(relation, columns), relation, columns

    def _random_plan(self, rng: random.Random,
                     arities: dict[str, int], constants: list):
        from repro.query.aggregates import Aggregate, agg_count
        query, relation, columns = self._scan(rng, arities)
        roll = rng.random()
        if roll < 0.25:
            # Same-schema set operation: a second scan of the same
            # relation (identical column names) with its own filter.
            other, _, _ = self._scan(rng, arities, relation)
            if constants and rng.random() < 0.7:
                other = other.where(**{rng.choice(columns):
                                       rng.choice(constants)})
            combine = rng.choice(("union", "difference", "intersect"))
            query = getattr(query, combine)(other)
        elif roll < 0.5:
            other, other_relation, other_columns = \
                self._scan(rng, arities)
            if other_relation == relation:
                # Self-join: rename one column so the join keys on
                # the remaining shared ones.
                victim = other_columns[-1]
                renamed = victim + "x"
            else:
                # Cross-relation join: rename one column onto one of
                # the left's so the join has a shared key.
                victim = rng.choice(other_columns)
                renamed = rng.choice(columns)
            if renamed not in other_columns:
                other = other.rename(**{victim: renamed})
                other_columns = tuple(renamed if c == victim else c
                                      for c in other_columns)
            query = query.join(other)
            columns = tuple(dict.fromkeys(columns + other_columns))
        if constants and rng.random() < 0.6:
            query = query.where(**{rng.choice(columns):
                                   rng.choice(constants)})
        if len(columns) > 1 and rng.random() < 0.4:
            keep = tuple(column for column in columns
                         if rng.random() < 0.7) or columns[:1]
            query, columns = query.project(*keep), keep
        if rng.random() < 0.35:
            group_by = tuple(column for column in columns
                             if rng.random() < 0.3)
            return Aggregate(query, group_by, {"n": agg_count()})
        return query

    # -- exact identities ---------------------------------------------------

    @staticmethod
    def _naive_measure(answers, weights=None, total=None):
        """The push-forward assembled without the planner.

        Mirrors :func:`repro.query.columnar._push_query` arithmetic
        exactly (same accumulation order, same divisions), so agreement
        is required to be bit-level, not approximate.
        """
        from repro.measures.discrete import DiscreteMeasure
        if weights is None:
            images = [relation.canonical() for relation in answers
                      if relation is not None]
            if not images:
                return DiscreteMeasure.zero()
            return DiscreteMeasure.from_samples(images).scale(total)
        masses: dict = {}
        for relation, weight in zip(answers, weights):
            if relation is None or weight <= 0.0:
                continue
            key = relation.canonical()
            masses[key] = masses.get(key, 0.0) + weight
        if not masses:
            return DiscreteMeasure.zero()
        return DiscreteMeasure({point: mass / total
                                for point, mass in masses.items()})

    def _check_plain(self, pdb, plans) -> str | None:
        from repro.query.columnar import (plan_vectorizable,
                                          query_answers,
                                          query_distribution)
        for number, plan in enumerate(plans):
            before = pdb.materializations
            compiled = query_answers(pdb, plan)
            if plan_vectorizable(plan) \
                    and pdb.materializations != before:
                return (f"plan #{number} is vectorizable yet "
                        "materialized the grouped worlds")
            naive = [None if world is None else plan.evaluate(world)
                     for world in pdb.world_slots()]
            for slot, (left, right) in enumerate(zip(compiled, naive)):
                if left != right:
                    return (f"plan #{number} answer differs in world "
                            f"{slot}: planner {left!r} vs naive "
                            f"{right!r}")
            columnar = query_distribution(pdb, plan)
            reference = self._naive_measure(naive,
                                            total=pdb.total_mass())
            if columnar != reference:
                return (f"plan #{number} push-forward differs: "
                        f"{columnar!r} vs naive {reference!r}")
        return None

    def _check_weighted(self, case: FuzzCase, plans) -> str | None:
        """Streamed importance-weighted posteriors answer identically."""
        from repro.pdb.weighted import WeightedColumnarPDB
        from repro.query.columnar import query_distribution
        seed = (case.seed & 0x7FFFFFFF) ^ 0x2C9
        session = _session(case, seed=seed, max_steps=200)
        try:
            stream = session.stream(self.n_runs)
            prior = fact_marginals(stream.posterior().pdb)
        except (StreamingUnsupported, ValidationError, MeasureError):
            return None  # no streamed coverage for this case
        positions = random_value_positions(case.program)
        evidence = StreamingBatchOracle._evidence_from_prior(
            prior, positions) if positions else None
        if evidence is not None:
            try:
                stream.observe(evidence)
            except (StreamingUnsupported, MeasureError):
                pass
        pdb = stream.posterior().pdb
        if not isinstance(pdb, WeightedColumnarPDB):
            return None
        weights = [float(weight) for weight in pdb.weights]
        for number, plan in enumerate(plans):
            columnar = query_distribution(pdb, plan)
            naive = [None if world is None else plan.evaluate(world)
                     for world in pdb._columnar.world_slots()]
            reference = self._naive_measure(
                naive, weights=weights, total=pdb.total_weight())
            if columnar != reference:
                return (f"plan #{number} over the weighted posterior "
                        f"differs: {columnar!r} vs naive "
                        f"{reference!r}")
        return None

    def check(self, case: FuzzCase) -> OracleOutcome:
        session = _session(case, seed=case.seed, max_steps=200,
                           backend="batched")
        result = session.sample(self.n_runs)
        if result.backend != "batched":
            return _skip("batched backend declined this case")
        pdb = result.pdb
        arities = self._arities(pdb)
        if not arities:
            return _skip("ensemble produced no visible facts")
        rng = random.Random(case.seed ^ 0xC01A)
        constants = self._constants(pdb)
        plans = [self._random_plan(rng, arities, constants)
                 for _ in range(self.n_plans)]
        detail = self._check_plain(pdb, plans)
        if detail:
            return _fail(detail)
        detail = self._check_weighted(case, plans)
        if detail:
            return _fail(detail)
        return _ok()


class StaticDynamicOracle(Oracle):
    """Static predictions (:mod:`repro.analysis`) vs engine behaviour.

    The analyzer's capability report is *conservative eligibility*: a
    capability predicted eligible must be honoured by the engines,
    while an ineligible verdict makes no runtime claim (the engines
    may still succeed on cases the static approximation declined).
    Four soundness directions are differentially checked per case:

    * **lint-clean** - a program with no error-severity lint
      diagnostic must compile and sample without raising a
      :class:`~repro.errors.ReproError` (data-driven ``Θ`` escapes
      through variable distribution parameters are outside the static
      claim and skip instead);
    * **batched** - predicted batch-eligible programs must not fall
      back to the scalar loop for structural reasons; a step-budget
      decline is retried with a generous budget before it counts;
    * **stable** - relations the columnar-lift analysis classifies as
      stable must never grow: in every sampled world their fact set
      stays inside the deterministic closure of the stable rules
      (subset, not equality - truncated worlds may carry fewer
      facts);
    * **streaming** - on predicted streaming-safe programs, observing
      evidence drawn from the stream's own prior must not raise
      :class:`~repro.errors.StreamingUnsupported` (worlds that fell
      to the scalar path within the batch are a budget artifact the
      analysis does not model, and skip).

    Each sub-check reports whether its precondition held; a case
    where no prediction was exercisable skips rather than reporting a
    hollow pass.
    """

    name = "static-dynamic"

    def __init__(self, n_runs: int = 80):
        self.n_runs = n_runs

    def check(self, case: FuzzCase) -> OracleOutcome:
        compiled = _compiled(case)
        report = deep_analyze(compiled.translated,
                              instance=case.instance,
                              termination=compiled.analyze())
        failures: list[str] = []
        claims = 0
        for checker in (self._lint_clean, self._batched_honoured,
                        self._stable_never_grow, self._streaming_safe):
            verdict = checker(case, report)
            if verdict is None:
                continue
            claimed, detail = verdict
            claims += claimed
            if detail:
                failures.append(detail)
        if failures:
            return _fail("; ".join(failures))
        if not claims:
            return _skip("no static claim applies to this case")
        return _ok()

    @staticmethod
    def _data_bound_parameters(case: FuzzCase) -> bool:
        for rule in case.program.rules:
            for arg in rule.head.args:
                if isinstance(arg, RandomTerm) and any(
                        not isinstance(param, Const)
                        for param in arg.params):
                    return True
        return False

    def _lint_clean(self, case: FuzzCase, report):
        if report.lint.errors:
            return None
        try:
            _session(case, seed=case.seed & 0x7FFFFFFF,
                     max_steps=200).sample(20)
        except DistributionError:
            if self._data_bound_parameters(case):
                return 0, ""  # a data-driven Θ escape - not a static claim
            return 1, ("lint-clean program with constant parameters "
                       "raised DistributionError at sampling time")
        except ReproError as err:
            return 1, ("lint-clean program failed to sample: "
                       f"{type(err).__name__}: {err}")
        return 1, ""

    def _batched_honoured(self, case: FuzzCase, report):
        if not report.capabilities.batched.eligible:
            return None
        seed = case.seed & 0x7FFFFFFF
        session = _session(case, seed=seed, max_steps=500,
                           backend="batched")
        if session._batched_chase() is None:
            return 1, ("predicted batch-eligible but BatchedChase "
                       "construction declined")
        if session.sample(self.n_runs).backend == "batched":
            return 1, ""
        # The only remaining decline is the step budget, which the
        # static analysis does not model; confirm with a generous one.
        retry = _session(case, seed=seed, max_steps=5000,
                         backend="batched").sample(self.n_runs)
        if retry.backend != "batched":
            return 1, ("predicted batch-eligible but sampling fell "
                       "back to the scalar loop")
        return 0, ""

    @staticmethod
    def _stable_never_grow(case: FuzzCase, report):
        stable = set(report.capabilities.stable_relations)
        if not stable:
            return None
        stable_rules = [rule for rule in case.program.rules
                        if not rule.is_random()
                        and rule.head.relation in stable]
        closure, _ = seminaive_closure(stable_rules, case.instance)
        allowed = set(closure.facts)
        pdb = _session(case, seed=case.seed & 0x7FFFFFFF,
                       max_steps=200).sample(25).pdb
        for index, world in enumerate(pdb.worlds):
            grown = sorted(repr(fact) for fact in world.facts
                           if fact.relation in stable
                           and fact not in allowed)
            if grown:
                return 1, ("predicted-stable relations grew in world "
                           f"{index}: {grown[:3]}")
        return 1, ""

    def _streaming_safe(self, case: FuzzCase, report):
        if not report.capabilities.streaming_observations.eligible:
            return None
        positions = random_value_positions(case.program)
        if not positions:
            return None
        seed = case.seed & 0x7FFFFFFF
        session = _session(case, seed=seed, max_steps=500)
        try:
            stream = session.stream(max(self.n_runs, 40))
        except StreamingUnsupported:
            if session._batched_chase() is None:
                return 1, ("predicted streaming-safe but the batched "
                           "backend declined structurally")
            return 0, ""  # step-budget decline of the batch itself
        if stream._outcome.diagnostics.get("n_split", 0):
            return 0, ""  # scalar fallback worlds: budget artifact
        try:
            prior = fact_marginals(stream.posterior().pdb)
        except MeasureError:
            return 0, ""
        evidence = StreamingBatchOracle._evidence_from_prior(
            prior, positions)
        if evidence is None:
            return 0, ""
        try:
            stream.observe(evidence)
        except StreamingUnsupported as err:
            return 1, ("predicted streaming-safe but observing "
                       f"{evidence!r} raised StreamingUnsupported: "
                       f"{err}")
        return 1, ""


def default_oracles() -> list[Oracle]:
    """The standard oracle battery, cheapest first."""
    return [FixpointOracle(), ChaseOrderOracle(), ExactVsSampleOracle(),
            FacadeVsLegacyOracle(), BatchedVsScalarOracle(),
            BaranyAgreementOracle(), ShardedVsSingleOracle(),
            InducedFDOracle(), TerminationOracle(),
            StreamingBatchOracle(), ColumnarQueryOracle(),
            ConditioningOracle(), StaticDynamicOracle()]


def oracles_by_name() -> dict[str, Oracle]:
    return {oracle.name: oracle for oracle in default_oracles()}
