"""Greedy minimization of failing fuzz cases (delta debugging).

A raw fuzz discrepancy can involve half a dozen rules and a dozen input
facts; almost all of them are usually irrelevant.  :func:`shrink_case`
repeatedly tries simplifying transformations and keeps any candidate on
which the discrepancy *persists*, until no transformation helps or the
check budget runs out.  Three families of passes, largest impact first:

* **structural** - drop a rule, drop an input fact, drop a body atom;
* **relation merging** - rewrite one relation into another of the same
  arity everywhere (program and instance), collapsing incidental
  relation diversity the failure does not depend on;
* **constant simplification** - shrink numeric literals toward ``0``
  and ``1``, in fact arguments, rule constants and distribution
  parameters alike (candidates whose parameters leave ``Θ_ψ`` are
  discarded by re-validation).

The merging and constant passes keep the structural
:func:`case_size` unchanged, so the descent is ordered by the finer
:func:`case_rank` - (size, distinct relations, literal cost),
lexicographic - and every accepted candidate strictly decreases it,
which is what keeps the greedy loop terminating.  The result is the
small reproducer that gets persisted to the corpus
(:mod:`repro.testing.corpus`) and replayed by the pytest suite.

The checker is a plain predicate ``case -> bool`` ("does it still
fail?"), so the shrinker is oracle-agnostic and directly testable with
synthetic predicates.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.atoms import Atom
from repro.core.rules import Rule, iter_constants
from repro.core.terms import Const, RandomTerm, Term
from repro.errors import ReproError
from repro.pdb.facts import Fact
from repro.testing.fuzz import FuzzCase, rebuild_case

#: Safety valve: maximum checker invocations per shrink.
DEFAULT_MAX_CHECKS = 250


def case_size(case: FuzzCase) -> int:
    """Structural shrink metric: rules + body atoms + input facts."""
    return (len(case.program.rules)
            + sum(len(rule.body) for rule in case.program.rules)
            + len(case.instance))


def _value_cost(value) -> int:
    """Simplicity ladder for literals: 0 < 1 < any other number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0
    if value == 0:
        return 0
    if value == 1:
        return 1
    return 2


def literal_cost(case: FuzzCase) -> int:
    """Total literal complexity of a case (see :func:`_value_cost`)."""
    cost = 0
    for fact in case.instance.sorted_facts():
        for argument in fact.args:
            cost += _value_cost(argument)
    for rule in case.program.rules:
        for constant in iter_constants(rule):
            cost += _value_cost(constant.value)
    return cost


def relation_count(case: FuzzCase) -> int:
    """Distinct relation names across the program and the instance."""
    names = {fact.relation for fact in case.instance.sorted_facts()}
    for rule in case.program.rules:
        names.add(rule.head.relation)
        names.update(atom.relation for atom in rule.body)
    return len(names)


def case_rank(case: FuzzCase) -> tuple[int, int, int]:
    """The well-founded descent order of the shrinker.

    Lexicographic (structural size, distinct relations, literal
    cost): structural passes strictly decrease the first component,
    relation merges the second without increasing the first, constant
    simplification the third without increasing the others - so the
    greedy loop terminates without needing a check budget (the budget
    stays as a safety valve for expensive checkers).
    """
    return (case_size(case), relation_count(case), literal_cost(case))


# ---------------------------------------------------------------------------
# Structural passes
# ---------------------------------------------------------------------------

def _structural_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Drop a rule / an input fact / a body atom, one at a time.

    Candidates that break well-formedness (e.g. removing the body atom
    that binds a head variable) are silently discarded - the rebuilt
    program re-validates on construction.
    """
    rules = list(case.program.rules)
    if len(rules) > 1:
        for index in range(len(rules)):
            smaller = rules[:index] + rules[index + 1:]
            try:
                yield rebuild_case(case, rules=smaller)
            except ReproError:
                continue
    facts = case.instance.sorted_facts()
    for index in range(len(facts)):
        yield rebuild_case(case,
                           facts=facts[:index] + facts[index + 1:])
    for rule_index, rule in enumerate(rules):
        if len(rule.body) <= 1:
            continue
        for atom_index in range(len(rule.body)):
            body = rule.body[:atom_index] + rule.body[atom_index + 1:]
            try:
                smaller_rule = type(rule)(rule.head, body,
                                          label=rule.label)
                yield rebuild_case(
                    case, rules=rules[:rule_index] + [smaller_rule]
                    + rules[rule_index + 1:])
            except ReproError:
                continue


# ---------------------------------------------------------------------------
# Relation merging
# ---------------------------------------------------------------------------

def _relation_arities(case: FuzzCase) -> dict[str, int] | None:
    """relation -> arity, or None entries dropped on inconsistency."""
    arities: dict[str, int] = {}
    consistent: dict[str, bool] = {}

    def record(relation: str, arity: int) -> None:
        known = arities.get(relation)
        if known is None:
            arities[relation] = arity
            consistent[relation] = True
        elif known != arity:
            consistent[relation] = False

    for fact in case.instance.sorted_facts():
        record(fact.relation, len(fact.args))
    for rule in case.program.rules:
        record(rule.head.relation, len(rule.head.terms))
        for atom in rule.body:
            record(atom.relation, len(atom.terms))
    return {relation: arity for relation, arity in arities.items()
            if consistent[relation]}


def _rename_relation(case: FuzzCase, source: str,
                     target: str) -> FuzzCase:
    def rename_atom(atom: Atom) -> Atom:
        if atom.relation != source:
            return atom
        return Atom(target, atom.terms)

    rules = [type(rule)(rename_atom(rule.head),
                        tuple(rename_atom(atom) for atom in rule.body),
                        label=rule.label)
             for rule in case.program.rules]
    facts = [Fact(target, fact.args) if fact.relation == source
             else fact for fact in case.instance.sorted_facts()]
    return rebuild_case(case, rules=rules, facts=facts)


def _merge_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Merge one relation into another of the same arity.

    The later-sorted name is rewritten into the earlier one, so merges
    are canonical and every accepted merge strictly reduces
    :func:`relation_count`.
    """
    arities = _relation_arities(case)
    names = sorted(arities)
    for target_index, target in enumerate(names):
        for source in names[target_index + 1:]:
            if arities[source] != arities[target]:
                continue
            try:
                yield _rename_relation(case, source, target)
            except ReproError:
                continue


# ---------------------------------------------------------------------------
# Constant simplification
# ---------------------------------------------------------------------------

def _simpler_values(value) -> tuple:
    """Replacement literals strictly lower on the simplicity ladder."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return ()
    if value == 0:
        return ()
    if value == 1:
        return (0,)
    return (0, 1)


def _replace_term(term: Term, site: int,
                  counter: list[int], value) -> Term:
    """Replace the ``site``-th constant (walking order) with ``value``."""
    if isinstance(term, Const):
        index = counter[0]
        counter[0] += 1
        if index == site:
            return Const(value)
        return term
    if isinstance(term, RandomTerm):
        params = tuple(_replace_term(param, site, counter, value)
                       for param in term.params)
        return RandomTerm(term.distribution, params)
    return term


def _rule_with_constant(rule: Rule, site: int, value) -> Rule:
    counter = [0]
    atoms = []
    for atom in (rule.head, *rule.body):
        atoms.append(Atom(atom.relation,
                          tuple(_replace_term(term, site, counter,
                                              value)
                                for term in atom.terms)))
    return type(rule)(atoms[0], tuple(atoms[1:]), label=rule.label)


def _constant_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Shrink one numeric literal toward 0/1, one site at a time.

    Covers input-fact arguments, rule constants and distribution
    parameters; candidates whose parameters fall outside ``Θ_ψ`` fail
    re-validation and are discarded.
    """
    facts = case.instance.sorted_facts()
    for fact_index, fact in enumerate(facts):
        for position, argument in enumerate(fact.args):
            for value in _simpler_values(argument):
                simpler = Fact(fact.relation,
                               fact.args[:position] + (value,)
                               + fact.args[position + 1:])
                yield rebuild_case(
                    case, facts=facts[:fact_index] + [simpler]
                    + facts[fact_index + 1:])
    rules = list(case.program.rules)
    for rule_index, rule in enumerate(rules):
        for site, constant in enumerate(iter_constants(rule)):
            for value in _simpler_values(constant.value):
                try:
                    simpler_rule = _rule_with_constant(rule, site,
                                                       value)
                    yield rebuild_case(
                        case, rules=rules[:rule_index] + [simpler_rule]
                        + rules[rule_index + 1:])
                except ReproError:
                    continue


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """All one-step simplifications of a case, largest-impact first."""
    yield from _structural_candidates(case)
    yield from _merge_candidates(case)
    yield from _constant_candidates(case)


def shrink_case(case: FuzzCase,
                still_fails: Callable[[FuzzCase], bool],
                max_checks: int = DEFAULT_MAX_CHECKS) -> FuzzCase:
    """Minimize a failing case while the discrepancy persists.

    ``still_fails`` must return True on ``case`` itself (the caller
    observed the failure); the returned case is the smallest reached
    one (by :func:`case_rank`) on which ``still_fails`` is still True.
    Greedy first-improving descent: sound (never returns a passing
    case) and cheap, at the cost of not exploring multi-step removals
    that only help jointly.  Candidates that do not strictly decrease
    the rank are skipped, so the descent is well-founded even with
    rewriting (non-size-reducing) passes in the mix.
    """
    checks = 0
    current = case
    current_rank = case_rank(current)
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            candidate_rank = case_rank(candidate)
            if candidate_rank >= current_rank:
                continue
            checks += 1
            failed = False
            try:
                failed = still_fails(candidate)
            except Exception:  # checker crash = not a reproduction
                failed = False
            if failed:
                current = candidate
                current_rank = candidate_rank
                improved = True
                break
    return current
