"""Greedy minimization of failing fuzz cases (delta debugging).

A raw fuzz discrepancy can involve half a dozen rules and a dozen input
facts; almost all of them are usually irrelevant.  :func:`shrink_case`
repeatedly tries structure-removing transformations - drop a rule, drop
a body atom, drop an input fact - and keeps any candidate on which the
discrepancy *persists*, until no transformation helps or the check
budget runs out.  The result is the small reproducer that gets
persisted to the corpus (:mod:`repro.testing.corpus`) and replayed by
the pytest suite.

The checker is a plain predicate ``case -> bool`` ("does it still
fail?"), so the shrinker is oracle-agnostic and directly testable with
synthetic predicates.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ReproError
from repro.testing.fuzz import FuzzCase, rebuild_case

#: Safety valve: maximum checker invocations per shrink.
DEFAULT_MAX_CHECKS = 250


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """All one-step simplifications of a case, largest-impact first.

    Candidates that break well-formedness (e.g. removing the body atom
    that binds a head variable) are silently discarded - the rebuilt
    program re-validates on construction.
    """
    rules = list(case.program.rules)
    if len(rules) > 1:
        for index in range(len(rules)):
            smaller = rules[:index] + rules[index + 1:]
            try:
                yield rebuild_case(case, rules=smaller)
            except ReproError:
                continue
    facts = case.instance.sorted_facts()
    for index in range(len(facts)):
        yield rebuild_case(case,
                           facts=facts[:index] + facts[index + 1:])
    for rule_index, rule in enumerate(rules):
        if len(rule.body) <= 1:
            continue
        for atom_index in range(len(rule.body)):
            body = rule.body[:atom_index] + rule.body[atom_index + 1:]
            try:
                smaller_rule = type(rule)(rule.head, body,
                                          label=rule.label)
                yield rebuild_case(
                    case, rules=rules[:rule_index] + [smaller_rule]
                    + rules[rule_index + 1:])
            except ReproError:
                continue


def case_size(case: FuzzCase) -> int:
    """Shrink metric: rules + body atoms + input facts."""
    return (len(case.program.rules)
            + sum(len(rule.body) for rule in case.program.rules)
            + len(case.instance))


def shrink_case(case: FuzzCase,
                still_fails: Callable[[FuzzCase], bool],
                max_checks: int = DEFAULT_MAX_CHECKS) -> FuzzCase:
    """Minimize a failing case while the discrepancy persists.

    ``still_fails`` must return True on ``case`` itself (the caller
    observed the failure); the returned case is the smallest reached
    one on which ``still_fails`` is still True.  Greedy first-improving
    descent: sound (never returns a passing case) and cheap, at the
    cost of not exploring multi-step removals that only help jointly.
    """
    checks = 0
    current = case
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            checks += 1
            failed = False
            try:
                failed = still_fails(candidate)
            except Exception:  # checker crash = not a reproduction
                failed = False
            if failed:
                current = candidate
                improved = True
                break
    return current
