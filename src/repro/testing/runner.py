"""The budgeted fuzz loop: generate, check, shrink, persist.

:func:`run_fuzz` drives everything the ``repro fuzz`` CLI subcommand
and the pytest fuzz pass expose: it generates ``budget`` seeded
workloads (:mod:`repro.testing.fuzz`), runs every applicable oracle
(:mod:`repro.testing.oracles`) on each, and on a discrepancy shrinks
the case (:mod:`repro.testing.shrink`) and persists the reproducer
(:mod:`repro.testing.corpus`).  The returned :class:`FuzzReport`
carries per-oracle statistics and every discrepancy found; its
:meth:`~FuzzReport.to_json` form is the documented ``--json`` output
of the CLI.

Engine exceptions are converted into failing outcomes here - a crash
on a well-formed generated workload is as much a discrepancy as a
numeric disagreement.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis import fatal_diagnostics
from repro.testing.corpus import save_reproducer
from repro.testing.fuzz import (CoverageTracker, FuzzCase, FuzzConfig,
                                case_seed, generate_case,
                                generate_case_guided)
from repro.testing.oracles import (FAIL, Oracle, OracleOutcome,
                                   default_oracles)
from repro.testing.shrink import DEFAULT_MAX_CHECKS, case_size, \
    shrink_case


def evaluate(oracle: Oracle, case: FuzzCase) -> OracleOutcome:
    """Run one oracle, converting crashes into failing outcomes."""
    try:
        return oracle.check(case)
    except Exception as error:
        trace = traceback.format_exc(limit=3)
        return OracleOutcome(
            FAIL, f"oracle crashed: {type(error).__name__}: {error}\n"
                  f"{trace}")


@dataclass
class OracleStats:
    """Per-oracle tallies across one fuzz run."""

    checked: int = 0
    ok: int = 0
    skipped: int = 0
    failed: int = 0
    seconds: float = 0.0

    def record(self, outcome: OracleOutcome,
               elapsed: float = 0.0) -> None:
        self.checked += 1
        self.seconds += elapsed
        if outcome.status == "ok":
            self.ok += 1
        elif outcome.status == "skip":
            self.skipped += 1
        else:
            self.failed += 1

    def to_json(self) -> dict:
        return {"checked": self.checked, "ok": self.ok,
                "skipped": self.skipped, "failed": self.failed,
                "seconds": round(self.seconds, 3)}


@dataclass(frozen=True)
class Discrepancy:
    """One confirmed disagreement, with its shrunk reproducer."""

    oracle: str
    detail: str
    case: FuzzCase
    shrunk: FuzzCase
    corpus_path: Path | None

    def to_json(self) -> dict:
        return {
            "oracle": self.oracle,
            "detail": self.detail,
            "case": self.case.describe(),
            "shrunk_size": case_size(self.shrunk),
            "original_size": case_size(self.case),
            "corpus_path": str(self.corpus_path)
            if self.corpus_path else None,
        }


@dataclass
class FuzzReport:
    """Everything one budgeted fuzz run observed."""

    budget: int
    seed: int
    n_cases: int = 0
    #: Cases the linter refused to hand to the oracles (fatal
    #: diagnostics - e.g. statically-invalid distribution parameters).
    lint_rejected: int = 0
    kinds: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    discrepancies: list = field(default_factory=list)
    elapsed: float = 0.0
    #: Distinct feature buckets covered (coverage-guided runs only).
    coverage_buckets: int | None = None

    def ok(self) -> bool:
        """True when no oracle disagreed on any generated workload."""
        return not self.discrepancies

    def to_json(self) -> dict:
        """The documented machine-readable form (CLI ``--json``)."""
        payload = {
            "command": "fuzz",
            "budget": self.budget,
            "seed": self.seed,
            "n_cases": self.n_cases,
            "lint_rejected": self.lint_rejected,
            "n_discrepancies": len(self.discrepancies),
            "kinds": dict(sorted(self.kinds.items())),
            "oracles": {name: stats.to_json()
                        for name, stats in sorted(self.stats.items())},
            "discrepancies": [d.to_json() for d in self.discrepancies],
            "corpus_written": [str(d.corpus_path)
                               for d in self.discrepancies
                               if d.corpus_path],
            "elapsed_seconds": self.elapsed,
        }
        if self.coverage_buckets is not None:
            payload["coverage_buckets"] = self.coverage_buckets
        return payload

    def summary(self) -> str:
        """One human line, CI-log friendly."""
        verdict = "OK" if self.ok() else \
            f"{len(self.discrepancies)} DISCREPANCIES"
        coverage = "" if self.coverage_buckets is None else \
            f", {self.coverage_buckets} feature buckets"
        return (f"fuzz: {self.n_cases} cases, seed {self.seed}"
                f"{coverage}, {verdict} in {self.elapsed:.1f}s")


def run_fuzz(budget: int = 100, seed: int = 0, *,
             config: FuzzConfig | None = None,
             oracles: Sequence[Oracle] | None = None,
             corpus_dir: str | Path | None = None,
             shrink: bool = True,
             max_shrink_checks: int = DEFAULT_MAX_CHECKS,
             on_case: Callable[[int, FuzzCase], None] | None = None,
             coverage_guided: bool = False,
             ) -> FuzzReport:
    """Run a budgeted differential-fuzz pass.

    Parameters
    ----------
    budget:
        Number of generated workloads.
    seed:
        Root seed; case ``i`` uses ``case_seed(seed, i)``, so any
        reported case is reproducible from ``(seed, i)`` alone (plus
        the recorded kind under ``coverage_guided``).
    oracles:
        Oracle battery (default: :func:`default_oracles`).
    corpus_dir:
        Where shrunk reproducers are persisted; None disables
        persistence (the report still carries the shrunk cases).
    shrink:
        Disable to record raw failing cases (faster triage loops).
    on_case:
        Optional progress callback ``(index, case)``.
    coverage_guided:
        Bias generation toward translated-program feature buckets not
        yet seen in this run (:func:`~repro.testing.fuzz.
        generate_case_guided`); the report then carries the covered
        bucket count.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    battery = list(oracles) if oracles is not None \
        else default_oracles()
    report = FuzzReport(budget=int(budget), seed=int(seed))
    report.stats = {oracle.name: OracleStats() for oracle in battery}
    tracker = CoverageTracker() if coverage_guided else None
    start = time.perf_counter()
    for index in range(budget):
        if tracker is not None:
            case = generate_case_guided(case_seed(seed, index),
                                        tracker, config)
        else:
            case = generate_case(case_seed(seed, index), config)
        report.n_cases += 1
        report.kinds[case.kind] = report.kinds.get(case.kind, 0) + 1
        if on_case is not None:
            on_case(index, case)
        if fatal_diagnostics(case.program):
            # A statically-invalid case (e.g. constant parameters
            # outside Θ) would only measure how engines crash, not
            # whether they agree; count it and move on.
            report.lint_rejected += 1
            continue
        for oracle in battery:
            oracle_start = time.perf_counter()
            outcome = evaluate(oracle, case)
            report.stats[oracle.name].record(
                outcome, time.perf_counter() - oracle_start)
            if outcome.status != FAIL:
                continue
            shrunk = case
            if shrink:
                shrunk = shrink_case(
                    case,
                    lambda c: evaluate(oracle, c).status == FAIL,
                    max_checks=max_shrink_checks)
            corpus_path = None
            if corpus_dir is not None:
                corpus_path = save_reproducer(
                    corpus_dir, shrunk, oracle.name, outcome.detail)
            report.discrepancies.append(Discrepancy(
                oracle.name, outcome.detail, case, shrunk,
                corpus_path))
    if tracker is not None:
        report.coverage_buckets = len(tracker.seen)
    report.elapsed = time.perf_counter() - start
    return report
