"""Pytest integration: a budgeted fuzz pass on every test run.

Registered from the repository's top-level ``conftest.py`` via
``pytest_plugins = ("repro.testing.pytest_plugin",)``.  It contributes
two command-line options and the fixtures the fuzz tests consume:

* ``--fuzz-budget N`` - number of generated workloads for the suite's
  differential-fuzz pass (default: a small smoke budget, so every
  local ``pytest`` run fuzzes a little; CI cranks it up);
* ``--fuzz-seed S``   - root seed of the pass (default 0, the fixed CI
  seed, so failures are reproducible across machines).

``tests/test_fuzz.py`` turns these into an actual budgeted
:func:`repro.testing.run_fuzz` invocation, and
``tests/test_fuzz_corpus.py`` replays every persisted reproducer.
"""

from __future__ import annotations

import pytest

#: Default per-pytest-run smoke budget (kept small; CI raises it).
DEFAULT_PYTEST_BUDGET = 12


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro-fuzz",
                            "generative-datalog differential fuzzing")
    group.addoption(
        "--fuzz-budget", action="store", type=int, default=None,
        help="number of random workloads for the differential fuzz "
             f"pass (default {DEFAULT_PYTEST_BUDGET})")
    group.addoption(
        "--fuzz-seed", action="store", type=int, default=0,
        help="root seed of the fuzz pass (default 0)")


@pytest.fixture(scope="session")
def fuzz_budget(request) -> int:
    budget = request.config.getoption("--fuzz-budget")
    return DEFAULT_PYTEST_BUDGET if budget is None else int(budget)


@pytest.fixture(scope="session")
def fuzz_seed(request) -> int:
    return int(request.config.getoption("--fuzz-seed"))
