"""Seeded random GDatalog workload generation.

The differential-testing subsystem needs an unbounded supply of
*well-formed* programs and input instances that span the grammar of
Definition 3.3: deterministic and random rules, bodiless (⊤) rules,
recursion, every registered distribution, parameters taken from data,
and programs on both sides of the weak-acyclicity line of Section 6.3.

Everything is driven by one :class:`numpy.random.Generator`, so a case
is fully determined by its integer seed: ``generate_case(seed)`` always
returns the same :class:`FuzzCase`, and a failing seed printed by the
fuzz runner reproduces the workload exactly.

Cases come in four *kinds*, chosen so that every differential oracle
(:mod:`repro.testing.oracles`) has workloads it can run on:

* ``"deterministic"`` - plain Datalog (naive/semi-naive fixpoints and
  the trivial one-world chase);
* ``"exact"`` - discrete, weakly-acyclic, finite-support programs whose
  chase trees are small enough to enumerate exactly (sequential vs
  parallel vs Monte-Carlo agreement);
* ``"sampling"`` - arbitrary registered distributions, including
  continuous and infinite-support discrete families (statistical
  oracles only);
* ``"cyclic"`` - weak acyclicity *off*: recursion through a random
  rule, exercising the termination analysis and the err-mass paths.

Generated programs use only the parseable surface syntax, so every
case round-trips through :func:`repro.core.source.program_to_source` -
which is what lets :mod:`repro.testing.corpus` persist shrunk
reproducers as plain text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Term, Var
from repro.distributions.registry import (DEFAULT_REGISTRY,
                                          DistributionRegistry)
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

#: The four workload kinds (see module docstring).
KINDS = ("deterministic", "exact", "sampling", "cyclic")

#: Finite-support discrete families: safe for exact enumeration.
FINITE_DISCRETE = ("Flip", "Bernoulli", "FlipPrime", "Binomial",
                   "DiscreteUniform", "Categorical")
#: Discrete families with infinite support (truncated enumeration only).
INFINITE_DISCRETE = ("Poisson", "Geometric")
#: Continuous families (Monte-Carlo only).
CONTINUOUS = ("Normal", "LogNormal", "Exponential", "Uniform", "Gamma",
              "Beta", "Laplace")

_VARS = ("x", "y", "z", "w")
_INT_POOL = (0, 1, 2, 3)
_STR_POOL = ("a", "b")
#: Exact probability simplices for Categorical (sum to 1 within 1e-9).
_SIMPLICES = ((0.5, 0.5), (0.25, 0.75), (0.2, 0.3, 0.5),
              (0.25, 0.25, 0.5))


@dataclass(frozen=True)
class FuzzConfig:
    """Tunable knobs of the workload generator (all bounded small).

    The bounds for ``"exact"`` cases are deliberately tight - random
    rule bodies reference relations with at most ``max_exact_facts``
    facts, keeping the chase tree below a few hundred leaves so exact
    enumeration stays cheap inside a large fuzz budget.
    """

    kinds: tuple[str, ...] = KINDS
    kind_weights: tuple[float, ...] = (0.2, 0.35, 0.3, 0.15)
    max_extensional: int = 3
    max_facts: int = 3
    max_exact_facts: int = 2
    max_det_rules: int = 3
    max_random_rules: int = 3
    max_exact_random_rules: int = 2
    registry: DistributionRegistry = field(default=DEFAULT_REGISTRY)

    def __post_init__(self) -> None:
        if len(self.kinds) != len(self.kind_weights):
            raise ValueError("kinds and kind_weights must align")
        unknown = set(self.kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fuzz kinds: {sorted(unknown)}")


DEFAULT_FUZZ_CONFIG = FuzzConfig()


@dataclass(frozen=True)
class FuzzCase:
    """One generated workload: a program, its input, and provenance.

    ``input_pdb`` is an optional probabilistic *input* database over
    subsets of the instance (tuple-independent, small support); cases
    carrying one exercise the ``apply_to_pdb`` mixture semantics
    (Theorem 4.8) in addition to the plain single-instance chase.
    """

    seed: int
    kind: str
    program: Program
    instance: Instance
    input_pdb: Any = None

    def describe(self) -> str:
        """One-line summary used in reports and discrepancy details."""
        pdb = " pdb-input" if self.input_pdb is not None else ""
        return (f"seed={self.seed} kind={self.kind} "
                f"rules={len(self.program)} "
                f"random={len(self.program.random_rules())} "
                f"facts={len(self.instance)}{pdb}")


def case_seed(root_seed: int, index: int) -> int:
    """The derived seed of case ``index`` in a budgeted run.

    Uses :class:`numpy.random.SeedSequence` so consecutive indices give
    decorrelated generators while staying reproducible from
    ``(root_seed, index)``.
    """
    sequence = np.random.SeedSequence([int(root_seed), int(index)])
    return int(sequence.generate_state(1, np.uint32)[0])


def generate_case(seed: int, config: FuzzConfig | None = None,
                  kind: str | None = None) -> FuzzCase:
    """Generate one deterministic random workload from a seed.

    ``kind`` forces a specific workload kind; by default it is drawn
    from ``config.kind_weights``.
    """
    config = config or DEFAULT_FUZZ_CONFIG
    rng = np.random.default_rng(int(seed))
    if kind is None:
        weights = np.asarray(config.kind_weights, dtype=float)
        kind = str(rng.choice(list(config.kinds),
                              p=weights / weights.sum()))
    if kind not in KINDS:
        raise ValueError(f"unknown fuzz kind {kind!r}")
    if kind == "cyclic":
        program, instance = _generate_cyclic(rng, config)
    else:
        program, instance = _generate_layered(rng, config, kind)
    input_pdb = None
    if kind == "exact" and len(instance) and rng.random() < 0.3:
        input_pdb = random_input_pdb(instance, rng)
    return FuzzCase(int(seed), kind, program, instance, input_pdb)


def random_input_pdb(instance: Instance, rng: np.random.Generator):
    """A small tuple-independent input PDB over the instance's facts.

    Each fact is kept independently with a probability drawn from
    ``{0.5, 0.75, 1.0}`` (exact dyadic values so world probabilities
    round-trip through text); the support is capped at 8 worlds by
    treating at most three facts as uncertain.  Used by the
    ``apply_to_pdb`` mixture checks (Theorem 4.8).
    """
    from repro.measures.discrete import DiscreteMeasure
    from repro.pdb.database import DiscretePDB

    facts = sorted(instance.facts, key=lambda f: f.sort_key())
    uncertain = facts[:3]
    certain = tuple(facts[3:])
    probabilities = [float(rng.choice((0.5, 0.75, 1.0)))
                     for _ in uncertain]
    worlds: dict = {}
    for mask in range(1 << len(uncertain)):
        weight = 1.0
        included = list(certain)
        for index, (fact, p) in enumerate(zip(uncertain,
                                              probabilities)):
            if mask >> index & 1:
                weight *= p
                included.append(fact)
            else:
                weight *= 1.0 - p
        if weight <= 0.0:
            continue
        world = Instance(included)
        worlds[world] = worlds.get(world, 0.0) + weight
    return DiscretePDB(DiscreteMeasure(worlds))


# ---------------------------------------------------------------------------
# Distribution parameters
# ---------------------------------------------------------------------------

def distribution_parameters(name: str, rng: np.random.Generator,
                            ) -> tuple:
    """A random *valid* parameter tuple for a registered family.

    Values are rounded so that their ``repr`` round-trips through the
    surface syntax unchanged.
    """
    u = lambda low, high: round(float(rng.uniform(low, high)), 3)  # noqa: E731
    if name in ("Flip", "Bernoulli", "FlipPrime"):
        return (u(0.1, 0.9),)
    if name == "Binomial":
        return (int(rng.integers(1, 4)), u(0.2, 0.8))
    if name == "DiscreteUniform":
        low = int(rng.integers(0, 3))
        return (low, low + int(rng.integers(0, 3)))
    if name == "Categorical":
        return tuple(_SIMPLICES[int(rng.integers(len(_SIMPLICES)))])
    if name == "Poisson":
        return (u(0.3, 2.0),)
    if name == "Geometric":
        return (u(0.3, 0.9),)
    if name == "Normal":
        return (u(-2.0, 2.0), u(0.5, 2.0))
    if name == "LogNormal":
        return (u(-0.5, 0.5), u(0.2, 1.0))
    if name == "Exponential":
        return (u(0.5, 2.0),)
    if name == "Uniform":
        low = u(-2.0, 1.0)
        return (low, low + u(0.5, 2.0))
    if name == "Gamma":
        return (u(0.5, 3.0), u(0.5, 2.0))
    if name == "Beta":
        return (u(0.5, 3.0), u(0.5, 3.0))
    if name == "Laplace":
        return (u(-1.0, 1.0), u(0.5, 1.5))
    raise ValueError(f"no parameter sampler for distribution {name!r}")


def _distribution_names(kind: str) -> tuple[str, ...]:
    if kind == "exact":
        return FINITE_DISCRETE
    return FINITE_DISCRETE + INFINITE_DISCRETE + CONTINUOUS


# ---------------------------------------------------------------------------
# Layered generation (deterministic / exact / sampling)
# ---------------------------------------------------------------------------

class _Builder:
    """Mutable state threaded through one generation run."""

    def __init__(self, rng: np.random.Generator, config: FuzzConfig,
                 kind: str):
        self.rng = rng
        self.config = config
        self.kind = kind
        self.arities: dict[str, int] = {}
        self.rules: list[Rule] = []
        self.facts: list[Fact] = []
        self.extensional: list[str] = []
        #: Relations a random-rule body may reference (kept small for
        #: ``"exact"`` so chase trees stay enumerable).
        self.random_body_pool: list[str] = []
        #: Relations a deterministic-rule body may reference.
        self.det_body_pool: list[str] = []
        self._fresh = 0

    def fresh_relation(self, prefix: str, arity: int) -> str:
        name = f"{prefix}{self._fresh}"
        self._fresh += 1
        self.arities[name] = arity
        return name

    def random_const(self) -> Const:
        if self.rng.random() < 0.2:
            return Const(str(self.rng.choice(_STR_POOL)))
        return Const(int(self.rng.choice(_INT_POOL)))

    def body_atom(self, relation: str,
                  bound: list[Var]) -> tuple[Atom, list[Var]]:
        """One body atom; variables favour reuse to create joins."""
        terms: list[Term] = []
        new_bound = list(bound)
        for _ in range(self.arities[relation]):
            roll = self.rng.random()
            if roll < 0.25:
                terms.append(self.random_const())
            elif new_bound and roll < 0.65:
                terms.append(new_bound[int(self.rng.integers(
                    len(new_bound)))])
            else:
                candidates = [Var(v) for v in _VARS
                              if Var(v) not in new_bound]
                variable = candidates[int(self.rng.integers(
                    len(candidates)))] if candidates \
                    else new_bound[int(self.rng.integers(
                        len(new_bound)))]
                if variable not in new_bound:
                    new_bound.append(variable)
                terms.append(variable)
        return Atom(relation, terms), new_bound


def _add_extensional(builder: _Builder) -> None:
    rng, config = builder.rng, builder.config
    n_relations = int(rng.integers(1, config.max_extensional + 1))
    max_facts = config.max_exact_facts if builder.kind == "exact" \
        else config.max_facts
    for _ in range(n_relations):
        arity = int(rng.integers(1, 3))
        name = builder.fresh_relation("E", arity)
        builder.extensional.append(name)
        builder.random_body_pool.append(name)
        builder.det_body_pool.append(name)
        for _ in range(int(rng.integers(0, max_facts + 1))):
            args = []
            for position in range(arity):
                if position == 0 and rng.random() < 0.25:
                    args.append(str(rng.choice(_STR_POOL)))
                else:
                    args.append(int(rng.choice(_INT_POOL)))
            fact = Fact(name, tuple(args))
            if fact not in builder.facts:
                builder.facts.append(fact)


def _add_deterministic_rules(builder: _Builder, minimum: int) -> None:
    rng, config = builder.rng, builder.config
    n_rules = int(rng.integers(minimum, config.max_det_rules + 1))
    for _ in range(n_rules):
        n_atoms = int(rng.integers(1, 4))
        body: list[Atom] = []
        bound: list[Var] = []
        for _ in range(n_atoms):
            relation = builder.det_body_pool[int(rng.integers(
                len(builder.det_body_pool)))]
            body_atom, bound = builder.body_atom(relation, bound)
            body.append(body_atom)
        arity = int(rng.integers(1, 3))
        head_terms: list[Term] = []
        for _ in range(arity):
            if bound and rng.random() < 0.85:
                head_terms.append(bound[int(rng.integers(len(bound)))])
            else:
                head_terms.append(builder.random_const())
        name = builder.fresh_relation("D", arity)
        rule = Rule(Atom(name, head_terms), body)
        builder.rules.append(rule)
        builder.det_body_pool.append(name)
        # Deterministic heads join the random-body pool only outside
        # "exact" (their fact count is not bounded tightly enough).
        if builder.kind != "exact":
            builder.random_body_pool.append(name)
        if rng.random() < 0.15:
            builder.rules.append(rule)  # duplicate-rule coverage


def _add_recursion(builder: _Builder) -> None:
    """A transitive-closure pair over an arity-2 extensional relation."""
    rng = builder.rng
    binary = [name for name in builder.extensional
              if builder.arities[name] == 2]
    if not binary or rng.random() > 0.35:
        return
    edge = binary[int(rng.integers(len(binary)))]
    path = builder.fresh_relation("P", 2)
    x, y, z = Var("x"), Var("y"), Var("z")
    builder.rules.append(Rule(Atom(path, (x, y)),
                              (Atom(edge, (x, y)),)))
    builder.rules.append(Rule(Atom(path, (x, z)),
                              (Atom(path, (x, y)), Atom(edge, (y, z)))))
    builder.det_body_pool.append(path)


def _add_fact_rules(builder: _Builder) -> None:
    """Bodiless ground rules - the paper's ``head ← ⊤`` device."""
    rng = builder.rng
    if rng.random() > 0.3:
        return
    arity = int(rng.integers(1, 3))
    name = builder.fresh_relation("K", arity)
    terms = tuple(builder.random_const() for _ in range(arity))
    builder.rules.append(Rule(Atom(name, terms), ()))
    builder.det_body_pool.append(name)
    if builder.kind != "exact":
        builder.random_body_pool.append(name)


def _variable_parameter_relation(builder: _Builder,
                                 name: str) -> tuple[Atom, Var] | None:
    """A data-bound distribution parameter (the Example 3.4 pattern).

    Creates a dedicated extensional relation carrying *valid* parameter
    values, a body atom reading it, and returns the parameter variable.
    Only single-float-parameter families participate - their whole
    sampled range is valid, so no run can escape ``Θ_ψ``.
    """
    rng = builder.rng
    # One row for "exact" cases: parameter-relation joins multiply the
    # firing count, and exact enumeration is exponential in it.
    n_values = 1 if builder.kind == "exact" \
        else int(rng.integers(1, 3))
    if name in ("Flip", "Bernoulli", "FlipPrime", "Geometric"):
        values = [round(float(rng.uniform(0.1, 0.9)), 3)
                  for _ in range(n_values)]
    elif name in ("Exponential", "Poisson"):
        values = [round(float(rng.uniform(0.4, 2.0)), 3)
                  for _ in range(n_values)]
    else:
        return None
    relation = builder.fresh_relation("Par", 2)
    builder.extensional.append(relation)
    for key, value in enumerate(values):
        builder.facts.append(Fact(relation, (key, value)))
    key_var, param_var = Var("k"), Var("p")
    return Atom(relation, (key_var, param_var)), param_var


def _add_random_rules(builder: _Builder, minimum: int) -> None:
    rng, config = builder.rng, builder.config
    names = _distribution_names(builder.kind)
    limit = config.max_exact_random_rules if builder.kind == "exact" \
        else config.max_random_rules
    n_rules = int(rng.integers(minimum, limit + 1))
    for _ in range(n_rules):
        name = str(names[int(rng.integers(len(names)))])
        distribution = config.registry[name]
        bodiless = rng.random() < 0.15
        body: list[Atom] = []
        bound: list[Var] = []
        if not bodiless:
            relation = builder.random_body_pool[int(rng.integers(
                len(builder.random_body_pool)))]
            body_atom, bound = builder.body_atom(relation, bound)
            body.append(body_atom)
        params: list[Term] = [Const(v) for v in
                              distribution_parameters(name, rng)]
        if not bodiless and rng.random() < 0.35:
            data_bound = _variable_parameter_relation(builder, name)
            if data_bound is not None:
                parameter_atom, parameter_var = data_bound
                body.append(parameter_atom)
                params[0] = parameter_var
        random_term = RandomTerm(distribution, params)
        carried_limit = min(2, len(bound))
        n_carried = int(rng.integers(0, carried_limit + 1))
        carried: list[Term] = [bound[int(rng.integers(len(bound)))]
                               for _ in range(n_carried)]
        position = int(rng.integers(0, n_carried + 1))
        head_terms = carried[:position] + [random_term] \
            + carried[position:]
        if rng.random() < 0.15:
            # Multi-random-term head: exercises the normalize path
            # (Split# relations + recombination, core.normalize).
            second_name = str(names[int(rng.integers(len(names)))])
            second = RandomTerm(
                config.registry[second_name],
                tuple(Const(v) for v in
                      distribution_parameters(second_name, rng)))
            head_terms.insert(int(rng.integers(0, len(head_terms) + 1)),
                              second)
        head_name = builder.fresh_relation("R", len(head_terms))
        builder.rules.append(Rule(Atom(head_name, head_terms), body))
        builder.det_body_pool.append(head_name)
        # Chained sampling: a later random rule may read this head.
        # Safe for "exact" too - one fact per firing keeps it bounded.
        builder.random_body_pool.append(head_name)


def _generate_layered(rng: np.random.Generator, config: FuzzConfig,
                      kind: str) -> tuple[Program, Instance]:
    builder = _Builder(rng, config, kind)
    _add_extensional(builder)
    _add_fact_rules(builder)
    _add_recursion(builder)
    if kind == "deterministic":
        _add_deterministic_rules(builder, minimum=1)
    else:
        _add_deterministic_rules(builder, minimum=0)
        _add_random_rules(builder, minimum=1)
        if rng.random() < 0.4:
            _add_deterministic_rules(builder, minimum=1)
    if not builder.rules:  # cannot happen, but Program requires >= 1
        builder.rules.append(Rule(Atom("K0", (Const(0),)), ()))
    return (Program(builder.rules, registry=config.registry),
            Instance(builder.facts))


# ---------------------------------------------------------------------------
# Cyclic generation (weak acyclicity off)
# ---------------------------------------------------------------------------

def _generate_cyclic(rng: np.random.Generator, config: FuzzConfig,
                     ) -> tuple[Program, Instance]:
    """Recursion through a random rule (Section 6.3 territory).

    Continuous template: ``Q(Normal⟨x, s⟩) ← Q(x)`` - the body value
    feeds the parameters, so the position graph has a special cycle,
    and fresh continuous samples almost surely avoid every finite set:
    the chase almost surely diverges.  Discrete template:
    ``Q(DiscreteUniform⟨0, x⟩) ← Q(x)`` - the same special cycle, but
    samples stay in the finite range ``{0..seed}``, so every chase
    terminates: the analysis's "may-terminate" bucket.

    In both, the body variable must occur in the head's random term -
    a cyclic rule whose head carries no body variable translates to a
    fire-once existential and is weakly acyclic after all.
    """
    x = Var("x")
    rules: list[Rule] = []
    continuous = rng.random() < 0.6
    if continuous:
        distribution = config.registry["Normal"]
        scale = round(float(rng.uniform(0.5, 2.0)), 3)
        seed_value = round(float(rng.uniform(-1.0, 1.0)), 3)
        rules.append(Rule(Atom("Q", (Const(seed_value),)), ()))
        rules.append(Rule(
            Atom("Q", (RandomTerm(distribution,
                                  (x, Const(scale))),)),
            (Atom("Q", (x,)),)))
    else:
        distribution = config.registry["DiscreteUniform"]
        seed_value = int(rng.integers(1, 4))
        rules.append(Rule(Atom("Q", (Const(seed_value),)), ()))
        rules.append(Rule(
            Atom("Q", (RandomTerm(distribution,
                                  (Const(0), x)),)),
            (Atom("Q", (x,)),)))
    facts: list[Fact] = []
    if rng.random() < 0.5:
        # Bystander structure: an acyclic part riding along the cycle.
        flip = config.registry["Flip"]
        bias = round(float(rng.uniform(0.2, 0.8)), 3)
        rules.append(Rule(
            Atom("R0", (x, RandomTerm(flip, (Const(bias),)))),
            (Atom("E0", (x,)),)))
        facts = [Fact("E0", (i,))
                 for i in range(int(rng.integers(1, 3)))]
    return Program(rules, registry=config.registry), Instance(facts)


# ---------------------------------------------------------------------------
# Coverage-guided generation
# ---------------------------------------------------------------------------

def case_features(case: FuzzCase) -> frozenset:
    """Feature buckets of a workload, for coverage-guided generation.

    Buckets describe the *translated* program where that is what the
    engines actually see: auxiliary-relation count, induced-FD arity
    (the auxiliary arity of Section 3.5), and the cycle kind of the
    termination analysis - plus surface shape (kind, carried-value
    arity, distribution families, data-bound parameters, recursion,
    duplicate and bodiless rules, fact-count bands).
    """
    from repro.core.termination import analyze_termination
    from repro.errors import ReproError

    features = {f"kind:{case.kind}",
                f"facts:{min(len(case.instance), 3)}"}
    if case.input_pdb is not None:
        features.add("shape:pdb-input")
    program = case.program
    rules = list(program.rules)
    if len(rules) != len(set(rules)):
        features.add("shape:duplicate-rules")
    heads = {rule.head.relation for rule in rules}
    if any(atom.relation in heads
           for rule in rules for atom in rule.body):
        features.add("shape:recursive")
    for rule in rules:
        if not rule.body:
            features.add("shape:bodiless-random" if rule.is_random()
                         else "shape:bodiless-det")
    random_rules = program.random_rules()
    features.add(f"random-rules:{min(len(random_rules), 3)}")
    for rule in random_rules:
        if not rule.is_normal_form():
            features.add("shape:multi-random-head")
            continue
        _position, term = rule.single_random_term()
        features.add(f"dist:{term.distribution.name}")
        features.add(f"carried:{min(len(rule.head.terms) - 1, 2)}")
        if any(isinstance(param, Var) for param in term.params):
            features.add("shape:data-bound-param")
    try:
        translated = program.translate()
        features.add(f"aux:{min(len(translated.aux_relations), 3)}")
        for info in translated.aux_info.values():
            features.add(f"fd-arity:{min(info.arity, 5)}")
        report = analyze_termination(translated)
        if report.weakly_acyclic:
            features.add("cycle:none")
        elif report.almost_surely_diverges():
            features.add("cycle:continuous")
        else:
            features.add("cycle:discrete")
    except ReproError:
        features.add("shape:untranslatable")
    return frozenset(features)


class CoverageTracker:
    """Feature buckets seen so far in a coverage-guided fuzz run."""

    def __init__(self):
        self.seen: set[str] = set()
        self.picked = 0

    def novelty(self, case: FuzzCase) -> int:
        """How many of the case's buckets are still unseen."""
        return len(case_features(case) - self.seen)

    def record(self, case: FuzzCase) -> None:
        self.seen.update(case_features(case))
        self.picked += 1


def generate_case_guided(seed: int, tracker: CoverageTracker,
                         config: FuzzConfig | None = None,
                         n_candidates: int = 6) -> FuzzCase:
    """One workload biased toward not-yet-covered feature buckets.

    Proposes ``n_candidates`` candidates - each from its own derived
    sub-seed, cycling the workload *kinds* so under-drawn kinds keep
    being offered - and keeps the one covering the most unseen buckets
    (ties: first).  Deterministic in ``(seed, tracker state)``; every
    produced case reproduces exactly via
    ``generate_case(case.seed, kind=case.kind)`` since the kind is
    always passed explicitly.
    """
    config = config or DEFAULT_FUZZ_CONFIG
    kinds = config.kinds
    best: FuzzCase | None = None
    best_score = (-1, 0)
    for index in range(max(1, int(n_candidates))):
        kind = str(kinds[(tracker.picked + index) % len(kinds)])
        candidate = generate_case(case_seed(int(seed), index), config,
                                  kind=kind)
        score = (tracker.novelty(candidate), -index)
        if score > best_score:
            best, best_score = candidate, score
    assert best is not None
    tracker.record(best)
    return best


# ---------------------------------------------------------------------------
# Case utilities shared by oracles and the shrinker
# ---------------------------------------------------------------------------

def rebuild_case(case: FuzzCase, rules: Sequence[Rule] | None = None,
                 facts: Sequence[Fact] | None = None) -> FuzzCase:
    """A copy of a case with rules and/or facts replaced.

    Raises :class:`repro.errors.ValidationError` when the replacement
    breaks well-formedness - shrink transformations catch that and
    discard the candidate.
    """
    program = case.program if rules is None \
        else Program(rules, registry=case.program.registry)
    instance = case.instance if facts is None else Instance(facts)
    # The input PDB (a distribution over fact subsets) is dropped when
    # the fact set changes - its support would no longer be subsets.
    input_pdb = case.input_pdb if facts is None else None
    return FuzzCase(case.seed, case.kind, program, instance, input_pdb)


def random_value_positions(program: Program) -> dict[str, int]:
    """Map each random head relation to its sampled-value position.

    Used by statistical oracles to extract exactly the sampled numbers
    (not the carried key columns) from output instances.
    """
    positions: dict[str, int] = {}
    for rule in program.rules:
        spots = rule.head.random_positions()
        if len(spots) == 1:
            positions[rule.head.relation] = spots[0]
    return positions
