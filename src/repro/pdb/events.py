"""Measurable fact sets and the counting events generating the PDB σ-algebra.

Section 2.3: the σ-algebra ``D`` on the space of instances is generated
by *counting events* ``C(F, n)`` - the set of instances containing
exactly ``n`` facts from a measurable set of facts ``F``.  This module
provides:

* :class:`Condition` trees describing measurable subsets of a single
  attribute domain (equality, finite sets, intervals, negation, ...),
* :class:`FactSet` - a measurable set of facts: a relation name plus a
  condition per position (or a union of such blocks),
* :class:`Event` combinators - :class:`CountingEvent` ``C(F, n)``,
  boolean algebra (:class:`AndEvent`, :class:`OrEvent`,
  :class:`NotEvent`), and threshold variants ``|D ∩ F| >= n`` which are
  countable unions of counting events.

Events are *predicates on instances* here, but their structured form
mirrors the generators of the σ-algebra: every event built from these
combinators denotes a measurable set of the paper's instance space.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import MeasureError
from repro.pdb.facts import Fact, normalize_value
from repro.pdb.instances import Instance


# ---------------------------------------------------------------------------
# Conditions on a single attribute value (measurable subsets of a domain)
# ---------------------------------------------------------------------------

class Condition:
    """A measurable subset of one attribute domain."""

    def matches(self, value: Any) -> bool:
        raise NotImplementedError

    def __call__(self, value: Any) -> bool:
        return self.matches(value)


class AnyValue(Condition):
    """The whole domain."""

    def matches(self, value: Any) -> bool:
        return True

    def __repr__(self) -> str:
        return "*"


class Equals(Condition):
    """The singleton ``{constant}``."""

    def __init__(self, constant: Any):
        self.constant = normalize_value(constant)

    def matches(self, value: Any) -> bool:
        return normalize_value(value) == self.constant

    def __repr__(self) -> str:
        return f"={self.constant!r}"


class OneOf(Condition):
    """A finite set of constants."""

    def __init__(self, constants: Iterable[Any]):
        self.constants = frozenset(normalize_value(c) for c in constants)

    def matches(self, value: Any) -> bool:
        return normalize_value(value) in self.constants

    def __repr__(self) -> str:
        return f"∈{set(self.constants)!r}"


class Interval(Condition):
    """A real interval with configurable endpoint closure.

    ``Interval(0, 1)`` is the closed interval ``[0, 1]``;
    ``Interval(0, 1, closed_left=False)`` is ``(0, 1]``; infinite
    endpoints give rays.
    """

    def __init__(self, low: float = float("-inf"),
                 high: float = float("inf"),
                 closed_left: bool = True, closed_right: bool = True):
        if low > high:
            raise MeasureError("interval with low > high is empty; "
                               "use NothingValue instead")
        self.low = float(low)
        self.high = float(high)
        self.closed_left = closed_left
        self.closed_right = closed_right

    def matches(self, value: Any) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        x = float(value)
        if self.closed_left:
            if x < self.low:
                return False
        elif x <= self.low:
            return False
        if self.closed_right:
            if x > self.high:
                return False
        elif x >= self.high:
            return False
        return True

    def __repr__(self) -> str:
        left = "[" if self.closed_left else "("
        right = "]" if self.closed_right else ")"
        return f"{left}{self.low}, {self.high}{right}"


class NotCondition(Condition):
    """Relative complement of a condition."""

    def __init__(self, inner: Condition):
        self.inner = inner

    def matches(self, value: Any) -> bool:
        return not self.inner.matches(value)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


def as_condition(spec: Any) -> Condition:
    """Coerce a literal or condition into a :class:`Condition`.

    ``None`` means "any value"; bare constants mean equality; iterables
    of constants mean membership.
    """
    if isinstance(spec, Condition):
        return spec
    if spec is None:
        return AnyValue()
    if isinstance(spec, (set, frozenset, list)):
        return OneOf(spec)
    return Equals(spec)


# ---------------------------------------------------------------------------
# Measurable sets of facts
# ---------------------------------------------------------------------------

class FactSet:
    """A measurable set of facts over one relation.

    ``FactSet("R", 1, None)`` denotes all facts ``R(1, y)``;
    ``FactSet("Height", None, Interval(150, 200))`` denotes height facts
    with value in ``[150, 200]``.  Use :meth:`union` for multi-relation
    fact sets (the disjoint-union structure of the fact space).
    """

    def __init__(self, relation: str, *conditions: Any):
        self.relation = relation
        self.conditions = tuple(as_condition(c) for c in conditions)

    def contains(self, f: Fact) -> bool:
        if f.relation != self.relation:
            return False
        if len(self.conditions) != len(f.args):
            return False
        return all(cond.matches(value)
                   for cond, value in zip(self.conditions, f.args))

    def count_in(self, instance: Instance) -> int:
        """``|D ∩ F|`` - how many facts of ``instance`` lie in this set."""
        return sum(1 for f in instance.facts_of(self.relation)
                   if self.contains(f))

    def union(self, other: "FactSetLike") -> "FactSetUnion":
        return FactSetUnion([self, other])

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.conditions)
        return f"FactSet({self.relation}({inner}))"


class FactSetUnion:
    """A finite union of :class:`FactSet` blocks (possibly many relations)."""

    def __init__(self, parts: Iterable["FactSetLike"]):
        flattened: list[FactSet] = []
        for part in parts:
            if isinstance(part, FactSetUnion):
                flattened.extend(part.parts)
            elif isinstance(part, FactSet):
                flattened.append(part)
            else:
                raise MeasureError(f"not a fact set: {part!r}")
        self.parts = tuple(flattened)

    def contains(self, f: Fact) -> bool:
        return any(part.contains(f) for part in self.parts)

    def count_in(self, instance: Instance) -> int:
        # A fact may satisfy several blocks; count each fact once.
        return sum(1 for f in instance.facts if self.contains(f))

    def union(self, other: "FactSetLike") -> "FactSetUnion":
        return FactSetUnion([self, other])

    def __repr__(self) -> str:
        return " ∪ ".join(repr(p) for p in self.parts)


FactSetLike = FactSet | FactSetUnion


def single_fact_set(f: Fact) -> FactSet:
    """The singleton fact set ``{f}``."""
    return FactSet(f.relation, *[Equals(a) for a in f.args])


# ---------------------------------------------------------------------------
# Events: measurable sets of instances
# ---------------------------------------------------------------------------

class Event:
    """A measurable set of database instances."""

    def contains(self, instance: Instance) -> bool:
        raise NotImplementedError

    def __call__(self, instance: Instance) -> bool:
        return self.contains(instance)

    def __and__(self, other: "Event") -> "Event":
        return AndEvent([self, other])

    def __or__(self, other: "Event") -> "Event":
        return OrEvent([self, other])

    def __invert__(self) -> "Event":
        return NotEvent(self)


class CountingEvent(Event):
    """``C(F, n)``: instances with exactly ``n`` facts from ``F``.

    These are the generators of the instance σ-algebra (Section 2.3).
    """

    def __init__(self, fact_set: FactSetLike, n: int):
        if n < 0:
            raise MeasureError("counting events need n >= 0")
        self.fact_set = fact_set
        self.n = n

    def contains(self, instance: Instance) -> bool:
        return self.fact_set.count_in(instance) == self.n

    def __repr__(self) -> str:
        return f"C({self.fact_set!r}, {self.n})"


class AtLeastEvent(Event):
    """``|D ∩ F| >= n`` - a countable union of counting events."""

    def __init__(self, fact_set: FactSetLike, n: int):
        if n < 0:
            raise MeasureError("threshold events need n >= 0")
        self.fact_set = fact_set
        self.n = n

    def contains(self, instance: Instance) -> bool:
        return self.fact_set.count_in(instance) >= self.n

    def __repr__(self) -> str:
        return f"C≥({self.fact_set!r}, {self.n})"


class ContainsFactEvent(Event):
    """Instances containing a specific ground fact."""

    def __init__(self, f: Fact):
        self.f = f

    def contains(self, instance: Instance) -> bool:
        return self.f in instance

    def __repr__(self) -> str:
        return f"Contains({self.f!r})"


class AndEvent(Event):
    def __init__(self, parts: Iterable[Event]):
        self.parts = tuple(parts)

    def contains(self, instance: Instance) -> bool:
        return all(p.contains(instance) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


class OrEvent(Event):
    def __init__(self, parts: Iterable[Event]):
        self.parts = tuple(parts)

    def contains(self, instance: Instance) -> bool:
        return any(p.contains(instance) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


class NotEvent(Event):
    def __init__(self, inner: Event):
        self.inner = inner

    def contains(self, instance: Instance) -> bool:
        return not self.inner.contains(instance)

    def __repr__(self) -> str:
        return f"¬{self.inner!r}"


class TrueEvent(Event):
    """The whole instance space."""

    def contains(self, instance: Instance) -> bool:
        return True

    def __repr__(self) -> str:
        return "⊤"


class PredicateEvent(Event):
    """An event given by an arbitrary Python predicate.

    Escape hatch: the predicate must denote a measurable set for the
    semantics to be meaningful, which the library cannot verify.  All
    built-in combinators above are measurable by construction; prefer
    them when possible.
    """

    def __init__(self, predicate, description: str = "predicate"):
        self.predicate = predicate
        self.description = description

    def contains(self, instance: Instance) -> bool:
        return bool(self.predicate(instance))

    def __repr__(self) -> str:
        return f"Event<{self.description}>"
