"""Summary statistics of (sub-)probabilistic databases.

Convenience analyses on top of the PDB representations: world-level
entropy, most-probable world (MAP), expected instance size, complete
fact-marginal tables, and per-relation summaries.  All functions work
on both exact and Monte-Carlo PDBs through the common interface
(estimates in the latter case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB, MonteCarloPDB, PDBBase
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedPDB


def world_entropy(pdb: DiscretePDB, base: float = 2.0) -> float:
    """Shannon entropy of the world distribution (exact PDBs).

    The error event counts as one more outcome when it has mass, so the
    value is the entropy of the full sub-probability decomposition.
    """
    masses = [probability for _, probability in pdb.worlds()
              if probability > 0.0]
    if pdb.err_mass() > 0.0:
        masses.append(pdb.err_mass())
    if not masses:
        raise MeasureError("entropy of an empty PDB")
    return -sum(p * math.log(p, base) for p in masses)


def map_world(pdb: DiscretePDB) -> tuple[Instance, float]:
    """The most probable world and its probability (ties: canonical).

    Raises if the PDB has no instance mass at all.
    """
    worlds = pdb.worlds()
    if not worlds:
        raise MeasureError("MAP of a PDB with no instance mass")
    return max(worlds, key=lambda pair: (pair[1],
                                         pair[0].canonical_text()))


def expected_size(pdb: PDBBase) -> float:
    """Expected number of facts in a drawn world.

    Columnar ensembles answer from their per-fact ensemble counts:
    ``Σ_D |D| = Σ_f count(f)``, and both sides are exact integers, so
    the value is bit-identical to ``expectation(len)`` without
    materializing any world.
    """
    from repro.engine.batched import ColumnarMonteCarloPDB
    if isinstance(pdb, ColumnarMonteCarloPDB):
        total = sum(int(count) for count
                    in pdb.weighted_fact_totals(None).values())
        return total / pdb.n_runs
    return pdb.expectation(len)


def fact_marginals(pdb: PDBBase,
                   relations: tuple[str, ...] | None = None,
                   ) -> dict[Fact, float]:
    """Marginal probability of every fact appearing in any world.

    Restricted to ``relations`` when given.  For exact PDBs the values
    are exact; for Monte-Carlo PDBs they are frequencies.

    Ensembles that expose a columnar fast path (the batched backend's
    :class:`~repro.engine.batched.ColumnarMonteCarloPDB`) answer
    directly from their sample arrays - same frequencies, no world
    materialization.
    """
    columnar = getattr(pdb, "fact_marginals_columnar", None)
    if columnar is not None:
        return columnar(relations)
    if isinstance(pdb, DiscretePDB):
        totals: dict[Fact, float] = {}
        for world, probability in pdb.worlds():
            for fact in world.facts:
                if relations is None or fact.relation in relations:
                    totals[fact] = totals.get(fact, 0.0) + probability
        return totals
    if isinstance(pdb, MonteCarloPDB):
        counts: dict[Fact, int] = {}
        for world in pdb.worlds:
            for fact in world.facts:
                if relations is None or fact.relation in relations:
                    counts[fact] = counts.get(fact, 0) + 1
        return {fact: count / pdb.n_runs
                for fact, count in counts.items()}
    if isinstance(pdb, WeightedPDB):
        weighted: dict[Fact, float] = {}
        for world, weight in zip(pdb.worlds, pdb.weights):
            for fact in world.facts:
                if relations is None or fact.relation in relations:
                    weighted[fact] = weighted.get(fact, 0.0) + weight
        total = pdb.total_weight()
        return {fact: mass / total for fact, mass in weighted.items()}
    raise TypeError(f"not a PDB: {pdb!r}")


def size_distribution(pdb: DiscretePDB) -> DiscreteMeasure:
    """Exact distribution of the instance size ``|D|``."""
    return pdb.push_distribution(len)


@dataclass(frozen=True)
class RelationSummary:
    """Per-relation view of a PDB's output."""

    relation: str
    expected_cardinality: float
    min_cardinality: int
    max_cardinality: int
    certain_facts: int  # marginal == 1 (up to tolerance)


def relation_summary(pdb: PDBBase, relation: str,
                     tolerance: float = 1e-9) -> RelationSummary:
    """Cardinality and certainty profile of one output relation."""
    def cardinality(world: Instance) -> int:
        return len(world.facts_of(relation))

    if isinstance(pdb, DiscretePDB):
        worlds = [world for world, _ in pdb.worlds()]
    elif isinstance(pdb, MonteCarloPDB):
        worlds = list(pdb.worlds)
    else:
        raise TypeError(f"not a PDB: {pdb!r}")
    if not worlds:
        raise MeasureError("summary of a PDB with no worlds")

    marginals = fact_marginals(pdb, relations=(relation,))
    total = pdb.total_mass()
    certain = sum(1 for probability in marginals.values()
                  if probability >= total - tolerance)
    return RelationSummary(
        relation,
        pdb.expectation(cardinality),
        min(cardinality(world) for world in worlds),
        max(cardinality(world) for world in worlds),
        certain)


def summarize_pdb(pdb: PDBBase) -> str:
    """A human-readable multi-line summary of a PDB."""
    lines = []
    if isinstance(pdb, DiscretePDB):
        lines.append(f"exact PDB: {pdb.support_size()} worlds, "
                     f"mass {pdb.total_mass():.6g}, "
                     f"err {pdb.err_mass():.6g}")
        lines.append(f"entropy: {world_entropy(pdb):.4f} bits")
        world, probability = map_world(pdb)
        lines.append(f"MAP world (p={probability:.6g}): "
                     f"{world.canonical_text()}")
    elif isinstance(pdb, MonteCarloPDB):
        lines.append(f"Monte-Carlo PDB: {len(pdb.worlds)} worlds, "
                     f"{pdb.truncated} truncated")
    lines.append(f"expected size: {expected_size(pdb):.4f} facts")
    return "\n".join(lines)
