"""Relational schemas: relation symbols with typed attribute tuples.

A *database schema* ``S`` assigns each relation symbol an arity and, per
attribute, a domain (Section 2.3).  GDatalog distinguishes an
*extensional* schema ``E`` (input relations, never in rule heads of the
generative part) and an *intensional* schema ``I`` (derived relations,
possibly with random attributes) - Definition 3.2.

Schemas in this library may be *declared* (explicit domains, strict
validation) or *inferred* (every position typed :data:`repro.pdb.domains.ANY`).
The translation to existential Datalog (Section 3.2) extends the schema
with auxiliary result relations; :meth:`Schema.extended` produces that
extension without mutating the original.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.pdb.domains import ANY, Domain


class RelationSchema:
    """A single relation symbol: name, arity and attribute domains."""

    __slots__ = ("name", "domains", "extensional")

    def __init__(self, name: str, domains: Iterable[Domain],
                 extensional: bool = False):
        self.name = name
        self.domains = tuple(domains)
        self.extensional = extensional
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not self.domains:
            raise SchemaError(f"relation {name!r} must have arity >= 1")

    @property
    def arity(self) -> int:
        return len(self.domains)

    def validate_tuple(self, values: tuple) -> None:
        """Raise :class:`SchemaError` unless ``values`` fits this relation."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects arity {self.arity}, "
                f"got tuple of length {len(values)}")
        for position, (domain, value) in enumerate(zip(self.domains, values)):
            if not domain.contains(value):
                raise SchemaError(
                    f"value {value!r} not in domain {domain} at position "
                    f"{position} of relation {self.name!r}")

    def __repr__(self) -> str:
        kind = "ext" if self.extensional else "int"
        doms = ", ".join(str(d) for d in self.domains)
        return f"RelationSchema({self.name}[{kind}]({doms}))"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RelationSchema)
                and self.name == other.name
                and self.domains == other.domains
                and self.extensional == other.extensional)

    def __hash__(self) -> int:
        return hash((self.name, self.domains, self.extensional))


class Schema:
    """A collection of :class:`RelationSchema` objects, keyed by name.

    The schema is immutable; extension operations return new schemas.
    Iterating a schema yields relation names in sorted order so that all
    downstream constructions are deterministic.
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation {relation.name!r}")
            self._relations[relation.name] = relation

    @classmethod
    def from_arities(cls, arities: Mapping[str, int],
                     extensional: Iterable[str] = ()) -> "Schema":
        """Build an untyped schema from a ``name -> arity`` mapping."""
        extensional_set = set(extensional)
        return cls(
            RelationSchema(name, [ANY] * arity,
                           extensional=name in extensional_set)
            for name, arity in arities.items())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def get(self, name: str) -> RelationSchema | None:
        return self._relations.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    @property
    def extensional_names(self) -> tuple[str, ...]:
        return tuple(name for name in self.relation_names
                     if self._relations[name].extensional)

    @property
    def intensional_names(self) -> tuple[str, ...]:
        return tuple(name for name in self.relation_names
                     if not self._relations[name].extensional)

    def extended(self, relations: Iterable[RelationSchema]) -> "Schema":
        """A new schema with ``relations`` added (names must be fresh)."""
        return Schema(list(self._relations.values()) + list(relations))

    def restricted(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only the named relations."""
        keep = set(names)
        missing = keep - set(self._relations)
        if missing:
            raise SchemaError(f"unknown relations {sorted(missing)!r}")
        return Schema(rel for name, rel in self._relations.items()
                      if name in keep)

    def validate_fact(self, relation: str, values: tuple) -> None:
        """Validate a fact's relation name and value tuple."""
        self[relation].validate_tuple(values)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Schema)
                and self._relations == other._relations)

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.values()))

    def __repr__(self) -> str:
        return f"Schema({', '.join(self.relation_names)})"


def relation(name: str, *domains: Domain,
             extensional: bool = False) -> RelationSchema:
    """Convenience constructor: ``relation("R", REAL, STRING)``."""
    return RelationSchema(name, domains, extensional=extensional)
