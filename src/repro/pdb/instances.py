"""Database instances: finite *sets* of facts.

The paper works exclusively with set instances and set semantics
(Section 2.3): the sample space ``D`` is the set of all finite,
duplicate-free collections of facts.  :class:`Instance` is an immutable,
hashable wrapper around a ``frozenset`` of :class:`repro.pdb.facts.Fact`
objects, with relation-wise access helpers used throughout the chase.

Immutability matters: exact SPDBs are dictionaries keyed by instances,
the paper's Lemma C.4 ("no instance labels two chase-tree nodes") is
checked on hashable instances, and chase steps produce *new* instances
(``ext(D, ...) = D ∪ {f}``, Definition 3.7) rather than mutating.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.pdb.facts import Fact, sorted_facts
from repro.pdb.schema import Schema


class Instance:
    """An immutable finite set of facts.

    >>> D = Instance.of(Fact("R", (1,)), Fact("S", (2, 3)))
    >>> len(D)
    2
    >>> Fact("R", (1,)) in D
    True
    """

    __slots__ = ("_facts", "_by_relation", "_hash")

    def __init__(self, facts: Iterable[Fact] = ()):
        fact_set = frozenset(facts)
        by_relation: dict[str, frozenset[Fact]] = {}
        grouping: dict[str, set[Fact]] = {}
        for f in fact_set:
            grouping.setdefault(f.relation, set()).add(f)
        for name, group in grouping.items():
            by_relation[name] = frozenset(group)
        object.__setattr__(self, "_facts", fact_set)
        object.__setattr__(self, "_by_relation", by_relation)
        object.__setattr__(self, "_hash", hash(fact_set))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Instance is immutable")

    def __reduce__(self) -> tuple:
        # Slotted + immutable: reconstruct through the constructor
        # (which rebuilds the per-relation index) so instances can
        # cross process boundaries in sharded sampling payloads.
        return (Instance, (tuple(self._facts),))

    # -- construction -----------------------------------------------------

    @classmethod
    def of(cls, *facts: Fact) -> "Instance":
        """Build an instance from facts given as arguments."""
        return cls(facts)

    @classmethod
    def empty(cls) -> "Instance":
        return _EMPTY

    @classmethod
    def from_dict(cls, relations: dict[str, Iterable[tuple]]) -> "Instance":
        """Build from ``{"R": [(1, 2), ...], ...}`` tuple listings."""
        facts: list[Fact] = []
        for name, rows in relations.items():
            facts.extend(Fact(name, row) for row in rows)
        return cls(facts)

    # -- set interface ----------------------------------------------------

    def __contains__(self, f: Fact) -> bool:
        return f in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    @property
    def facts(self) -> frozenset[Fact]:
        return self._facts

    def relations(self) -> tuple[str, ...]:
        """Names of relations with at least one fact, sorted."""
        return tuple(sorted(self._by_relation))

    def facts_of(self, relation: str) -> frozenset[Fact]:
        """All facts of one relation (empty frozenset if none)."""
        return self._by_relation.get(relation, frozenset())

    def tuples_of(self, relation: str) -> frozenset[tuple]:
        """Argument tuples of one relation."""
        return frozenset(f.args for f in self.facts_of(relation))

    def count(self, predicate: Callable[[Fact], bool]) -> int:
        """Number of facts satisfying ``predicate``."""
        return sum(1 for f in self._facts if predicate(f))

    # -- algebra ----------------------------------------------------------

    def add(self, f: Fact) -> "Instance":
        """``self ∪ {f}`` - the paper's ``ext`` on the instance side."""
        if f in self._facts:
            return self
        return Instance(self._facts | {f})

    def add_all(self, facts: Iterable[Fact]) -> "Instance":
        """``self ∪ facts`` - the parallel extension ``Ext`` (Def. 3.7)."""
        new = frozenset(facts) - self._facts
        if not new:
            return self
        return Instance(self._facts | new)

    def union(self, other: "Instance") -> "Instance":
        return self.add_all(other._facts)

    def difference(self, other: "Instance") -> "Instance":
        return Instance(self._facts - other._facts)

    def intersection(self, other: "Instance") -> "Instance":
        return Instance(self._facts & other._facts)

    def restrict(self, relations: Iterable[str]) -> "Instance":
        """Sub-instance containing only the named relations.

        This is the measurable projection of Remark 4.9 used to discard
        the auxiliary relations introduced by the Datalog-with-existentials
        translation.
        """
        keep = set(relations)
        return Instance(f for f in self._facts if f.relation in keep)

    def without_relations(self, relations: Iterable[str]) -> "Instance":
        """Sub-instance dropping the named relations."""
        drop = set(relations)
        return Instance(f for f in self._facts if f.relation not in drop)

    def issubset(self, other: "Instance") -> bool:
        return self._facts <= other._facts

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Instance)
                and self._hash == other._hash
                and self._facts == other._facts)

    def __hash__(self) -> int:
        return self._hash

    def sorted_facts(self) -> list[Fact]:
        """Facts in canonical order - the deterministic serialization."""
        return sorted_facts(self._facts)

    def canonical_text(self) -> str:
        """A stable text rendering; equal instances yield equal text."""
        return "{" + "; ".join(repr(f) for f in self.sorted_facts()) + "}"

    def __repr__(self) -> str:
        if len(self._facts) > 8:
            shown = ", ".join(repr(f) for f in self.sorted_facts()[:8])
            return f"Instance({shown}, ... [{len(self._facts)} facts])"
        return "Instance(" + ", ".join(
            repr(f) for f in self.sorted_facts()) + ")"

    def validate(self, schema: Schema) -> None:
        """Raise unless every fact fits ``schema``."""
        for f in self._facts:
            schema.validate_fact(f.relation, f.args)


_EMPTY = Instance(())
