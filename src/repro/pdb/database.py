"""Probabilistic databases: probability measures over instances.

Section 2.3 / Definition 2.7: a (standard) PDB is a probability measure
on the space of instances; a *sub*-probabilistic database (SPDB) is a
sub-probability measure, with the deficit read as the probability of an
error event ``err`` (made explicit through the space ``D_err``).  The
output of a GDatalog program is an SPDB (Theorems 4.8/5.5), the deficit
being the mass of non-terminating chase paths.

Two computational representations, one interface (:class:`PDBBase`):

* :class:`DiscretePDB` - an explicit finitely-supported measure over
  instances plus explicit ``err`` mass.  Exact chase enumeration
  produces these; all probabilities are exact rational-like floats.
* :class:`MonteCarloPDB` - an ensemble of sampled possible worlds, with
  truncated (potentially non-terminating) runs counted toward ``err``.
  Continuous programs produce these; probabilities are estimates.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, Iterable, Sequence

from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.events import Event
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

#: Sentinel for the error element of ``D_err`` (Definition 2.7).
ERR = "err"


class PDBBase:
    """Common interface of exact and Monte-Carlo (S)PDBs."""

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        """(Estimated) probability that a drawn instance lies in ``event``.

        The error element never satisfies an event: events are subsets
        of the instance space ``D``, and ``err`` lies outside it.
        """
        raise NotImplementedError

    def err_mass(self) -> float:
        """The (estimated) mass of the error event."""
        raise NotImplementedError

    def total_mass(self) -> float:
        """Mass assigned to genuine instances (``<= 1``)."""
        raise NotImplementedError

    def marginal(self, f: Fact) -> float:
        """(Estimated) probability that the fact ``f`` holds."""
        return self.prob(lambda instance: f in instance)

    def map_worlds(self, transform: Callable[[Instance], Instance],
                   ) -> "PDBBase":
        """Push the PDB forward along an instance transformation.

        For measurable ``transform`` this realizes Fact 2.6 (queries are
        measurable functions on PDBs): the result is again an (S)PDB.
        """
        raise NotImplementedError

    def project(self, relations: Iterable[str]) -> "PDBBase":
        """Restrict every world to the given relations (Remark 4.9)."""
        keep = tuple(relations)
        return self.map_worlds(lambda instance: instance.restrict(keep))

    def without_relations(self, relations: Iterable[str]) -> "PDBBase":
        """Drop the given relations from every world (Remark 4.9)."""
        drop = tuple(relations)
        return self.map_worlds(
            lambda instance: instance.without_relations(drop))

    def expectation(self, statistic: Callable[[Instance], float]) -> float:
        """(Estimated) expectation of a numeric statistic of the world.

        Computed conditionally on no error, scaled by the instance mass:
        ``∫ statistic dP`` over ``D`` only.
        """
        raise NotImplementedError


class DiscretePDB(PDBBase):
    """An exact SPDB: finitely-supported measure over instances + err mass.

    Invariant: ``measure.total_mass() + err <= 1 + tolerance``.  A full
    PDB has ``err == 0`` and measure mass 1.
    """

    def __init__(self, measure: DiscreteMeasure, err: float = 0.0):
        for world in measure:
            if not isinstance(world, Instance):
                raise MeasureError(
                    f"DiscretePDB worlds must be instances, got {world!r}")
        if err < -1e-9:
            raise MeasureError("negative error mass")
        total = measure.total_mass() + err
        if total > 1.0 + 1e-6:
            raise MeasureError(
                f"sub-probability violated: total mass {total}")
        self.measure = measure
        self.err = max(float(err), 0.0)

    # -- constructors -------------------------------------------------------

    @classmethod
    def deterministic(cls, instance: Instance) -> "DiscretePDB":
        """The Dirac PDB concentrated on one instance."""
        return cls(DiscreteMeasure.dirac(instance))

    @classmethod
    def from_worlds(cls, worlds: Iterable[tuple[Instance, float]],
                    err: float = 0.0) -> "DiscretePDB":
        return cls(DiscreteMeasure(dict(worlds)), err)

    # -- PDBBase ------------------------------------------------------------

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        test = event.contains if isinstance(event, Event) else event
        return self.measure.measure_of(test)

    def err_mass(self) -> float:
        return self.err

    def total_mass(self) -> float:
        return self.measure.total_mass()

    def map_worlds(self, transform: Callable[[Instance], Instance],
                   ) -> "DiscretePDB":
        return DiscretePDB(self.measure.push_forward(transform), self.err)

    def expectation(self, statistic: Callable[[Instance], float]) -> float:
        return self.measure.expectation(statistic)

    # -- exact-only operations -----------------------------------------------

    def worlds(self) -> list[tuple[Instance, float]]:
        """``(instance, probability)`` pairs, canonically ordered."""
        pairs = list(self.measure.items())
        pairs.sort(key=lambda pair: pair[0].canonical_text())
        return pairs

    def support_size(self) -> int:
        return len(self.measure)

    def prob_of_instance(self, instance: Instance) -> float:
        return self.measure.mass(instance)

    def tv_distance(self, other: "DiscretePDB") -> float:
        """Total-variation distance on ``D_err`` (err is one more point)."""
        worlds = self.measure.support() | other.measure.support()
        l1 = sum(abs(self.measure.mass(w) - other.measure.mass(w))
                 for w in worlds)
        return 0.5 * (l1 + abs(self.err - other.err))

    def allclose(self, other: "DiscretePDB", tolerance: float = 1e-9) -> bool:
        """Pointwise agreement of world probabilities and error mass."""
        return (self.measure.allclose(other.measure, tolerance)
                and abs(self.err - other.err) <= tolerance)

    def push_distribution(self, f: Callable[[Instance], Hashable],
                          ) -> DiscreteMeasure:
        """Push-forward of the world measure along a statistic.

        This is the exact form of a query's output distribution
        (Fact 2.6): ``f`` maps worlds to query answers.
        """
        return self.measure.push_forward(f)

    def condition(self, event: Event | Callable[[Instance], bool],
                  ) -> "DiscretePDB":
        """Conditional PDB given an event (extension beyond the paper).

        The paper's future-work section discusses conditioning; for
        events of positive probability on exact SPDBs it is simply a
        normalized restriction.  Error mass is conditioned away.
        """
        test = event.contains if isinstance(event, Event) else event
        restricted = self.measure.restrict(test)
        total = restricted.total_mass()
        if total <= 0.0:
            raise MeasureError("conditioning on a null event")
        return DiscretePDB(restricted.scale(1.0 / total), 0.0)

    def __repr__(self) -> str:
        return (f"DiscretePDB(<{self.support_size()} worlds, mass "
                f"{self.total_mass():.6g}, err {self.err:.6g}>)")


class MonteCarloPDB(PDBBase):
    """An SPDB represented by sampled possible worlds.

    ``worlds`` are the instances of terminating runs; ``truncated``
    counts runs cut off by the step budget (mass attributed to ``err``).
    Estimates come with ``1/sqrt(n)`` Monte-Carlo error; the class
    exposes standard errors where meaningful.
    """

    def __init__(self, worlds: Sequence[Instance], truncated: int = 0):
        self._worlds = list(worlds)
        self.truncated = int(truncated)
        if self.truncated < 0:
            raise MeasureError("negative truncation count")
        if not self._worlds and not self.truncated:
            raise MeasureError("Monte-Carlo PDB needs at least one run")

    @property
    def n_runs(self) -> int:
        return len(self._worlds) + self.truncated

    @property
    def worlds(self) -> list[Instance]:
        return self._worlds

    # -- PDBBase ------------------------------------------------------------

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        test = event.contains if isinstance(event, Event) else event
        hits = sum(1 for world in self._worlds if test(world))
        return hits / self.n_runs

    def err_mass(self) -> float:
        return self.truncated / self.n_runs

    def total_mass(self) -> float:
        return len(self._worlds) / self.n_runs

    def map_worlds(self, transform: Callable[[Instance], Instance],
                   ) -> "MonteCarloPDB":
        return MonteCarloPDB([transform(world) for world in self._worlds],
                             self.truncated)

    def expectation(self, statistic: Callable[[Instance], float]) -> float:
        return math.fsum(statistic(world) for world in self._worlds) \
            / self.n_runs

    # -- estimation helpers ----------------------------------------------------

    def prob_standard_error(self, event: Event | Callable[[Instance], bool],
                            ) -> float:
        p = self.prob(event)
        return math.sqrt(max(p * (1 - p) / self.n_runs, 0.0))

    def values_of(self, extract: Callable[[Instance], Iterable[float]],
                  ) -> list[float]:
        """Flatten a per-world numeric extraction over all worlds.

        Typical use: collect all sampled heights to compare against the
        generating Normal distribution.
        """
        collected: list[float] = []
        for world in self._worlds:
            collected.extend(extract(world))
        return collected

    def to_discrete(self) -> DiscretePDB:
        """Empirical exact PDB (merging equal sampled worlds)."""
        measure = DiscreteMeasure.from_samples(self._worlds) \
            .scale(self.total_mass()) if self._worlds \
            else DiscreteMeasure.zero()
        return DiscretePDB(measure, self.err_mass())

    def __repr__(self) -> str:
        return (f"MonteCarloPDB(<{len(self._worlds)} worlds, "
                f"{self.truncated} truncated>)")


def mixture_pdb(components: Sequence[tuple[float, DiscretePDB]],
                ) -> DiscretePDB:
    """Mixture of exact SPDBs with the given weights.

    This realizes Theorem 4.8's second part operationally: a program
    applied to a probabilistic *input* database is the mixture, over
    input worlds, of the per-world output SPDBs.
    """
    weight_total = math.fsum(weight for weight, _ in components)
    if weight_total > 1.0 + 1e-6:
        raise MeasureError("mixture weights exceed 1")
    measure = DiscreteMeasure.zero()
    err = 0.0
    for weight, component in components:
        measure = measure.add(component.measure.scale(weight))
        err += weight * component.err
    # Any weight deficit of the input itself is error mass of the output.
    err += max(1.0 - weight_total, 0.0) * 0.0
    return DiscretePDB(measure, err)
