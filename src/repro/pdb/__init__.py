"""Probabilistic-database substrate: facts, instances, events, PDBs.

The computational realization of Section 2.3's standard PDBs: finite
set instances over standard-Borel attribute domains, the counting-event
generators of the instance σ-algebra, and exact/Monte-Carlo
(sub-)probabilistic databases.
"""

from repro.pdb.database import (ERR, DiscretePDB, MonteCarloPDB, PDBBase,
                                mixture_pdb)
from repro.pdb.domains import (ANY, BOOL, INT, NAT, REAL, STRING, UNIT,
                               Domain, FiniteDomain, IntervalDomain)
from repro.pdb.events import (AndEvent, AnyValue, AtLeastEvent, Condition,
                              ContainsFactEvent, CountingEvent, Equals,
                              Event, FactSet, FactSetUnion, Interval,
                              NotCondition, NotEvent, OneOf, OrEvent,
                              PredicateEvent, TrueEvent, single_fact_set)
from repro.pdb.facts import Fact, fact, normalize_value, sorted_facts
from repro.pdb.instances import Instance
from repro.pdb.schema import RelationSchema, Schema, relation

__all__ = [
    "ANY", "BOOL", "INT", "NAT", "REAL", "STRING", "UNIT",
    "AndEvent", "AnyValue", "AtLeastEvent", "Condition",
    "ContainsFactEvent", "CountingEvent", "DiscretePDB", "Domain", "ERR",
    "Equals", "Event", "Fact", "FactSet", "FactSetUnion", "FiniteDomain",
    "Instance", "Interval", "IntervalDomain", "MonteCarloPDB",
    "NotCondition", "NotEvent", "OneOf", "OrEvent", "PDBBase",
    "PredicateEvent", "RelationSchema", "Schema", "TrueEvent", "fact",
    "mixture_pdb", "normalize_value", "relation", "single_fact_set",
    "sorted_facts",
]
