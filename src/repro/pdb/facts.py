"""Facts: ground atoms ``R(a_1, ..., a_n)`` over a schema.

The set of facts ``F_S`` over a schema ``S`` is a standard Borel space
(Section 2.3): the disjoint union, over relation symbols ``R``, of the
product of ``R``'s attribute domains.  A :class:`Fact` is a point of
this space; :class:`repro.pdb.events.FactSet` describes its measurable
subsets.

Facts are immutable, hashable and totally ordered (via the canonical
value order of :mod:`repro.ordering`), so they can live in frozensets
(instances), serve as dictionary keys (exact SPDBs) and be enumerated
deterministically (chase policies).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import SchemaError
from repro.ordering import tuple_sort_key, value_sort_key


def normalize_value(value: Any) -> Any:
    """Normalize attribute values to canonical Python representatives.

    Booleans become ints (``True`` -> 1) so that a ``Flip`` sample and an
    integer constant ``1`` denote the same point of the attribute domain,
    matching the paper's untyped treatment where ``Flip`` samples live in
    ``{0, 1}``.  Integral floats stay floats: ``1.0`` and ``1`` hash
    equal in Python, which is exactly the identification we want.
    """
    if isinstance(value, bool):
        return int(value)
    return value


class Fact:
    """An immutable ground fact ``relation(args)``.

    >>> Fact("R", (1, "x"))
    R(1, 'x')
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: str, args: Iterable[Any]):
        if not relation:
            raise SchemaError("fact relation name must be non-empty")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args",
                           tuple(normalize_value(a) for a in args))
        object.__setattr__(self, "_hash", hash((relation, self.args)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Fact is immutable")

    def __reduce__(self) -> tuple:
        # Slotted + immutable: default unpickling would go through
        # __setattr__; reconstruct through the constructor instead so
        # facts cross process boundaries (the sharded sampling workers
        # of repro.serving ship instances and columnar results back).
        return (Fact, (self.relation, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Fact)
                and self._hash == other._hash
                and self.relation == other.relation
                and self.args == other.args)

    def __hash__(self) -> int:
        return self._hash

    def sort_key(self) -> tuple:
        """Deterministic total order: by relation name, then args."""
        return (self.relation, tuple_sort_key(self.args))

    def __lt__(self, other: "Fact") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.relation}({inner})"

    def replace(self, position: int, value: Any) -> "Fact":
        """A copy of this fact with one argument substituted."""
        args = list(self.args)
        args[position] = value
        return Fact(self.relation, args)


def fact(relation: str, *args: Any) -> Fact:
    """Convenience constructor: ``fact("R", 1, "x")``."""
    return Fact(relation, args)


def sorted_facts(facts: Iterable[Fact]) -> list[Fact]:
    """Facts in the canonical deterministic order."""
    return sorted(facts, key=Fact.sort_key)


__all__ = ["Fact", "fact", "normalize_value", "sorted_facts",
           "value_sort_key"]
