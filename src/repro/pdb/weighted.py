"""Weighted possible-world ensembles (self-normalized importance sampling).

Likelihood weighting (:mod:`repro.core.observe`) produces worlds with
non-uniform importance weights; :class:`WeightedPDB` holds such an
ensemble and answers queries as self-normalized estimates

    P(E) ≈ Σ w_i · 1[D_i ∈ E] / Σ w_i.

The quality of the estimates is governed by the effective sample size
``ESS = (Σw)² / Σw²``; callers should check :meth:`effective_sample_size`
before trusting the numbers, as usual with importance sampling.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.errors import MeasureError
from repro.pdb.database import DiscretePDB, PDBBase
from repro.pdb.events import Event
from repro.pdb.instances import Instance
from repro.measures.discrete import DiscreteMeasure


class WeightedPDB(PDBBase):
    """Possible worlds with importance weights (posterior estimates).

    All probabilities are *normalized* (posterior semantics): the
    weights' scale cancels.  Worlds with zero weight are kept (they
    document rejected evidence) but carry no mass.
    """

    def __init__(self, worlds: Sequence[Instance],
                 weights: Sequence[float]):
        self._worlds = list(worlds)
        self._weights = [float(w) for w in weights]
        if len(self._worlds) != len(self._weights):
            raise MeasureError("worlds/weights length mismatch")
        if not self._worlds:
            raise MeasureError("weighted PDB needs at least one world")
        if any(w < 0 for w in self._weights):
            raise MeasureError("negative importance weight")
        self._total = math.fsum(self._weights)
        if self._total <= 0.0:
            raise MeasureError(
                "all importance weights are zero - the evidence has "
                "zero likelihood under the program")

    @property
    def worlds(self) -> list[Instance]:
        return self._worlds

    @property
    def weights(self) -> list[float]:
        return self._weights

    @property
    def n_worlds(self) -> int:
        return len(self._worlds)

    def total_weight(self) -> float:
        return self._total

    def effective_sample_size(self) -> float:
        """``(Σw)² / Σw²`` - the importance-sampling quality measure."""
        squared = math.fsum(w * w for w in self._weights)
        if squared <= 0.0:
            return 0.0
        return self._total * self._total / squared

    # -- PDBBase ------------------------------------------------------------

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        test = event.contains if isinstance(event, Event) else event
        hit = math.fsum(w for world, w in zip(self._worlds,
                                              self._weights)
                        if test(world))
        return hit / self._total

    def err_mass(self) -> float:
        return 0.0  # posterior over terminating worlds by construction

    def total_mass(self) -> float:
        return 1.0

    def map_worlds(self, transform: Callable[[Instance], Instance],
                   ) -> "WeightedPDB":
        return WeightedPDB([transform(w) for w in self._worlds],
                           self._weights)

    def expectation(self, statistic: Callable[[Instance], float],
                    ) -> float:
        weighted = math.fsum(w * statistic(world)
                             for world, w in zip(self._worlds,
                                                 self._weights))
        return weighted / self._total

    # -- extras -------------------------------------------------------------

    def values_of(self, extract: Callable[[Instance], Iterable[float]],
                  ) -> list[tuple[float, float]]:
        """``(value, weight)`` pairs flattened over all worlds."""
        collected: list[tuple[float, float]] = []
        for world, weight in zip(self._worlds, self._weights):
            for value in extract(world):
                collected.append((value, weight))
        return collected

    def weighted_mean(self, extract: Callable[[Instance],
                                              Iterable[float]]) -> float:
        """Self-normalized mean of extracted per-world values."""
        pairs = self.values_of(extract)
        total = math.fsum(w for _, w in pairs)
        if total <= 0.0:
            raise MeasureError("no values to average")
        return math.fsum(v * w for v, w in pairs) / total

    def to_discrete(self) -> DiscretePDB:
        """Collapse to an exact PDB over the distinct worlds."""
        masses: dict[Instance, float] = {}
        for world, weight in zip(self._worlds, self._weights):
            masses[world] = masses.get(world, 0.0) + weight
        measure = DiscreteMeasure(
            {w: m / self._total for w, m in masses.items()})
        return DiscretePDB(measure)

    def __repr__(self) -> str:
        return (f"WeightedPDB(<{self.n_worlds} worlds, ESS "
                f"{self.effective_sample_size():.1f}>)")
