"""Weighted possible-world ensembles (self-normalized importance sampling).

Likelihood weighting (:mod:`repro.core.observe`) produces worlds with
non-uniform importance weights; :class:`WeightedPDB` holds such an
ensemble and answers queries as self-normalized estimates

    P(E) ≈ Σ w_i · 1[D_i ∈ E] / Σ w_i.

The quality of the estimates is governed by the effective sample size
``ESS = (Σw)² / Σw²``; callers should check :meth:`effective_sample_size`
before trusting the numbers, as usual with importance sampling.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.errors import MeasureError
from repro.pdb.database import DiscretePDB, PDBBase
from repro.pdb.events import Event
from repro.pdb.instances import Instance
from repro.measures.discrete import DiscreteMeasure


class WeightedPDB(PDBBase):
    """Possible worlds with importance weights (posterior estimates).

    All probabilities are *normalized* (posterior semantics): the
    weights' scale cancels.  Worlds with zero weight are kept (they
    document rejected evidence) but carry no mass.
    """

    def __init__(self, worlds: Sequence[Instance],
                 weights: Sequence[float]):
        self._worlds = list(worlds)
        self._weights = [float(w) for w in weights]
        if len(self._worlds) != len(self._weights):
            raise MeasureError("worlds/weights length mismatch")
        if not self._worlds:
            raise MeasureError("weighted PDB needs at least one world")
        if any(w < 0 for w in self._weights):
            raise MeasureError("negative importance weight")
        self._total = math.fsum(self._weights)
        if self._total <= 0.0:
            raise MeasureError(
                "all importance weights are zero - the evidence has "
                "zero likelihood under the program")

    @property
    def worlds(self) -> list[Instance]:
        return self._worlds

    @property
    def weights(self) -> list[float]:
        return self._weights

    @property
    def n_worlds(self) -> int:
        return len(self._worlds)

    @property
    def n_runs(self) -> int:
        """Alias of ``n_worlds`` (ensemble-size duck type)."""
        return len(self._worlds)

    def total_weight(self) -> float:
        return self._total

    def effective_sample_size(self) -> float:
        """``(Σw)² / Σw²`` - the importance-sampling quality measure."""
        squared = math.fsum(w * w for w in self._weights)
        if squared <= 0.0:
            return 0.0
        return self._total * self._total / squared

    # -- PDBBase ------------------------------------------------------------

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        test = event.contains if isinstance(event, Event) else event
        hit = math.fsum(w for world, w in zip(self._worlds,
                                              self._weights)
                        if test(world))
        return hit / self._total

    def err_mass(self) -> float:
        return 0.0  # posterior over terminating worlds by construction

    def total_mass(self) -> float:
        return 1.0

    def map_worlds(self, transform: Callable[[Instance], Instance],
                   ) -> "WeightedPDB":
        return WeightedPDB([transform(w) for w in self._worlds],
                           self._weights)

    def expectation(self, statistic: Callable[[Instance], float],
                    ) -> float:
        weighted = math.fsum(w * statistic(world)
                             for world, w in zip(self._worlds,
                                                 self._weights))
        return weighted / self._total

    # -- extras -------------------------------------------------------------

    def values_of(self, extract: Callable[[Instance], Iterable[float]],
                  ) -> list[tuple[float, float]]:
        """``(value, weight)`` pairs flattened over all worlds."""
        collected: list[tuple[float, float]] = []
        for world, weight in zip(self._worlds, self._weights):
            for value in extract(world):
                collected.append((value, weight))
        return collected

    def weighted_mean(self, extract: Callable[[Instance],
                                              Iterable[float]]) -> float:
        """Self-normalized mean of extracted per-world values."""
        pairs = self.values_of(extract)
        total = math.fsum(w for _, w in pairs)
        if total <= 0.0:
            raise MeasureError("no values to average")
        return math.fsum(v * w for v, w in pairs) / total

    def to_discrete(self) -> DiscretePDB:
        """Collapse to an exact PDB over the distinct worlds."""
        masses: dict[Instance, float] = {}
        for world, weight in zip(self._worlds, self._weights):
            masses[world] = masses.get(world, 0.0) + weight
        measure = DiscreteMeasure(
            {w: m / self._total for w, m in masses.items()})
        return DiscretePDB(measure)

    def __repr__(self) -> str:
        return (f"WeightedPDB(<{self.n_worlds} worlds, ESS "
                f"{self.effective_sample_size():.1f}>)")


class WeightedColumnarPDB(PDBBase):
    """Importance-weighted view over a *columnar* batch ensemble.

    The streamed-evidence counterpart of :class:`WeightedPDB`: instead
    of holding materialized worlds it wraps a
    :class:`repro.engine.batched.ColumnarMonteCarloPDB` together with a
    per-world-index weight vector (dead worlds - truncated, or masked
    out by event evidence - carry weight zero).  Marginal and full
    fact-table queries read the sample columns directly through the
    columnar ensemble's weighted counters; nothing is materialized
    unless a caller asks a per-world question (``prob`` /
    ``expectation`` with an arbitrary predicate).
    """

    def __init__(self, columnar, weights):
        import numpy as np

        self._columnar = columnar
        self._weights = np.asarray(weights, dtype=float)
        if self._weights.shape != (columnar.n_runs,):
            raise MeasureError(
                f"weight vector shape {self._weights.shape} does not "
                f"match the ensemble size ({columnar.n_runs})")
        if np.any(self._weights < 0):
            raise MeasureError("negative importance weight")
        self._total = float(self._weights.sum())
        if self._total <= 0.0:
            raise MeasureError(
                "all importance weights are zero - the evidence has "
                "zero likelihood under the program")

    @property
    def n_worlds(self) -> int:
        return self._columnar.n_runs

    @property
    def n_runs(self) -> int:
        return self._columnar.n_runs

    @property
    def weights(self):
        return self._weights

    def total_weight(self) -> float:
        return self._total

    def effective_sample_size(self) -> float:
        """``(Σw)² / Σw²`` - the importance-sampling quality measure."""
        squared = float((self._weights * self._weights).sum())
        if squared <= 0.0:
            return 0.0
        return self._total * self._total / squared

    # -- PDBBase ------------------------------------------------------------

    def marginal(self, f) -> float:
        return self._columnar.weighted_count(f, self._weights) \
            / self._total

    def fact_marginals_columnar(self, relations=None):
        """Posterior marginal of every output fact, computed columnar.

        Duck-typed hook for :func:`repro.pdb.stats.fact_marginals`,
        like the unweighted columnar ensemble's.
        """
        totals = self._columnar.weighted_fact_totals(self._weights,
                                                     relations)
        return {fact: count / self._total
                for fact, count in totals.items()}

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        test = event.contains if isinstance(event, Event) else event
        hit = 0.0
        for world, weight in self._iter_weighted():
            if test(world):
                hit += weight
        return hit / self._total

    def err_mass(self) -> float:
        return 0.0  # posterior over surviving worlds by construction

    def total_mass(self) -> float:
        return 1.0

    def map_worlds(self, transform: Callable[[Instance], Instance],
                   ) -> "WeightedPDB":
        worlds, weights = [], []
        for world, weight in self._iter_weighted():
            worlds.append(transform(world))
            weights.append(weight)
        return WeightedPDB(worlds, weights)

    def expectation(self, statistic: Callable[[Instance], float],
                    ) -> float:
        weighted = math.fsum(weight * statistic(world)
                             for world, weight in self._iter_weighted())
        return weighted / self._total

    def _iter_weighted(self):
        """(world, weight) over live slots, materializing on demand."""
        for index, world in enumerate(self._columnar.world_slots()):
            if world is None:
                continue
            weight = float(self._weights[index])
            if weight > 0.0:
                yield world, weight

    def __repr__(self) -> str:
        return (f"WeightedColumnarPDB(<{self.n_worlds} worlds, ESS "
                f"{self.effective_sample_size():.1f}>)")
