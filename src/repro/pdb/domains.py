"""Attribute domains (standard Borel spaces) for relation schemas.

The paper's framework of standard probabilistic databases assumes every
attribute domain is a standard Borel space (Section 2.3).  The library
models the domains it actually needs computationally:

* :data:`REAL` - the real line with its Borel sets,
* :data:`INT` - the integers with the discrete sigma-algebra,
* :data:`NAT` - the non-negative integers,
* :data:`STRING` - a countable set of strings,
* :data:`BOOL` - the two-point space,
* :class:`FiniteDomain` - an explicit finite set of constants,
* :class:`IntervalDomain` - a real interval (e.g. ``[0, 1]`` for biases).

Domains serve two purposes: validating constants in atoms
(Definition 3.2) and typing the positions where a random term's sample
space ``X_psi`` must embed into the attribute domain.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.errors import SchemaError


class Domain:
    """An attribute domain: a named standard Borel space of values.

    Subclasses override :meth:`contains` to describe membership, and
    :meth:`is_superset_of` to decide whether a distribution whose sample
    space is ``other`` may occupy a position typed with this domain.
    """

    def __init__(self, name: str):
        self.name = name

    def contains(self, value: Any) -> bool:
        """Whether ``value`` is a point of this domain."""
        raise NotImplementedError

    def is_superset_of(self, other: "Domain") -> bool:
        """Conservative check that ``other`` embeds into this domain."""
        return self is other

    def is_discrete(self) -> bool:
        """Whether the domain is countable (counting-measure base)."""
        return True

    def __repr__(self) -> str:
        return f"Domain({self.name})"

    def __str__(self) -> str:
        return self.name


class _RealDomain(Domain):
    """The real line (Lebesgue base measure)."""

    def contains(self, value: Any) -> bool:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool)
                and math.isfinite(float(value)))

    def is_superset_of(self, other: Domain) -> bool:
        return isinstance(other, (_RealDomain, _IntDomain, _NatDomain,
                                  _BoolDomain, IntervalDomain))

    def is_discrete(self) -> bool:
        return False


class _IntDomain(Domain):
    """The integers."""

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool):
            return True
        if isinstance(value, int):
            return True
        return isinstance(value, float) and float(value).is_integer()

    def is_superset_of(self, other: Domain) -> bool:
        return isinstance(other, (_IntDomain, _NatDomain, _BoolDomain))


class _NatDomain(_IntDomain):
    """The non-negative integers."""

    def contains(self, value: Any) -> bool:
        return super().contains(value) and float(value) >= 0

    def is_superset_of(self, other: Domain) -> bool:
        return isinstance(other, (_NatDomain, _BoolDomain))


class _StringDomain(Domain):
    """A countable set of strings."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, str)

    def is_superset_of(self, other: Domain) -> bool:
        if isinstance(other, _StringDomain):
            return True
        return (isinstance(other, FiniteDomain)
                and all(isinstance(v, str) for v in other.values))


class _BoolDomain(Domain):
    """The two-point space {0, 1} (accepts Python bools and 0/1)."""

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool):
            return True
        return isinstance(value, (int, float)) and float(value) in (0.0, 1.0)

    def is_superset_of(self, other: Domain) -> bool:
        return isinstance(other, _BoolDomain)


class _AnyDomain(Domain):
    """The untyped domain: accepts every value.

    Used when a schema is inferred rather than declared; corresponds to a
    large standard Borel space containing all value types as summands.
    """

    def contains(self, value: Any) -> bool:
        return True

    def is_superset_of(self, other: Domain) -> bool:
        return True

    def is_discrete(self) -> bool:
        return False


class FiniteDomain(Domain):
    """An explicit finite set of admissible constants."""

    def __init__(self, name: str, values: Iterable[Any]):
        super().__init__(name)
        self.values = frozenset(values)
        if not self.values:
            raise SchemaError(f"finite domain {name!r} must be non-empty")

    def contains(self, value: Any) -> bool:
        return value in self.values

    def is_superset_of(self, other: Domain) -> bool:
        if isinstance(other, FiniteDomain):
            return other.values <= self.values
        return False

    def __repr__(self) -> str:
        return f"FiniteDomain({self.name}, {sorted(map(repr, self.values))})"


class IntervalDomain(Domain):
    """A real interval ``[low, high]`` (closed; endpoints may be infinite)."""

    def __init__(self, name: str, low: float, high: float):
        super().__init__(name)
        if not low <= high:
            raise SchemaError(f"interval domain {name!r}: low > high")
        self.low = float(low)
        self.high = float(high)

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return self.low <= float(value) <= self.high

    def is_superset_of(self, other: Domain) -> bool:
        if isinstance(other, IntervalDomain):
            return self.low <= other.low and other.high <= self.high
        if isinstance(other, _BoolDomain):
            return self.low <= 0.0 and self.high >= 1.0
        return False

    def is_discrete(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"IntervalDomain({self.name}, {self.low}, {self.high})"


#: The real line.
REAL = _RealDomain("real")
#: The integers.
INT = _IntDomain("int")
#: The non-negative integers.
NAT = _NatDomain("nat")
#: Strings.
STRING = _StringDomain("string")
#: Booleans / {0, 1}.
BOOL = _BoolDomain("bool")
#: The untyped domain accepting every value.
ANY = _AnyDomain("any")
#: The unit interval, the parameter space of ``Flip``.
UNIT = IntervalDomain("unit", 0.0, 1.0)
