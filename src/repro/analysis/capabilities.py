"""Static capability prediction: which fast paths a program can take.

Every fast path this repository built is gated by *structural*
properties of the translated program: the batched backend needs weak
acyclicity and well-formed companion heads, Bárány companion batching
needs stable companion rests, streaming observation forcing needs a
provably trigger-free sample relation, guided conditioning needs a
backward-walkable derivation, and columnar query lifting needs stable
scanned relations.  At runtime these surface only as
``diagnostics["fallback"]`` / :class:`~repro.api.stream.
StreamingUnsupported` / scalar declines *after* work was attempted.

:func:`capability_report` decides all of them statically - per
program, and per rule with the blocking reason - so callers can
explain why a program will fall back before a single world is
sampled.  Predictions are *sound* in the direction the
``static-dynamic`` fuzz oracle asserts: eligibility claims are
conservative (a predicted-eligible program must not decline at
runtime; an ineligible prediction may still occasionally succeed).

The mirrors intentionally restate, statically, the decisions made in
:mod:`repro.engine.batched` (``_collect_growable``,
``_collect_companions``, ``_ground_head_template``), :meth:`repro.api.
session.Session._batch_eligible` and :func:`repro.core.backward.
backward_plan` - each mirror's docstring names its runtime twin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.termination import (TerminationReport,
                                    analyze_termination)
from repro.core.terms import Const, Var
from repro.core.translate import (DetRule, ExistentialProgram, ExtRule)
from repro.errors import DistributionError

STABLE, GROWABLE = "stable", "growable"


@dataclass(frozen=True)
class Capability:
    """One predicted capability: eligible, or why not.

    ``reasons`` is non-empty exactly when ``eligible`` is False;
    ``notes`` carries caveats that do not block eligibility (e.g. the
    config conditions ``backend="auto"`` additionally applies).
    ``detail`` is a per-relation / per-rule breakdown.
    """

    name: str
    eligible: bool
    reasons: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()
    detail: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "eligible": self.eligible,
            "reasons": list(self.reasons),
            "notes": list(self.notes),
            "detail": self.detail,
        }


@dataclass(frozen=True)
class RuleCapability:
    """Per source rule: is it batchable / guidable, and if not, why."""

    rule_index: int
    head_relation: str
    random: bool
    batched: bool
    blocking: str = ""
    guided_reachable: bool | None = None
    guided_blocking: str = ""

    def to_json(self) -> dict:
        return {
            "rule": self.rule_index,
            "head": self.head_relation,
            "random": self.random,
            "batched": self.batched,
            "blocking": self.blocking,
            "guided_reachable": self.guided_reachable,
            "guided_blocking": self.guided_blocking,
        }


@dataclass(frozen=True)
class CapabilityReport:
    """The full static capability frontier of one translated program."""

    semantics: str
    weakly_acyclic: bool
    batched: Capability
    pooled_draws: Capability
    barany_batching: Capability
    streaming_observations: Capability
    guided_conditioning: Capability
    columnar_lift: Capability
    rules: tuple[RuleCapability, ...] = ()
    stable_relations: frozenset = frozenset()
    growable_relations: frozenset = frozenset()

    def capabilities(self) -> tuple[Capability, ...]:
        return (self.batched, self.pooled_draws, self.barany_batching,
                self.streaming_observations, self.guided_conditioning,
                self.columnar_lift)

    def to_json(self) -> dict:
        return {
            "semantics": self.semantics,
            "weakly_acyclic": self.weakly_acyclic,
            "capabilities": {capability.name: capability.to_json()
                             for capability in self.capabilities()},
            "stable_relations": sorted(self.stable_relations),
            "growable_relations": sorted(self.growable_relations),
            "rules": [rule.to_json() for rule in self.rules],
        }

    def summary(self) -> str:
        verdicts = ", ".join(
            f"{capability.name}={'yes' if capability.eligible else 'no'}"
            for capability in self.capabilities())
        return f"capabilities[{self.semantics}]: {verdicts}"


# ---------------------------------------------------------------------------
# Static mirrors of the engines' structural decisions
# ---------------------------------------------------------------------------

def collect_growable(translated: ExistentialProgram) -> frozenset:
    """Static mirror of ``BatchedChase._collect_growable``.

    Seeded with the auxiliary relations and closed under rule heads
    whose bodies touch a growable relation; the complement (the
    *stable* relations) can never gain a fact after the shared
    deterministic fixpoint, in any world.
    """
    growable = set(translated.aux_relations)
    changed = True
    while changed:
        changed = False
        for rule in translated.rules:
            head = rule.head.relation if isinstance(rule, DetRule) \
                else rule.aux_relation
            if head in growable:
                continue
            if any(atom.relation in growable for atom in rule.body):
                growable.add(head)
                changed = True
    return frozenset(growable)


def collect_companions(translated: ExistentialProgram) -> dict:
    """Static mirror of ``BatchedChase._collect_companions``.

    aux relation -> list of (companion DetRule, its aux body atom).
    """
    companions: dict[str, list] = {}
    for rule in translated.rules:
        if not isinstance(rule, DetRule):
            continue
        for atom in rule.body:
            if atom.relation in translated.aux_relations:
                companions.setdefault(atom.relation, []).append(
                    (rule, atom))
    return companions


def _companion_head_defect(companion: DetRule, aux_atom) -> str | None:
    """Static mirror of ``BatchedChase._ground_head_template``.

    Returns the defect the engine would raise ``BatchUnsupported``
    for, or None when the companion head template is well-formed: the
    existential variable must appear exactly once in the head, and
    every head variable must be bound by the auxiliary atom or the
    rest of the body (range restriction guarantees the latter for
    translated programs, but hand-built existential programs reach
    here too).
    """
    existential = aux_atom.terms[-1]
    mentions = sum(1 for term in companion.head.terms
                   if term == existential)
    if mentions == 0:
        return (f"companion head {companion.head!r} does not mention "
                "the existential variable")
    if mentions > 1:
        return ("existential variable repeats in companion head "
                f"{companion.head!r}")
    body_vars = {term for atom in companion.body
                 for term in atom.terms if isinstance(term, Var)}
    for term in companion.head.terms:
        if isinstance(term, Var) and term != existential \
                and term not in body_vars:
            return (f"companion head variable {term!r} is not bound "
                    "by the companion body")
    return None


def _static_param_defect(translated: ExistentialProgram,
                         ext: ExtRule) -> str | None:
    """Constant parameter tuples outside Θ fail at prepare time."""
    params = ext.prefix_terms[ext.n_carried:]
    if not all(isinstance(term, Const) for term in params):
        return None
    values = tuple(term.value for term in params)
    try:
        ext.distribution.validate_params(values)
    except DistributionError as invalid:
        return (f"parameters {values!r} of {ext.distribution.name} "
                f"are outside Θ: {invalid}")
    return None


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------

#: Config conditions ``backend="auto"`` applies on top of the static
#: eligibility - not properties of the program, so reported as notes.
_CONFIG_NOTE = ("auto backend additionally requires spawn RNG "
                "streams, no worker threads, a batch-safe policy, "
                "no parallel chase and no trace recording")


def capability_report(translated: ExistentialProgram,
                      termination: TerminationReport | None = None,
                      ) -> CapabilityReport:
    """Predict every engine capability of a translated program.

    >>> from repro.core.program import Program
    >>> report = capability_report(
    ...     Program.parse("R(Flip<0.5>) :- true.").translate())
    >>> report.batched.eligible
    True
    """
    if termination is None:
        termination = analyze_termination(translated)
    growable = collect_growable(translated)
    companions = collect_companions(translated)
    visible = tuple(translated.visible_relations())
    stable = frozenset(relation for relation in visible
                       if relation not in growable)
    ext_rules = [rule for rule in translated.rules
                 if isinstance(rule, ExtRule)]

    batched = _predict_batched(translated, termination, companions,
                               ext_rules)
    pooled = _predict_pooled(batched, ext_rules)
    barany = _predict_barany(translated, batched, companions,
                             growable)
    streaming = _predict_streaming(translated, batched, companions)
    guided = _predict_guided(translated, companions, growable,
                             ext_rules)
    columnar = _predict_columnar(batched, stable, visible, growable)
    rules = _per_rule(translated, batched, guided, ext_rules)
    return CapabilityReport(
        semantics=translated.semantics,
        weakly_acyclic=termination.weakly_acyclic,
        batched=batched,
        pooled_draws=pooled,
        barany_batching=barany,
        streaming_observations=streaming,
        guided_conditioning=guided,
        columnar_lift=columnar,
        rules=rules,
        stable_relations=stable,
        growable_relations=frozenset(growable) - set(
            translated.aux_relations))


def _predict_batched(translated, termination, companions,
                     ext_rules) -> Capability:
    """Mirror of ``Session._batch_eligible`` + the static
    ``BatchUnsupported`` raise sites of ``BatchedChase.__init__``."""
    reasons: list[str] = []
    detail: dict = {}
    if not termination.weakly_acyclic:
        kind = "continuous" if termination.continuous_cycle \
            else "discrete"
        reasons.append(
            f"not weakly acyclic ({kind} special cycle through "
            f"{', '.join(sorted(termination.cyclic_distributions))})"
            ": Theorem 6.1's order-independence argument does not "
            "apply")
    if translated.semantics == "grohe":
        for relation in sorted(translated.aux_relations):
            n = len(companions.get(relation, ()))
            if n != 1:
                reasons.append(
                    f"auxiliary relation {relation!r} has {n} "
                    "companion rules under the per-rule translation")
    for relation in sorted(translated.aux_relations):
        if not companions.get(relation):
            reasons.append(f"auxiliary relation {relation!r} has no "
                           "companion rule")
    for relation, pairs in sorted(companions.items()):
        for companion, aux_atom in pairs:
            defect = _companion_head_defect(companion, aux_atom)
            if defect:
                reasons.append(defect)
                detail.setdefault(relation, []).append(defect)
    for ext in ext_rules:
        defect = _static_param_defect(translated, ext)
        if defect:
            reasons.append(defect)
            detail.setdefault(ext.aux_relation, []).append(defect)
    return Capability("batched", not reasons, tuple(reasons),
                      notes=(_CONFIG_NOTE,), detail=detail)


def _predict_pooled(batched: Capability, ext_rules) -> Capability:
    """Cross-group draw pooling rides on the batched cascade."""
    if not batched.eligible:
        return Capability(
            "pooled_draws", False,
            ("requires the batched backend",) + batched.reasons)
    if not ext_rules:
        return Capability(
            "pooled_draws", False,
            ("no random rules: nothing to pool",))
    return Capability("pooled_draws", True)


def _predict_barany(translated, batched: Capability, companions,
                    growable) -> Capability:
    """Columnar companion fan-out needs stable companion rests.

    Mirror of ``BatchedChase._companion_heads``'s ``rests_stable``
    flag: a companion rest-of-body touching a growable relation binds
    every world-varying draw into the trigger signature (all-singleton
    groups) - distributionally exact but no longer columnar.
    """
    if translated.semantics != "barany":
        return Capability(
            "barany_batching", batched.eligible,
            () if batched.eligible else batched.reasons,
            notes=("per-rule (grohe) translation: each companion "
                   "head is a function of its auxiliary fact alone, "
                   "fan-out batching is trivial",))
    reasons: list[str] = []
    detail: dict = {}
    for relation, pairs in sorted(companions.items()):
        touched = sorted({
            atom.relation
            for companion, aux_atom in pairs
            for atom in companion.body
            if atom is not aux_atom and atom.relation in growable})
        detail[relation] = {"rests_stable": not touched,
                            "growable_rests": touched}
        if touched:
            reasons.append(
                f"companion rests of {relation!r} touch growable "
                f"relation(s) {', '.join(touched)}: draws bind into "
                "trigger signatures (all-singleton groups)")
    if not batched.eligible:
        reasons = ["requires the batched backend",
                   *batched.reasons, *reasons]
    return Capability("barany_batching", not reasons, tuple(reasons),
                      detail=detail)


def _predict_streaming(translated, batched: Capability,
                       companions) -> Capability:
    """When is observation forcing *provably* exact, statically?

    :func:`repro.engine.batched.observation_effects` admits an
    observation when its trigger analysis is NEVER (or the pinned
    value stays outside every pin), and raises
    ``StreamingUnsupported`` on scalar-fallback worlds touching the
    observed auxiliary.  Both hazards vanish together when *no rule
    body reads any sampled head relation*: every trigger analysis is
    NEVER, so worlds are never regrouped and never fall back to the
    scalar engine.  That condition is per-program, not per-auxiliary -
    one triggering auxiliary can strand worlds on the scalar path and
    poison observations of every other auxiliary.
    """
    read_by: dict[str, list[str]] = {}
    for rule in translated.rules:
        for atom in rule.body:
            if atom.relation in translated.aux_relations:
                continue
            read_by.setdefault(atom.relation, []).append(
                f"rule {rule.index}")
    reasons: list[str] = []
    detail: dict = {}
    for relation, pairs in sorted(companions.items()):
        sampled_heads = sorted({companion.head.relation
                                for companion, _atom in pairs})
        triggering = [head for head in sampled_heads
                      if head in read_by]
        detail[relation] = {"sampled_relations": sampled_heads,
                            "triggering": triggering}
        for head in triggering:
            reasons.append(
                f"sampled relation {head!r} feeds rule bodies "
                f"({', '.join(read_by[head][:3])}): observations may "
                "force downstream firing (runtime trigger analysis "
                "decides case by case)")
    if not batched.eligible:
        reasons = ["requires the batched backend",
                   *batched.reasons, *reasons]
    return Capability(
        "streaming_observations", not reasons, tuple(reasons),
        notes=("prediction is conservative: a triggering program may "
               "still accept individual observations whose value "
               "misses every pin",),
        detail=detail)


def _predict_guided(translated, companions, growable,
                    ext_rules) -> Capability:
    """Backward-walk reachability of each random rule.

    Mirror of the give-up conditions in :mod:`repro.core.backward`:
    evidence on a companion head reaches the draw when the companion
    body carries exactly one auxiliary atom and its rests stay on
    stable relations (growable rests drop the draw constraints).
    Disjoint derivations of the same head relation only *weaken* pins
    (reported as a note, not a blocker).
    """
    derivers: dict[str, int] = {}
    for rule in translated.rules:
        if isinstance(rule, DetRule):
            derivers[rule.head.relation] = \
                derivers.get(rule.head.relation, 0) + 1
    reasons: list[str] = []
    notes: list[str] = []
    detail: dict = {}
    for ext in ext_rules:
        pairs = companions.get(ext.aux_relation, ())
        entry = {"reachable": True, "blocking": "",
                 "sampled_relations": sorted(
                     {c.head.relation for c, _ in pairs})}
        blocking = ""
        if not pairs:
            blocking = "no companion rule: evidence cannot name " \
                       "the draw"
        for companion, aux_atom in pairs:
            if blocking:
                break
            aux_atoms = [atom for atom in companion.body
                         if atom.relation in translated.aux_relations]
            if len(aux_atoms) > 1:
                blocking = (
                    f"companion of {ext.aux_relation!r} joins "
                    f"{len(aux_atoms)} auxiliary atoms: the backward "
                    "walk gives up on multi-draw bodies")
                break
            rest_growable = sorted({
                atom.relation for atom in companion.body
                if atom is not aux_atom
                and atom.relation in growable})
            if rest_growable:
                blocking = (
                    f"companion rests of {ext.aux_relation!r} touch "
                    f"growable relation(s) {', '.join(rest_growable)}"
                    ": matched prefixes are not final, draw "
                    "constraints are dropped")
                break
            shared = sum(derivers.get(companion.head.relation, 0)
                         for companion, _ in pairs)
            if shared > len(pairs):
                notes.append(
                    f"{companion.head.relation!r} has "
                    f"{shared - len(pairs)} non-companion "
                    "derivation(s): pins weaken to disjunctions")
        entry["reachable"] = not blocking
        entry["blocking"] = blocking
        detail[ext.aux_relation] = entry
        if blocking:
            reasons.append(blocking)
    if not ext_rules:
        return Capability("guided_conditioning", False,
                          ("no random rules: nothing to guide",))
    return Capability("guided_conditioning", not reasons,
                      tuple(reasons), notes=tuple(dict.fromkeys(notes)),
                      detail=detail)


def _predict_columnar(batched: Capability, stable, visible,
                      growable) -> Capability:
    """Which relations a columnar query plan can lift.

    Mirror of :func:`repro.query.columnar.explain`: a plan is lifted
    when every scanned relation is stable (one evaluation over the
    closed instance serves all worlds); growable relations stay
    answerable but per-group columnar.
    """
    detail = {relation: (STABLE if relation in stable else GROWABLE)
              for relation in visible}
    reasons: list[str] = []
    if not batched.eligible:
        reasons.append("requires the batched backend")
        reasons.extend(batched.reasons)
    if not stable:
        reasons.append("no stable visible relation: every scan "
                       "touches world-varying facts")
    return Capability(
        "columnar_lift", not reasons, tuple(reasons),
        notes=("plans over growable relations still compile to "
               "columnar masks; only the lifted single-evaluation "
               "fast path needs stability",),
        detail=detail)


def _per_rule(translated, batched: Capability, guided: Capability,
              ext_rules) -> tuple[RuleCapability, ...]:
    """Attribute program-level blockers back to source rules."""
    source = translated.source

    def origin_index(ext) -> int | None:
        if ext.origin is None:
            return None
        for index, rule in enumerate(source.rules):
            if rule is ext.origin or rule == ext.origin:
                return index
        return None

    by_aux = {ext.aux_relation: ext for ext in ext_rules}
    aux_of_origin: dict[int, str] = {}
    for ext in ext_rules:
        index = origin_index(ext)
        if index is not None:
            aux_of_origin.setdefault(index, ext.aux_relation)
    cyclic_origins: dict[int, str] = {}
    if not batched.eligible:
        for reason in batched.reasons:
            for aux, ext in by_aux.items():
                index = origin_index(ext)
                if f"{aux!r}" in reason and index is not None:
                    cyclic_origins.setdefault(index, reason)
    rules = []
    for index, rule in enumerate(source.rules):
        random = rule.is_random()
        blocking = ""
        if not batched.eligible:
            blocking = cyclic_origins.get(index, batched.reasons[0])
        reachable = None
        guided_blocking = ""
        if random:
            aux = aux_of_origin.get(index)
            entry = guided.detail.get(aux, {}) if aux else {}
            reachable = bool(entry.get("reachable", False))
            guided_blocking = entry.get("blocking", "")
        rules.append(RuleCapability(
            rule_index=index,
            head_relation=rule.head.relation,
            random=random,
            batched=batched.eligible,
            blocking=blocking,
            guided_reachable=reachable,
            guided_blocking=guided_blocking))
    return tuple(rules)
