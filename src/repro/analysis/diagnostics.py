"""The diagnostic vocabulary of the static analyzer.

A :class:`Diagnostic` is one finding of the linter
(:mod:`repro.analysis.lint`): a stable machine code, a severity, the
rule/atom span it anchors to, a human message and a fix hint.  A
:class:`LintReport` is an ordered collection of them with the
severity-threshold logic the ``repro lint --fail-on`` flag exposes.

Severities form a strict order (``error`` > ``warning`` > ``info``):

* ``error``   - the program is outside the semantics' well-defined
  class (invalid parameters against Θ, a continuous special cycle -
  almost surely non-terminating per Section 6.3);
* ``warning`` - the program is runnable but something is very likely
  not what the author meant (unreachable rules, discrete special
  cycles, duplicated rules);
* ``info``    - stylistic or optimization opportunities (write-only
  relations, constant-foldable parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR, WARNING, INFO = "error", "warning", "info"

#: Severities, most severe first; index = rank.
SEVERITIES = (ERROR, WARNING, INFO)


def severity_rank(severity: str) -> int:
    """0 for ``error``, 1 for ``warning``, 2 for ``info``."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(f"unknown severity {severity!r}; "
                         f"use one of {SEVERITIES}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a rule (and optionally a subject).

    ``rule_index`` is the index into the *source* program's rule list
    (None for program-level findings); ``subject`` names the variable,
    relation or atom the finding is about.  ``witness_cycle`` is only
    populated by the weak-acyclicity check: the explicit cycle of
    (relation, position) nodes whose first edge is the special edge -
    replayable against :func:`repro.core.termination.position_graph`.
    """

    code: str
    severity: str
    message: str
    rule_index: int | None = None
    subject: str | None = None
    fix_hint: str = ""
    witness_cycle: tuple = field(default=())

    def __post_init__(self):
        severity_rank(self.severity)  # validates

    def at_least(self, severity: str) -> bool:
        """Whether this finding is at or above the given severity."""
        return severity_rank(self.severity) <= severity_rank(severity)

    def to_json(self) -> dict:
        payload = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "rule": self.rule_index,
            "subject": self.subject,
            "fix_hint": self.fix_hint,
        }
        if self.witness_cycle:
            payload["witness_cycle"] = [
                [relation, position]
                for relation, position in self.witness_cycle]
        return payload

    def __str__(self) -> str:
        where = f"rule {self.rule_index}" \
            if self.rule_index is not None else "program"
        subject = f" ({self.subject})" if self.subject else ""
        hint = f"  [hint: {self.fix_hint}]" if self.fix_hint else ""
        return (f"{self.severity}[{self.code}] {where}{subject}: "
                f"{self.message}{hint}")


@dataclass(frozen=True)
class LintReport:
    """Every diagnostic of one lint pass, ordered by severity."""

    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == INFO)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def counts(self) -> dict[str, int]:
        return {severity: sum(1 for d in self.diagnostics
                              if d.severity == severity)
                for severity in SEVERITIES}

    def ok(self, fail_on: str = ERROR) -> bool:
        """True when no diagnostic reaches the ``fail_on`` severity."""
        return not any(d.at_least(fail_on) for d in self.diagnostics)

    def to_json(self) -> dict:
        return {
            "counts": self.counts(),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def summary(self) -> str:
        counts = self.counts()
        if not self.diagnostics:
            return "lint: clean"
        parts = [f"{count} {severity}{'s' if count != 1 else ''}"
                 for severity, count in counts.items() if count]
        return f"lint: {', '.join(parts)}"
