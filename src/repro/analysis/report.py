"""The combined deep-analysis report: termination + lint + capability.

:func:`deep_analyze` is the one entry point the surfaces share:
``Session.analyze(deep=True)``, ``repro lint`` / ``repro analyze
--deep``, the serving ``analyze`` op with ``"deep": true``, and the
:class:`~repro.serving.server.ProgramServer` pre-flight hook all
produce this :class:`DeepReport`.  It is cheap by construction - every
layer is static except the two instance-aware lint checks - so it can
run on every compile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.capabilities import (CapabilityReport,
                                         capability_report)
from repro.analysis.diagnostics import LintReport
from repro.analysis.lint import lint_program
from repro.core.termination import (TerminationReport,
                                    analyze_termination)
from repro.core.translate import ExistentialProgram
from repro.pdb.instances import Instance


@dataclass(frozen=True)
class DeepReport:
    """Everything the static analyzer knows about one program."""

    termination: TerminationReport
    lint: LintReport
    capabilities: CapabilityReport

    def ok(self, fail_on: str = "error") -> bool:
        """Lint verdict at the given severity threshold."""
        return self.lint.ok(fail_on)

    def to_json(self) -> dict:
        report = self.termination
        return {
            "weakly_acyclic": report.weakly_acyclic,
            "continuous_cycle": report.continuous_cycle,
            "cyclic_distributions": list(report.cyclic_distributions),
            "lint": self.lint.to_json(),
            "capabilities": self.capabilities.to_json(),
        }

    def summary(self) -> str:
        acyclic = "weakly acyclic" if self.termination.weakly_acyclic \
            else "NOT weakly acyclic"
        return (f"{acyclic}; {self.lint.summary()}; "
                f"{self.capabilities.summary()}")


def deep_analyze(translated: ExistentialProgram,
                 instance: Instance | None = None,
                 termination: TerminationReport | None = None,
                 ) -> DeepReport:
    """Run all three analysis layers over a translated program.

    ``instance`` enables the instance-aware lint checks
    (semi-join unreachability, constant-foldable parameters);
    ``termination`` short-circuits recomputation when the caller
    already holds the cached report.

    >>> from repro.core.program import Program
    >>> report = deep_analyze(
    ...     Program.parse("R(Flip<0.5>) :- true.").translate())
    >>> report.capabilities.batched.eligible
    True
    """
    if termination is None:
        termination = analyze_termination(translated)
    lint = lint_program(translated.source,
                        semantics=translated.semantics,
                        instance=instance,
                        translated=translated)
    capabilities = capability_report(translated, termination)
    return DeepReport(termination=termination, lint=lint,
                      capabilities=capabilities)
