"""The lint checks of the static analyzer.

:func:`lint_program` runs ten structural checks over a source program
(and, when given, its translation and an input instance) and returns a
:class:`~repro.analysis.diagnostics.LintReport`:

====================================  ========  =======================
code                                  severity  anchored to
====================================  ========  =======================
``invalid-distribution-params``       error     random term with
                                                constant parameters
                                                outside the family's Θ
``weak-acyclicity-violation``         error /   special edge on a cycle
                                      warning   (error when the cycle
                                                feeds a *continuous*
                                                distribution - §6.3)
``empty-relation``                    warning   body relation that is
                                                neither extensional nor
                                                derivable
``unreachable-rule``                  warning   rule whose body can
                                                never be satisfied
``unused-variable``                   warning   body variable used
                                                exactly once
``duplicate-rule``                    warning   rule alpha-equivalent
                                                to an earlier one
``subsumed-rule``                     info      rule whose body extends
                                                an identical-headed
                                                earlier rule
``duplicate-body-atom``               info      atom repeated within
                                                one body
``write-only-relation``               info      derived relation never
                                                read by any body
``constant-foldable-param``           info      variable parameter that
                                                is single-valued over
                                                the input instance
====================================  ========  =======================

Two checks are *instance-aware* and only run when an instance is
supplied: ``unreachable-rule`` additionally semi-joins each rule
body's stable sub-conjunction against the deterministic closure of the
instance (the same stability argument that licenses the batched
engine's trigger pruning: a stable subquery unsatisfiable on the
closed instance stays unsatisfiable through every cascade round), and
``constant-foldable-param`` inspects the observed column values.

Lint-cleanliness at the ``error`` level is the admission condition the
``static-dynamic`` fuzz oracle verifies: an error-free program must
compile and chase without raising a program error.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.analysis.diagnostics import (ERROR, INFO, WARNING,
                                        Diagnostic, LintReport)
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.termination import position_graph
from repro.core.terms import Const, RandomTerm, Var
from repro.core.translate import ExistentialProgram, translate
from repro.engine.matching import IndexedSource, match_atoms
from repro.engine.seminaive import seminaive_closure
from repro.errors import DistributionError
from repro.pdb.instances import Instance

#: Codes whose presence makes a program statically *invalid* (the
#: fuzz runner rejects such generated cases before chasing them).
FATAL_CODES = frozenset({"invalid-distribution-params"})


def lint_program(program: Program,
                 semantics: str = "grohe",
                 instance: Instance | None = None,
                 translated: ExistentialProgram | None = None,
                 ) -> LintReport:
    """Run every lint check; instance-aware ones need ``instance``.

    ``translated`` short-circuits re-translation when the caller (a
    :class:`~repro.api.session.CompiledProgram`) already has ``Ĝ``.

    >>> report = lint_program(Program.parse("R(Flip<0.5>) :- true."))
    >>> report.ok()
    True
    """
    if translated is None:
        translated = translate(program) if semantics == "grohe" \
            else program.translate_barany()
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(check_distribution_params(program))
    diagnostics.extend(check_weak_acyclicity(translated))
    derivable, empty = _derivable_relations(program, instance)
    diagnostics.extend(empty)
    diagnostics.extend(check_unused_variables(program))
    diagnostics.extend(check_duplicate_rules(program))
    diagnostics.extend(check_duplicate_body_atoms(program))
    diagnostics.extend(check_write_only_relations(program))
    unreachable: set[int] = set()
    diagnostics.extend(
        check_unreachable_static(program, derivable, unreachable))
    if instance is not None:
        diagnostics.extend(check_unreachable_on_instance(
            program, instance, unreachable))
        diagnostics.extend(
            check_constant_foldable(program, instance))
    order = {ERROR: 0, WARNING: 1, INFO: 2}
    diagnostics.sort(key=lambda d: (order[d.severity], d.code,
                                    d.rule_index
                                    if d.rule_index is not None else -1))
    return LintReport(tuple(diagnostics))


def fatal_diagnostics(program: Program) -> tuple[Diagnostic, ...]:
    """The cheap statically-fatal subset (no translation needed).

    This is the fuzz runner's admission filter: programs carrying one
    of these cannot be chased meaningfully under any engine, so
    generated cases are rejected (``lint_rejected``) before any oracle
    runs.  Deliberately *excludes* weak-acyclicity violations - the
    non-terminating program class is a legitimate fuzz subject
    (TerminationOracle tests it).
    """
    return tuple(check_distribution_params(program))


# ---------------------------------------------------------------------------
# Parameter checks
# ---------------------------------------------------------------------------

def check_distribution_params(program: Program,
                              ) -> Iterable[Diagnostic]:
    """Constant parameter tuples validated against each family's Θ."""
    for index, rule in enumerate(program.rules):
        for term in rule.head.terms:
            if not isinstance(term, RandomTerm):
                continue
            if not all(isinstance(p, Const) for p in term.params):
                continue
            values = tuple(p.value for p in term.params)
            try:
                term.distribution.validate_params(values)
            except DistributionError as invalid:
                yield Diagnostic(
                    "invalid-distribution-params", ERROR,
                    str(invalid), rule_index=index,
                    subject=term.distribution.name,
                    fix_hint="adjust the constant parameters to the "
                             "family's parameter domain Θ")
                continue
            if any(isinstance(v, float)
                   and (v != v or v in (float("inf"), float("-inf")))
                   for v in values):
                yield Diagnostic(
                    "invalid-distribution-params", ERROR,
                    f"non-finite parameter in {values!r}",
                    rule_index=index,
                    subject=term.distribution.name,
                    fix_hint="parameters must be finite numbers")


def check_constant_foldable(program: Program, instance: Instance,
                            ) -> Iterable[Diagnostic]:
    """Variable parameters that are single-valued over the instance.

    A parameter variable bound at exactly one body position, over an
    *extensional* relation whose instance column holds a single
    distinct value, always evaluates to that value - the program would
    read identically (and translate to fewer distinct draw signatures)
    with the constant folded in.
    """
    columns: dict[tuple[str, int], set] = {}
    for fact in instance.facts:
        for position, value in enumerate(fact.args):
            columns.setdefault((fact.relation, position),
                               set()).add(value)
    for index, rule in enumerate(program.rules):
        param_vars = {param
                      for term in rule.head.terms
                      if isinstance(term, RandomTerm)
                      for param in term.params
                      if isinstance(param, Var)}
        if not param_vars:
            continue
        positions: dict[Var, list[tuple[str, int]]] = {}
        for atom in rule.body:
            for position, term in enumerate(atom.terms):
                if isinstance(term, Var) and term in param_vars:
                    positions.setdefault(term, []).append(
                        (atom.relation, position))
        for variable, spots in sorted(positions.items(),
                                      key=lambda kv: kv[0].name):
            if len(spots) != 1:
                continue  # joined: folding would change the relation
            relation, position = spots[0]
            if relation not in program.extensional:
                continue
            values = columns.get((relation, position))
            if values is not None and len(values) == 1:
                value = next(iter(values))
                yield Diagnostic(
                    "constant-foldable-param", INFO,
                    f"parameter variable {variable.name!r} always "
                    f"evaluates to {value!r} on this instance "
                    f"(single-valued column {relation}.{position})",
                    rule_index=index, subject=variable.name,
                    fix_hint=f"fold the constant {value!r} into the "
                             "distribution parameters")


# ---------------------------------------------------------------------------
# Weak acyclicity with witness cycles
# ---------------------------------------------------------------------------

def check_weak_acyclicity(translated: ExistentialProgram,
                          ) -> Iterable[Diagnostic]:
    """Every bad special edge, with an explicit witness cycle.

    The witness is the node path ``(source, target, ..., source)``:
    its first edge is the special edge itself, every following edge is
    a regular/special edge of the position graph, and it closes back
    at the special edge's source - exactly the cycle through a special
    edge that refutes weak acyclicity.  Continuous cycles are errors
    (almost surely non-terminating, Section 6.3); discrete ones
    warnings (termination with positive probability remains possible).
    """
    graph = position_graph(translated)
    plain = nx.DiGraph()
    plain.add_nodes_from(graph.nodes)
    special: dict[tuple, int] = {}
    for source, target, data in graph.edges(data=True):
        plain.add_edge(source, target)
        if data.get("special"):
            special.setdefault((source, target), data.get("rule", -1))
    for (source, target), rule_index in sorted(special.items()):
        if not nx.has_path(plain, target, source):
            continue
        witness = (source,) + tuple(
            nx.shortest_path(plain, target, source))
        aux_relation = target[0]
        info = translated.aux_info.get(aux_relation)
        continuous = info is not None \
            and not info.distribution.is_discrete
        rendering = " -> ".join(f"{rel}.{pos}"
                                for rel, pos in witness)
        rule = translated.rules[rule_index] \
            if 0 <= rule_index < len(translated.rules) else None
        origin = _origin_index(translated, getattr(rule, "origin",
                                                   None))
        yield Diagnostic(
            "weak-acyclicity-violation",
            ERROR if continuous else WARNING,
            f"special edge {source[0]}.{source[1]} => "
            f"{target[0]}.{target[1]} lies on a cycle: {rendering}"
            + (" (continuous distribution: almost surely "
               "non-terminating)" if continuous
               else " (discrete distribution: may terminate)"),
            rule_index=origin,
            subject=f"{target[0]}.{target[1]}",
            fix_hint="break the recursion through the sampled "
                     "position or stratify it with a bounded relation",
            witness_cycle=witness)


def _origin_index(translated: ExistentialProgram,
                  origin: Rule | None) -> int | None:
    """The source-program index of a translated rule's origin."""
    if origin is None:
        return None
    for index, rule in enumerate(translated.source.rules):
        if rule is origin or rule == origin:
            return index
    return None


# ---------------------------------------------------------------------------
# Relation-level checks
# ---------------------------------------------------------------------------

def _derivable_relations(program: Program,
                         instance: Instance | None = None,
                         ) -> tuple[frozenset, list[Diagnostic]]:
    """(derivable relations, ``empty-relation`` diagnostics).

    Derivable = extensional (or populated by the given instance -
    inputs may legitimately seed intensional relations), or the head
    of a rule all of whose body relations are derivable (empty bodies
    count).  Anything read by a body but not derivable is provably
    empty in every chase world.
    """
    derivable = set(program.extensional)
    if instance is not None:
        derivable.update(fact.relation for fact in instance.facts)
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head = rule.head.relation
            if head in derivable:
                continue
            if all(atom.relation in derivable for atom in rule.body):
                derivable.add(head)
                changed = True
    read = {atom.relation for rule in program.rules
            for atom in rule.body}
    diagnostics = [
        Diagnostic(
            "empty-relation", WARNING,
            f"relation {relation!r} is read but neither extensional "
            "nor derivable by any rule: it is empty in every world",
            subject=relation,
            fix_hint="declare it extensional or add a rule "
                     "deriving it")
        for relation in sorted(read - derivable)]
    return frozenset(derivable), diagnostics


def check_write_only_relations(program: Program,
                               ) -> Iterable[Diagnostic]:
    """Derived relations no body ever reads (outputs, presumably)."""
    read = {atom.relation for rule in program.rules
            for atom in rule.body}
    heads = sorted({rule.head.relation for rule in program.rules})
    for relation in heads:
        if relation not in read:
            yield Diagnostic(
                "write-only-relation", INFO,
                f"relation {relation!r} is derived but never read by "
                "any rule body (output relation, or dead derivation)",
                subject=relation,
                fix_hint="fine for outputs; otherwise drop the "
                         "deriving rules")


# ---------------------------------------------------------------------------
# Rule-level checks
# ---------------------------------------------------------------------------

def check_unreachable_static(program: Program, derivable: frozenset,
                             out_unreachable: set[int],
                             ) -> Iterable[Diagnostic]:
    """Rules reading a provably-empty relation can never fire."""
    for index, rule in enumerate(program.rules):
        missing = sorted(atom.relation for atom in rule.body
                         if atom.relation not in derivable)
        if missing:
            out_unreachable.add(index)
            yield Diagnostic(
                "unreachable-rule", WARNING,
                f"body reads empty relation(s) "
                f"{', '.join(sorted(set(missing)))}: the rule can "
                "never fire",
                rule_index=index, subject=rule.head.relation,
                fix_hint="derive the missing relations or remove "
                         "the rule")


def check_unreachable_on_instance(program: Program,
                                  instance: Instance,
                                  already: set[int],
                                  ) -> Iterable[Diagnostic]:
    """Semi-join the stable sub-body against the closed instance.

    Stable relations (those not reachable from any random head) have
    the same content in every chase world: their deterministic closure
    over the input.  A rule whose stable body projection has no
    solution there can therefore never fire, in any world - the same
    argument the batched engine's trigger analysis pins on
    (:meth:`repro.engine.batched.BatchedChase._atom_pin`).
    """
    growable = set(rule.head.relation for rule in program.rules
                   if rule.is_random())
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            head = rule.head.relation
            if head in growable:
                continue
            if any(atom.relation in growable for atom in rule.body):
                growable.add(head)
                changed = True
    stable_rules = [rule for rule in program.deterministic_rules()
                    if rule.head.relation not in growable]
    if stable_rules:
        closed, source = seminaive_closure(stable_rules, instance)
    else:
        closed, source = instance, IndexedSource(instance.facts)
    del closed
    for index, rule in enumerate(program.rules):
        if index in already:
            continue
        stable_atoms = [atom for atom in rule.body
                        if atom.relation not in growable]
        if not stable_atoms:
            continue
        if next(match_atoms(stable_atoms, source, {}), None) is None:
            yield Diagnostic(
                "unreachable-rule", WARNING,
                "the stable part of the body ("
                + ", ".join(repr(a) for a in stable_atoms)
                + ") has no solution over the closed input instance: "
                  "the rule can never fire in any world",
                rule_index=index, subject=rule.head.relation,
                fix_hint="check the input data or the join "
                         "conditions")


def check_unused_variables(program: Program) -> Iterable[Diagnostic]:
    """Body variables used exactly once (no join, filter or output)."""
    for index, rule in enumerate(program.rules):
        occurrences: dict[Var, int] = {}
        for atom in rule.body:
            for term in atom.terms:
                if isinstance(term, Var):
                    occurrences[term] = occurrences.get(term, 0) + 1
        for term in rule.head.terms:
            if isinstance(term, Var):
                occurrences[term] = occurrences.get(term, 0) + 1
            elif isinstance(term, RandomTerm):
                for param in term.params:
                    if isinstance(param, Var):
                        occurrences[param] = \
                            occurrences.get(param, 0) + 1
        head_vars = set()
        for term in rule.head.terms:
            if isinstance(term, Var):
                head_vars.add(term)
            elif isinstance(term, RandomTerm):
                head_vars.update(p for p in term.params
                                 if isinstance(p, Var))
        for variable in sorted(occurrences, key=lambda v: v.name):
            if occurrences[variable] == 1 \
                    and variable not in head_vars:
                yield Diagnostic(
                    "unused-variable", WARNING,
                    f"variable {variable.name!r} occurs exactly once "
                    "in the body: it joins and filters nothing",
                    rule_index=index, subject=variable.name,
                    fix_hint="use it in the head, join it, or accept "
                             "it as an intentional wildcard")


def _canonical_rule(rule: Rule) -> tuple:
    """An alpha-invariant rendering: variables by first occurrence."""
    names: dict[Var, str] = {}

    def render(term):
        if isinstance(term, Var):
            if term not in names:
                names[term] = f"v{len(names)}"
            return ("var", names[term])
        if isinstance(term, Const):
            return ("const", repr(term.value))
        if isinstance(term, RandomTerm):
            return ("random", term.distribution.name,
                    tuple(render(p) for p in term.params))
        return ("term", repr(term))

    head = (rule.head.relation,
            tuple(render(t) for t in rule.head.terms))
    body = tuple(sorted(
        (atom.relation, tuple(render(t) for t in atom.terms))
        for atom in rule.body))
    return (head, body)


def check_duplicate_rules(program: Program) -> Iterable[Diagnostic]:
    """Alpha-equivalent duplicates, and body-superset subsumption.

    Duplicates compare canonical (variable-renamed) forms, so
    ``R(x) :- E(x).`` and ``R(y) :- E(y).`` are flagged.  Subsumption
    is the syntactic special case only: identical head and a body that
    is a strict superset of an earlier rule's (under the original
    variable names) - the earlier rule already derives everything the
    later one can.
    """
    seen: dict[tuple, int] = {}
    literal: list[tuple[int, Rule, frozenset]] = []
    for index, rule in enumerate(program.rules):
        canonical = _canonical_rule(rule)
        earlier = seen.get(canonical)
        if earlier is not None:
            yield Diagnostic(
                "duplicate-rule", WARNING,
                f"rule is alpha-equivalent to rule {earlier}",
                rule_index=index, subject=rule.head.relation,
                fix_hint="remove the duplicate (it never adds a "
                         "fact; under random heads it *doubles* "
                         "the draws)")
            continue
        seen[canonical] = index
        body = frozenset((atom.relation, tuple(atom.terms))
                         for atom in rule.body)
        for other_index, other, other_body in literal:
            if other.head == rule.head and other_body < body:
                yield Diagnostic(
                    "subsumed-rule", INFO,
                    f"body strictly extends rule {other_index} with "
                    "the same head: every firing is already covered",
                    rule_index=index, subject=rule.head.relation,
                    fix_hint="drop the broader rule or differentiate "
                             "the heads")
                break
        literal.append((index, rule, body))


def check_duplicate_body_atoms(program: Program,
                               ) -> Iterable[Diagnostic]:
    """The same atom listed twice in one body."""
    for index, rule in enumerate(program.rules):
        seen: set = set()
        for atom in rule.body:
            key = (atom.relation, tuple(atom.terms))
            if key in seen:
                yield Diagnostic(
                    "duplicate-body-atom", INFO,
                    f"atom {atom!r} is repeated in the body",
                    rule_index=index, subject=atom.relation,
                    fix_hint="drop the repeated atom")
                break
            seen.add(key)
