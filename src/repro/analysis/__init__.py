"""Static program analysis: lint, capability prediction, verification.

The paper's semantics is only well-defined on syntactically delimited
program classes (weak acyclicity for termination, parameter domains Θ
for the distribution families), and every fast path the engines built
is likewise gated by structural properties of the translated program.
This package decides all of it *statically*, before a single world is
sampled:

* :mod:`~repro.analysis.lint` - ten structural checks producing
  :class:`~repro.analysis.diagnostics.Diagnostic` findings (unused
  variables, unreachable rules, invalid parameters, weak-acyclicity
  violations with explicit witness cycles, ...);
* :mod:`~repro.analysis.capabilities` - a
  :class:`~repro.analysis.capabilities.CapabilityReport` predicting,
  per program and per rule with blocking reasons, eligibility for the
  batched backend, pooled draws, Bárány companion batching, streaming
  observation safety, guided-conditioning reachability and columnar
  query lifting;
* :mod:`~repro.analysis.report` - the combined
  :class:`~repro.analysis.report.DeepReport` behind
  ``Session.analyze(deep=True)``, ``repro lint`` and the serving
  pre-flight hook.

The predictions are differentially verified against the engines by
the ``static-dynamic`` fuzz oracle in the default battery
(:mod:`repro.testing.oracles`): predicted batch-eligible programs
must not decline to scalar, predicted-stable relations must never
grow in any sampled world, predicted streaming-safe observations must
not raise ``StreamingUnsupported``, and lint-clean programs must
compile and chase without a program error.

Quickstart::

    import repro
    compiled = repro.compile("Earthquake(c, Flip<r>) :- City(c, r).")
    report = compiled.analyze(deep=True)
    assert report.capabilities.batched.eligible
    print(report.summary())
"""

from repro.analysis.capabilities import (Capability, CapabilityReport,
                                         RuleCapability,
                                         capability_report,
                                         collect_companions,
                                         collect_growable)
from repro.analysis.diagnostics import (ERROR, INFO, SEVERITIES,
                                        WARNING, Diagnostic,
                                        LintReport, severity_rank)
from repro.analysis.lint import (FATAL_CODES, fatal_diagnostics,
                                 lint_program)
from repro.analysis.report import DeepReport, deep_analyze

__all__ = [
    "Capability", "CapabilityReport", "DeepReport", "Diagnostic",
    "ERROR", "FATAL_CODES", "INFO", "LintReport", "RuleCapability",
    "SEVERITIES", "WARNING", "capability_report",
    "collect_companions", "collect_growable", "deep_analyze",
    "fatal_diagnostics", "lint_program", "severity_rank",
]
