"""Streaming evidence: incremental posteriors over a sampled batch.

``session.observe(...).posterior()`` restarts inference from scratch on
every call - O(program) per observation.  A
:class:`StreamingPosterior` instead samples the columnar prior ensemble
*once* (:class:`repro.engine.batched.ColumnarMonteCarloPDB`) and then
updates it in place per evidence item, O(evidence):

* a sample-level :class:`~repro.core.observe.Observation` multiplies a
  per-world log-weight vector by the observation density - one numpy
  op over the batch's sample columns - and *forces* the observed value
  into the matching columns, exactly what a likelihood-weighted chase
  would have emitted (the batched counterpart of
  :func:`repro.core.observe._fire_observed`);
* an instance event (:class:`~repro.pdb.events.Event`, predicate, or a
  single :class:`~repro.pdb.facts.Fact`) becomes a boolean world mask
  (rejection-style conditioning on the already-sampled ensemble);
* :meth:`~StreamingPosterior.retract` undoes either kind exactly -
  evidence records carry their weight delta and the pre-forcing column
  arrays - and ``max_window`` turns the stream into a sliding window
  by auto-retracting the oldest evidence.

Exactness is policed, not assumed: when forcing an observed value into
the pre-sampled worlds would change their cascade (the value would
have enabled rule firings the worlds never ran),
:class:`~repro.errors.StreamingUnsupported` is raised and the caller
falls back to the one-shot weighted chase.  While no resampling
triggers, streamed marginals are *identical* to
``posterior(method="likelihood")`` with the same seed.

Weight degeneracy is handled particle-filter style: the effective
sample size ``(Σw)²/Σw²`` is tracked per update, and when it drops
below ``resample_threshold x live worlds`` the stream resamples
systematically - worlds are kept columnar and receive integer
replication *counts*, drawn from a dedicated
:class:`~numpy.random.SeedSequence` child stream so resampled output
is reproducible and independent of the per-world sampling streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.api.config import ChaseConfig
from repro.api.results import InferenceResult
from repro.core.observe import Observation, _observation_index
from repro.core.policies import DEFAULT_POLICY
from repro.errors import (MeasureError, StreamingUnsupported,
                          ValidationError)
from repro.pdb.events import Event
from repro.pdb.facts import Fact
from repro.pdb.weighted import WeightedColumnarPDB

#: Evidence accepted by :meth:`StreamingPosterior.observe`.
StreamEvidence = Observation | Fact | Event | Callable


@dataclass
class _EvidenceRecord:
    """One applied evidence item, with everything needed to undo it."""

    token: int
    kind: str                       # "observation" | "mask"
    description: str
    stamp: int                      # self._resamples at application
    retracted: bool = False
    # observation bookkeeping
    key: tuple | None = None        # (relation, carried)
    log_delta: np.ndarray | None = None
    saved_columns: list = field(default_factory=list)
    # mask bookkeeping
    predicate: Callable | None = None
    mask: np.ndarray | None = None


class StreamingPosterior:
    """A sampled prior ensemble that conditions incrementally.

    Construct through :meth:`repro.api.Session.stream`.  The prior is
    sampled once through the batched backend (the stream *requires*
    it: per-world weights index the batch's columnar sample arrays);
    every :meth:`observe` then costs one numpy pass over the touched
    columns, never a chase.
    """

    def __init__(self, session, cfg: ChaseConfig, n: int,
                 max_window: int | None = None):
        if n <= 0:
            raise ValidationError(f"need n >= 1 worlds, got {n}")
        if cfg.streams != "spawn":
            raise ValidationError(
                "streaming requires streams='spawn'; the 'shared' "
                "scheme is inherently sequential")
        if isinstance(cfg.seed, np.random.Generator):
            raise ValidationError(
                "streaming requires an int (or None) seed: the "
                "resampling stream is derived from it")
        if max_window is not None and (
                isinstance(max_window, bool)
                or not isinstance(max_window, int) or max_window <= 0):
            raise ValidationError(
                f"max_window must be a positive int or None, got "
                f"{max_window!r}")
        if cfg.policy is not None and not getattr(
                cfg.policy, "batch_safe", False):
            raise StreamingUnsupported(
                "streaming runs on the batched backend; the "
                "configured policy is not batch-safe")
        if not session._batch_eligible(cfg):
            raise StreamingUnsupported(
                "streaming runs on the batched backend, which this "
                "program/config is outside (parallel chase, trace "
                "recording, or no weak-acyclicity certificate)")
        batched = session._batched_chase()
        if batched is None:
            raise StreamingUnsupported(
                "streaming runs on the batched backend, which "
                "declined this program/instance")
        cfg = cfg.replace(shards=None)
        self._session = session
        self._cfg = cfg
        self._translated = session.compiled.translated
        self._visible = session.compiled.visible_relations
        self._n = n
        self._max_window = max_window
        # Fixed entropy for the resampling streams: spawn keys n, n+1,
        # ... are collision-free with the per-world sampling streams
        # (spawn keys 0..n-1 of the same root).
        self._entropy = np.random.SeedSequence(cfg.seed).entropy
        outcome = batched.run_batch(
            n, cfg.base_rng(), lambda: cfg.spawn_rngs(n),
            cfg.policy or DEFAULT_POLICY, cfg.max_steps,
            cfg.batch_min_group)
        if outcome is None:
            raise StreamingUnsupported(
                "the batched backend declined this batch (step "
                "budget too tight); raise max_steps or use "
                "posterior(method='likelihood')")
        self._outcome = outcome
        self._pdb = self._wrap(outcome)
        self._log_weights = np.zeros(n)
        self._counts = np.ones(n)
        self._base_alive = np.ones(n, dtype=bool)
        for index, run in outcome.scalar_runs:
            if not run.terminated:
                self._base_alive[index] = False
        self._alive = self._base_alive.copy()
        self._records: dict[int, _EvidenceRecord] = {}
        self._order: list[int] = []
        self._next_token = 0
        self._resamples = 0
        for item in session.evidence:
            self.observe(item)

    # -- construction helpers ------------------------------------------------

    def _wrap(self, outcome):
        from repro.engine.batched import ColumnarMonteCarloPDB
        return ColumnarMonteCarloPDB(outcome, self._visible,
                                     keep_aux=self._cfg.keep_aux)

    # -- state ---------------------------------------------------------------

    @property
    def n_worlds(self) -> int:
        """Batch size (world slots, dead ones included)."""
        return self._n

    @property
    def n_alive(self) -> int:
        """Worlds (counting resample replication) carrying any mass."""
        return int(self._counts[self._alive].sum())

    @property
    def n_evidence(self) -> int:
        """Currently active (non-retracted) evidence items."""
        return sum(1 for token in self._order
                   if not self._records[token].retracted)

    @property
    def resamples(self) -> int:
        return self._resamples

    @property
    def weights(self) -> np.ndarray:
        """Per-world-slot importance weights (dead slots zero)."""
        return np.where(self._alive,
                        self._counts * np.exp(self._log_weights), 0.0)

    def effective_sample_size(self) -> float:
        """``(Σw)² / Σw²`` of the current weights."""
        w = self.weights
        squared = float((w * w).sum())
        if squared <= 0.0:
            return 0.0
        total = float(w.sum())
        return total * total / squared

    # -- evidence ------------------------------------------------------------

    def observe(self, evidence: StreamEvidence) -> int:
        """Apply one evidence item in place; returns a retraction token.

        :class:`Observation` evidence reweights (and forces) the
        matching sample columns; a :class:`Fact`, :class:`Event` or
        predicate masks out the worlds violating it.  Raises
        :class:`StreamingUnsupported` when the update cannot be exact
        (see the module docstring) - the stream is left untouched.
        """
        if isinstance(evidence, Observation):
            record = self._observe_observation(evidence)
        elif isinstance(evidence, Fact):
            record = self._observe_mask(
                evidence, lambda pdb: pdb.fact_mask(evidence))
        elif isinstance(evidence, Event) or callable(evidence):
            test = evidence.contains if isinstance(evidence, Event) \
                else evidence
            record = self._observe_mask(
                evidence, lambda pdb: np.fromiter(
                    (world is not None and bool(test(world))
                     for world in pdb.world_slots()),
                    dtype=bool, count=self._n))
        else:
            raise ValidationError(
                f"not evidence: {evidence!r} (expected an Observation, "
                "a Fact, an Event, or a predicate on instances)")
        self._records[record.token] = record
        self._order.append(record.token)
        self._enforce_window()
        self._maybe_resample()
        return record.token

    def _observe_observation(self, obs: Observation) -> _EvidenceRecord:
        from repro.engine.batched import observation_effects
        key = (obs.relation, obs.carried)
        for token in self._order:
            record = self._records[token]
            if not record.retracted and record.key == key:
                raise ValidationError(
                    f"{obs.relation}{obs.carried!r} is already "
                    "observed (token "
                    f"{record.token}); retract it first")
        index = _observation_index(self._translated, [obs])
        effects = []
        for (aux_relation, carried), value in index.items():
            effects.extend(observation_effects(
                self._outcome, self._translated, aux_relation,
                carried, value))
        delta = np.zeros(self._n)
        saved: list[tuple[int, int, np.ndarray]] = []
        for effect in effects:
            members = \
                self._outcome.groups[effect.group_index].members
            delta[members] += effect.log_density
            if effect.force:
                group = self._outcome.groups[effect.group_index]
                saved.append((effect.group_index, effect.column_index,
                              group.columns[effect.column_index][1]))
        if saved:
            self._force_columns(saved, obs.value)
        self._log_weights += delta
        token = self._next_token
        self._next_token += 1
        return _EvidenceRecord(
            token, "observation",
            f"observe {obs.relation}{obs.carried!r} = {obs.value!r}",
            self._resamples, key=key, log_delta=delta,
            saved_columns=saved)

    def _observe_mask(self, evidence,
                      compute: Callable) -> _EvidenceRecord:
        mask = np.asarray(compute(self._pdb), dtype=bool)
        token = self._next_token
        self._next_token += 1
        record = _EvidenceRecord(token, "mask", f"event {evidence!r}",
                                 self._resamples, predicate=compute,
                                 mask=mask)
        self._alive &= mask
        return record

    def retract(self, token: int) -> None:
        """Exactly undo the evidence item behind ``token``."""
        record = self._records.get(token)
        if record is None:
            raise ValidationError(
                f"unknown evidence token {token!r}; it was never "
                "observed on this stream")
        if record.retracted:
            raise ValidationError(
                f"evidence token {token} is already retracted")
        if record.stamp != self._resamples:
            raise ValidationError(
                f"evidence token {token} predates a resampling step; "
                "resampling collapses the weights it contributed to, "
                "so it can no longer be removed exactly")
        record.retracted = True
        if record.kind == "observation":
            self._log_weights -= record.log_delta
            if record.saved_columns:
                self._restore_columns(record.saved_columns)
        else:
            self._recompute_alive()

    def _enforce_window(self) -> None:
        if self._max_window is None:
            return
        while self.n_evidence > self._max_window:
            for token in self._order:
                if not self._records[token].retracted:
                    self.retract(token)
                    break

    # -- outcome mutation ----------------------------------------------------

    def _force_columns(self, saved, value) -> None:
        """Overwrite the listed sample columns with the observed value.

        Rebuilds the (frozen) outcome with structure sharing: only the
        forced groups get new column tuples, and only the forced
        columns get new arrays - snapshots taken by earlier callers
        keep the originals.
        """
        by_group: dict[int, dict[int, np.ndarray]] = {}
        for group_index, column_index, old_values in saved:
            forced = np.full(len(old_values), value)
            by_group.setdefault(group_index, {})[column_index] = forced
        self._replace_columns(by_group)

    def _restore_columns(self, saved) -> None:
        by_group: dict[int, dict[int, np.ndarray]] = {}
        for group_index, column_index, old_values in saved:
            by_group.setdefault(group_index, {})[column_index] = \
                old_values
        self._replace_columns(by_group)

    def _replace_columns(self, by_group: dict) -> None:
        from repro.engine.batched import BatchOutcome, _ColumnarGroup
        groups = list(self._outcome.groups)
        for group_index, replacements in by_group.items():
            group = groups[group_index]
            columns = tuple(
                (firing, replacements.get(column_index, values))
                for column_index, (firing, values)
                in enumerate(group.columns))
            groups[group_index] = _ColumnarGroup(
                group.members, group.shared, columns)
        self._outcome = BatchOutcome(
            self._outcome.size, tuple(groups),
            self._outcome.scalar_runs, self._outcome.diagnostics,
            base=self._outcome.base, growable=self._outcome.growable)
        self._pdb = self._wrap(self._outcome)
        self._refresh_masks()

    def _refresh_masks(self) -> None:
        """Re-evaluate active event masks against the mutated worlds."""
        for token in self._order:
            record = self._records[token]
            if record.kind == "mask" and not record.retracted:
                record.mask = np.asarray(record.predicate(self._pdb),
                                         dtype=bool)
        self._recompute_alive()

    def _recompute_alive(self) -> None:
        alive = self._base_alive.copy()
        for token in self._order:
            record = self._records[token]
            if record.kind == "mask" and not record.retracted:
                alive &= record.mask
        self._alive = alive

    # -- resampling ----------------------------------------------------------

    def _maybe_resample(self) -> None:
        threshold = self._cfg.resample_threshold
        if threshold <= 0.0:
            return
        n_alive = self.n_alive
        if n_alive == 0:
            return
        if self.effective_sample_size() < threshold * n_alive:
            self.resample()

    def resample(self) -> None:
        """Systematic resampling: collapse weights into world counts.

        Worlds stay columnar; each live slot receives an integer
        replication count drawn by the low-variance systematic scheme
        over the normalized weights.  Weights reset to one; evidence
        applied before the resample can no longer be retracted (its
        contribution is baked into the counts).  The resampling
        generator is the ``spawn_key=(n + resamples,)`` child of the
        stream's seed, so results are reproducible and never collide
        with the per-world sampling streams.
        """
        w = self.weights
        total = float(w.sum())
        if total <= 0.0:
            raise MeasureError(
                "all importance weights are zero - the evidence has "
                "zero likelihood under the program; nothing to "
                "resample")
        size = self.n_alive
        rng = np.random.default_rng(np.random.SeedSequence(
            self._entropy,
            spawn_key=(self._n + self._resamples,)))
        positions = (rng.random() + np.arange(size)) / size
        bounds = np.cumsum(w / total)
        bounds[-1] = 1.0  # guard the float tail
        counts = np.bincount(np.searchsorted(bounds, positions,
                                             side="right"),
                             minlength=self._n).astype(float)
        self._counts = counts
        self._log_weights = np.zeros(self._n)
        self._resamples += 1

    # -- queries -------------------------------------------------------------

    def posterior(self) -> InferenceResult:
        """The current posterior as a standard result object.

        The wrapped :class:`~repro.pdb.weighted.WeightedColumnarPDB`
        answers ``marginal`` / ``fact_marginals`` straight off the
        (possibly forced) sample columns.  Raises
        :class:`~repro.errors.MeasureError` when every world carries
        zero weight - the streamed evidence has zero likelihood.
        """
        start = time.perf_counter()
        pdb = WeightedColumnarPDB(self._pdb, self.weights)
        elapsed = time.perf_counter() - start
        return InferenceResult(
            pdb, "stream", elapsed, n_runs=self._n,
            n_truncated=int((~self._base_alive).sum()),
            diagnostics={
                "backend": "stream",
                "effective_sample_size": pdb.effective_sample_size(),
                "n_alive": self.n_alive,
                "n_evidence": self.n_evidence,
                "resamples": self._resamples,
            })

    def marginal(self, fact: Fact) -> float:
        """Posterior marginal of one fact under the current evidence."""
        w = self.weights
        total = float(w.sum())
        if total <= 0.0:
            raise MeasureError(
                "all importance weights are zero - the evidence has "
                "zero likelihood under the program")
        return self._pdb.weighted_count(fact, w) / total

    def __repr__(self) -> str:
        return (f"StreamingPosterior(<{self._n} worlds, "
                f"{self.n_evidence} evidence, ESS "
                f"{self.effective_sample_size():.1f}>)")
