"""The frozen chase configuration shared by every facade entry point.

Historically each top-level function re-threaded the same six keyword
arguments (``policy``, ``rng``, ``engine``, ``max_steps``,
``semantics``, ``parallel``).  :class:`ChaseConfig` replaces that
scatter with one validated, immutable value object that a
:class:`repro.api.Session` carries through every inference call.

Randomness is configured by ``seed`` plus the ``streams`` scheme:

* ``"spawn"`` (default) - per-run child streams derived via
  :class:`numpy.random.SeedSequence`.  Runs are statistically
  independent *and* order-independent, which is what allows
  ``Session.sample(n, workers=k)`` to parallelize reproducibly.
* ``"shared"`` - one sequential generator shared by all runs, the
  historical scheme.  The legacy shims and the CLI use it so that
  seeded outputs stay bit-identical with earlier releases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.chase import DEFAULT_MAX_STEPS
from repro.core.exact import (DEFAULT_MAX_DEPTH,
                              DEFAULT_SUPPORT_TOLERANCE)
from repro.core.policies import ChasePolicy
from repro.errors import ValidationError

#: Applicability engines accepted by :func:`repro.core.chase.make_engine`.
ENGINES = ("incremental", "naive")
#: RNG stream schemes (see the module docstring).
STREAMS = ("spawn", "shared")
#: Sampling backends accepted by :meth:`repro.api.Session.sample`:
#: ``"scalar"`` replays the sequential chase per run (bit-identical to
#: historical seeded output), ``"batched"`` vectorizes the batch via
#: :mod:`repro.engine.batched` (same law, different draws; falls back
#: to scalar outside its supported class), ``"auto"`` picks batched
#: whenever it is eligible and the caller has not asked for anything
#: the batch cannot honour (shared streams, worker threads, traces).
#:
#: Eligibility under ``"auto"`` is per *program/config*, not per
#: trigger structure: since the multi-round batch loop, cascading
#: programs (sampled values enabling further rules, e.g. Example 3.4's
#: Trig/Alarm stage) stay on the batched backend too - trigger-hit
#: worlds are regrouped by their enabled-trigger signature and the next
#: existential layer runs vectorized per group, with only residual
#: singleton groups (and budget-starved or structurally unsupported
#: ones) finishing on the scalar engine.  Both translations are
#: batchable: the per-rule (grohe) one, and - since the shared
#: ``Sample#`` companion fan-out is vectorized - the Bárány one of
#: Section 6.2.  The remaining hard requirements: weak acyclicity of
#: the translated program, ``"spawn"`` streams, sequential chase, no
#: trace recording, no worker threads, and a batch-safe policy.
BACKENDS = ("auto", "scalar", "batched")


@dataclass(frozen=True)
class ChaseConfig:
    """Immutable bundle of every knob the chase pipeline exposes.

    ``policy`` - measurable selection for the sequential chase
    (None = canonical first-firing policy);
    ``engine`` - applicability maintenance strategy;
    ``parallel`` - parallel chase (Section 5) instead of sequential;
    ``max_steps`` - per-run step budget for sampling;
    ``max_depth`` / ``tolerance`` - exact-enumeration budgets;
    ``keep_aux`` - keep translation auxiliaries in outputs
    (Remark 4.9);
    ``record_trace`` - attach the firing trace to single runs;
    ``seed`` - int seed, numpy Generator, or None (fresh entropy);
    ``streams`` - per-run ``"spawn"`` streams or the legacy
    ``"shared"`` sequential stream;
    ``backend`` - Monte-Carlo sampling backend (``"auto"``,
    ``"scalar"``, ``"batched"``; see :data:`BACKENDS`);
    ``batch_min_group`` - smallest world group the batched backend
    keeps vectorized across cascade rounds.  Groups below the
    threshold finish on the scalar engine instead of paying the
    vectorization overhead; the default (2) sends exactly the
    residual singleton groups scalar.  ``1`` vectorizes everything
    (useful for exercising the multi-round machinery), larger values
    trade batch coverage for fewer tiny ``sample_batch`` calls.  The
    sampled law is identical at every setting.

    ``shards`` - split sampled batches across a process pool
    (:mod:`repro.serving`).  ``None`` (default) and ``1`` keep the
    existing single-process paths untouched; ``k >= 2`` partitions
    the batch into ``k`` shards with per-world
    :class:`~numpy.random.SeedSequence` child streams, so output is
    law-exact and *invariant to the shard count* (requires the
    ``"spawn"`` stream scheme and an int-or-None seed).

    ``resample_threshold`` - streaming-posterior resampling policy
    (:meth:`repro.api.Session.stream`).  After each ``observe`` the
    stream resamples its worlds systematically when the effective
    sample size drops below ``threshold x live worlds``.  ``0.0``
    (default) never resamples - streamed marginals then equal one-shot
    likelihood weighting *exactly*; ``1.0`` resamples after every
    weighted observation (particle-filter style).
    """

    policy: ChasePolicy | None = None
    engine: str = "incremental"
    parallel: bool = False
    max_steps: int = DEFAULT_MAX_STEPS
    max_depth: int = DEFAULT_MAX_DEPTH
    tolerance: float = DEFAULT_SUPPORT_TOLERANCE
    keep_aux: bool = False
    record_trace: bool = False
    seed: int | np.random.Generator | None = None
    streams: str = "spawn"
    backend: str = "auto"
    batch_min_group: int = 2
    shards: int | None = None
    resample_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.policy is not None and \
                not isinstance(self.policy, ChasePolicy):
            raise ValidationError(
                f"policy must be a ChasePolicy, got {self.policy!r}")
        if self.engine not in ENGINES:
            raise ValidationError(
                f"unknown applicability engine {self.engine!r}; "
                f"use one of {ENGINES}")
        if self.streams not in STREAMS:
            raise ValidationError(
                f"unknown stream scheme {self.streams!r}; "
                f"use one of {STREAMS}")
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"unknown sampling backend {self.backend!r}; "
                f"use one of {BACKENDS}")
        if not isinstance(self.max_steps, int) or self.max_steps <= 0:
            raise ValidationError(
                f"max_steps must be a positive int, got "
                f"{self.max_steps!r}")
        if not isinstance(self.max_depth, int) or self.max_depth <= 0:
            raise ValidationError(
                f"max_depth must be a positive int, got "
                f"{self.max_depth!r}")
        if not (isinstance(self.tolerance, (int, float))
                and self.tolerance >= 0.0):
            raise ValidationError(
                f"tolerance must be >= 0, got {self.tolerance!r}")
        if isinstance(self.batch_min_group, bool) \
                or not isinstance(self.batch_min_group,
                                  (int, np.integer)) \
                or self.batch_min_group <= 0:
            raise ValidationError(
                f"batch_min_group must be a positive int, got "
                f"{self.batch_min_group!r}")
        if self.shards is not None and (
                isinstance(self.shards, bool)
                or not isinstance(self.shards, (int, np.integer))
                or self.shards <= 0):
            raise ValidationError(
                f"shards must be a positive int or None, got "
                f"{self.shards!r}")
        if isinstance(self.resample_threshold, bool) \
                or not isinstance(self.resample_threshold,
                                  (int, float)) \
                or not 0.0 <= self.resample_threshold <= 1.0:
            raise ValidationError(
                f"resample_threshold must lie in [0, 1], got "
                f"{self.resample_threshold!r}")
        if self.seed is not None and not isinstance(
                self.seed, (int, np.integer, np.random.Generator)):
            raise ValidationError(
                f"seed must be an int, numpy Generator or None, got "
                f"{self.seed!r}")

    def replace(self, **overrides) -> "ChaseConfig":
        """A copy with the given fields replaced (and re-validated).

        Unknown field names raise :class:`ValidationError` - silently
        ignored typos would otherwise produce prior-config runs.
        """
        known = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValidationError(
                f"unknown ChaseConfig field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}")
        if not overrides:
            return self
        return dataclasses.replace(self, **overrides)

    # -- randomness ---------------------------------------------------------

    def base_rng(self) -> np.random.Generator:
        """The single sequential generator (``streams="shared"``)."""
        if isinstance(self.seed, np.random.Generator):
            return self.seed
        return np.random.default_rng(self.seed)

    def spawn_rngs(self, n: int) -> list[np.random.Generator]:
        """Per-run generators for an ``n``-run batch.

        Under ``"shared"`` the same generator is handed to every run
        (the batch consumes it sequentially, matching the legacy
        draw-for-draw).  Under ``"spawn"`` each run gets an
        independent :class:`~numpy.random.SeedSequence` child stream;
        with a Generator seed the children advance its spawn state, so
        consecutive batches differ (as they would sharing a stream).
        """
        if self.streams == "shared":
            rng = self.base_rng()
            return [rng] * n
        if isinstance(self.seed, np.random.Generator):
            return list(self.seed.spawn(n))    # numpy >= 1.25
        root = np.random.SeedSequence(self.seed)
        return [np.random.default_rng(child) for child in root.spawn(n)]


#: The all-defaults configuration used when callers specify nothing.
DEFAULT_CONFIG = ChaseConfig()
