"""repro.api: the compile-once / infer-many facade.

The primary public API of the reproduction:

* :func:`compile` - program text / :class:`~repro.core.program.Program`
  -> :class:`CompiledProgram` (translation, normalization,
  visible-relation set and termination report cached, computed at most
  once);
* :meth:`CompiledProgram.on` -> :class:`Session` - fluent inference
  (``sample``, ``exact``, ``observe(...).posterior``, ``marginal``,
  ``analyze``, ``mass_report``) over one input instance;
* :class:`ChaseConfig` - the single frozen configuration object
  replacing the historical scatter of keyword arguments;
* :class:`InferenceResult` - the unified return type carrying the
  produced PDB, err mass, run counts and timing diagnostics;
* :class:`QueryResult` - a relational plan bound to a produced PDB
  (``Session.query(...)`` / ``InferenceResult.query(...)``), compiled
  to numpy over columnar ensembles.

See :mod:`repro.api.session` for the full tour.
"""

from repro.api.config import DEFAULT_CONFIG, ChaseConfig
from repro.api.results import InferenceResult, QueryResult
from repro.api.session import (CompiledProgram, Session, compile,
                               compiled_for)
from repro.api.stream import StreamingPosterior

__all__ = [
    "ChaseConfig", "CompiledProgram", "DEFAULT_CONFIG",
    "InferenceResult", "QueryResult", "Session", "StreamingPosterior",
    "compile", "compiled_for",
]
