"""Compile once, infer many: the primary public API.

The paper's pipeline (parse -> translate to existential Datalog ->
chase -> output SPDB, Sections 3-4) used to be exposed as a flat bag of
top-level functions, every one of which re-translated the program and
re-threaded the same keyword arguments.  This module replaces that with
a two-stage facade:

* :func:`compile` turns a program (text or :class:`Program`) into a
  :class:`CompiledProgram` that caches the translation, normalization,
  visible-relation set and termination report - computed at most once;
* :meth:`CompiledProgram.on` binds an input instance and a frozen
  :class:`~repro.api.config.ChaseConfig`, yielding a :class:`Session`
  whose fluent verbs (``sample``, ``exact``, ``observe(...).posterior``,
  ``marginal``, ``analyze``) all return a unified
  :class:`~repro.api.results.InferenceResult`.

Batched sampling through a Session strictly dominates ``n`` calls
through the legacy path: the translation and the applicability
bootstrap happen exactly once, each run starting from a cheap engine
``fork()``, and per-run RNG streams are spawned via
:class:`numpy.random.SeedSequence` so runs can execute on worker
threads without losing reproducibility.

>>> import repro
>>> compiled = repro.compile("Earthquake(c, Flip<0.1>) :- City(c, r).")
>>> data = repro.Instance.of(repro.Fact("City", ("Napa", 0.03)))
>>> result = compiled.on(data).exact()
>>> round(result.marginal(repro.Fact("Earthquake", ("Napa", 1))), 3)
0.1
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Sequence

import numpy as np

from repro.api.config import DEFAULT_CONFIG, ChaseConfig
from repro.api.results import InferenceResult
from repro.core.applicability import (IncrementalApplicability,
                                      overlay_fork)
from repro.core.chase import (ChaseRun, make_engine,
                              run_chase_prepared)
from repro.core.constraints import (ConstraintLike, _as_predicate,
                                    _conjunction)
from repro.core.exact import (exact_parallel_spdb,
                              exact_sequential_spdb)
from repro.core.observe import (Observation, _observation_index,
                                _weighted_chase)
from repro.core.parallel import run_parallel_chase_prepared
from repro.core.policies import DEFAULT_POLICY
from repro.core.program import Program
from repro.core.semantics import MassReport
from repro.core.termination import (TerminationReport,
                                    analyze_termination)
from repro.core.translate import ExistentialProgram
from repro.errors import DistributionError, MeasureError, ValidationError
from repro.pdb.database import (DiscretePDB, MonteCarloPDB,
                                mixture_pdb)
from repro.pdb.events import Event
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedColumnarPDB, WeightedPDB

#: ``posterior(method="auto")`` stays with plain rejection when a pilot
#: run accepts at least this often; below it, escalate to guided.
_AUTO_ACCEPTANCE_THRESHOLD = 0.1

SEMANTICS = ("grohe", "barany")

#: Evidence accepted by :meth:`Session.observe`.
Evidence = Observation | ConstraintLike


def compile(program: str | Program | ExistentialProgram,
            *,
            semantics: str | None = None,
            registry=None,
            schema=None,
            extensional=None) -> "CompiledProgram":
    """Compile a GDatalog program for repeated inference.

    ``program`` may be surface text, a parsed :class:`Program`, or an
    already-translated :class:`ExistentialProgram`.  ``semantics``
    defaults to ``"grohe"`` for text/Program input; for a translated
    program it defaults to the program's own recorded semantics, and
    passing a different value explicitly is an error.  ``registry`` /
    ``schema`` / ``extensional`` are parse-time options and therefore
    only valid with program text.

    >>> compiled = compile("R(Flip<0.5>) :- true.")
    >>> compiled.on().exact().pdb.support_size()
    2
    """
    if not isinstance(program, str) and (
            registry is not None or schema is not None
            or extensional is not None):
        raise ValidationError(
            "registry/schema/extensional are parse-time options; "
            "pass them to Program.parse or compile program text")
    if isinstance(program, ExistentialProgram):
        if semantics is not None and semantics != program.semantics:
            raise ValidationError(
                f"program was translated under {program.semantics!r} "
                f"semantics; cannot recompile it as {semantics!r}")
        compiled = CompiledProgram(program.source, program.semantics)
        compiled._translated = program
        return compiled
    if isinstance(program, str):
        program = Program.parse(program, registry=registry,
                                schema=schema, extensional=extensional)
    elif not isinstance(program, Program):
        raise ValidationError(
            f"cannot compile {type(program).__name__}; expected "
            "program text, a Program, or an ExistentialProgram")
    return CompiledProgram(program, semantics or "grohe")


def compiled_for(program: str | Program | ExistentialProgram,
                 semantics: str = "grohe") -> "CompiledProgram":
    """Compile with the legacy semantics-argument convention.

    The historical entry points ignored their ``semantics`` keyword
    when handed an already-translated program; the shims delegate
    through this helper to preserve that behaviour exactly.
    """
    if isinstance(program, ExistentialProgram):
        return compile(program, semantics=program.semantics)
    return compile(program, semantics=semantics)


class CompiledProgram:
    """A program plus every artifact worth computing exactly once.

    Caches (lazily, each at most once): the existential-Datalog
    translation ``Ĝ`` - including normalization to single-random-term
    form - the visible-relation set, and the static termination report.
    Thousands of chases through :meth:`on`/:class:`Session` then share
    them, instead of re-deriving them per call like the legacy
    functions did.
    """

    def __init__(self, program: Program, semantics: str = "grohe"):
        if semantics not in SEMANTICS:
            raise ValidationError(
                f"unknown semantics {semantics!r}; "
                f"use one of {SEMANTICS}")
        if not isinstance(program, Program):
            raise ValidationError(
                f"CompiledProgram needs a Program, got {program!r}")
        self.program = program
        self.semantics = semantics
        self._translated: ExistentialProgram | None = None
        self._visible: tuple[str, ...] | None = None
        self._report: TerminationReport | None = None
        self._deep_report = None

    # -- cached artifacts ---------------------------------------------------

    @property
    def translated(self) -> ExistentialProgram:
        """The existential translation ``Ĝ`` (computed at most once)."""
        if self._translated is None:
            if self.semantics == "grohe":
                self._translated = self.program.translate()
            else:
                self._translated = self.program.translate_barany()
        return self._translated

    @property
    def visible_relations(self) -> tuple[str, ...]:
        """The original program's relations (auxiliaries excluded)."""
        if self._visible is None:
            self._visible = tuple(self.translated.visible_relations())
        return self._visible

    def is_discrete(self) -> bool:
        """Whether exact chase-tree enumeration is available."""
        return self.translated.is_discrete()

    def analyze(self, deep: bool = False):
        """The static analysis report, cached.

        Plain (default): the termination report of Section 6.3.
        ``deep=True``: the full :class:`~repro.analysis.report.
        DeepReport` - termination plus the lint diagnostics and the
        static capability predictions of :mod:`repro.analysis`
        (which fast paths this program can take, and why it would
        fall back).  Instance-aware lint checks need an instance;
        use :meth:`Session.analyze` for those.
        """
        if self._report is None:
            self._report = analyze_termination(self.translated)
        if not deep:
            return self._report
        if self._deep_report is None:
            from repro.analysis import deep_analyze
            self._deep_report = deep_analyze(
                self.translated, termination=self._report)
        return self._deep_report

    # -- sessions -----------------------------------------------------------

    def on(self, instance: Instance | None = None,
           config: ChaseConfig | None = None,
           **overrides) -> "Session":
        """Bind an input instance (default: empty) and a config.

        Keyword overrides are applied on top of ``config`` (or the
        default config), e.g. ``compiled.on(data, seed=7,
        max_steps=500)``.
        """
        base = config if config is not None else DEFAULT_CONFIG
        if not isinstance(base, ChaseConfig):
            raise ValidationError(
                f"config must be a ChaseConfig, got {base!r}")
        base = base.replace(**overrides)
        root = instance if instance is not None else Instance.empty()
        if not isinstance(root, Instance):
            raise ValidationError(
                f"on(...) needs an Instance, got {root!r}")
        return Session(self, root, base)

    def apply_to_pdb(self, input_pdb: DiscretePDB,
                     config: ChaseConfig | None = None,
                     **overrides) -> InferenceResult:
        """Apply the program to a probabilistic *input* database.

        Theorem 4.8 (second part): the output is the mixture, over
        input worlds with their probabilities, of the per-world output
        SPDBs; input error mass passes through unchanged.
        """
        cfg = (config if config is not None
               else DEFAULT_CONFIG).replace(**overrides)
        start = time.perf_counter()
        components = []
        for world, weight in input_pdb.worlds():
            output = Session(self, world, cfg).exact().pdb
            components.append((weight, output))
        mixed = mixture_pdb(components)
        pdb = DiscretePDB(mixed.measure,
                          mixed.err + input_pdb.err_mass())
        return InferenceResult(pdb, "exact",
                               time.perf_counter() - start)

    def __repr__(self) -> str:
        state = "translated" if self._translated is not None \
            else "pending"
        return (f"CompiledProgram({len(self.program)} rules, "
                f"{self.semantics}, {state})")


class Session:
    """A compiled program bound to an input instance and a config.

    Sessions are cheap, immutable handles: fluent methods
    (:meth:`configure`, :meth:`observe`) return *new* sessions, while
    the expensive artifacts (translation, applicability bootstrap,
    exact SPDBs) live in caches shared through the
    :class:`CompiledProgram` and the session itself.
    """

    def __init__(self, compiled: CompiledProgram, instance: Instance,
                 config: ChaseConfig,
                 evidence: tuple[Evidence, ...] = (),
                 _engines: dict | None = None,
                 _exact_cache: dict | None = None):
        self.compiled = compiled
        self.instance = instance
        self.config = config
        self._evidence = tuple(evidence)
        # Engine bases depend only on (translated, instance, engine
        # kind) and exact results carry their full config as cache key,
        # so derived sessions (configure/observe) share both caches.
        self._engines: dict[str, object] = \
            _engines if _engines is not None else {}
        self._exact_cache: dict[ChaseConfig, InferenceResult] = \
            _exact_cache if _exact_cache is not None else {}

    # -- fluent construction ------------------------------------------------

    def configure(self, **overrides) -> "Session":
        """A new session with config fields replaced."""
        return Session(self.compiled, self.instance,
                       self.config.replace(**overrides),
                       self._evidence, self._engines,
                       self._exact_cache)

    def observe(self, *evidence: Evidence) -> "Session":
        """A new session conditioned on additional evidence.

        Evidence items are either sample-level
        :class:`~repro.core.observe.Observation` values (consumed by
        ``posterior(method="likelihood")``) or instance events /
        predicates (consumed by ``method="rejection"`` /
        ``method="exact"``).
        """
        if not evidence:
            raise ValidationError("observe() needs at least one "
                                  "observation or event")
        for item in evidence:
            if not isinstance(item, (Observation, Event)) \
                    and not callable(item):
                raise ValidationError(
                    f"not evidence: {item!r} (expected an Observation, "
                    "an Event, or a predicate on instances)")
        return Session(self.compiled, self.instance, self.config,
                       self._evidence + tuple(evidence),
                       self._engines, self._exact_cache)

    @property
    def evidence(self) -> tuple[Evidence, ...]:
        return self._evidence

    # -- engine amortization ------------------------------------------------

    def _base_engine(self, engine: str):
        """The (per-engine-kind, cached) base applicability state.

        The base engine bootstraps rule matching against the input
        instance exactly once; every chase run then starts from a
        ``fork()`` - a structure copy that skips re-matching.
        """
        base = self._engines.get(engine)
        if base is None:
            base = make_engine(self.compiled.translated, self.instance,
                               engine)
            self._engines[engine] = base
        return base

    def _fork_engine(self, engine: str):
        """A cheap independent engine for one run.

        Incremental bases hand out copy-on-write overlays - O(delta
        + |App|) instead of re-indexing the whole input instance per
        run.  Safe because sessions never mutate a cached base engine
        (the overlay contract: the parent stays frozen while forks
        live); the overlay's ``applicable()`` order is identical to a
        full fork's, so seeded scalar output is unchanged.
        """
        base = self._base_engine(engine)
        if isinstance(base, IncrementalApplicability):
            return overlay_fork(base)
        return base.fork()

    def _one_run(self, cfg: ChaseConfig,
                 rng: np.random.Generator) -> ChaseRun:
        translated = self.compiled.translated
        state = self._fork_engine(cfg.engine)
        if cfg.parallel:
            return run_parallel_chase_prepared(
                translated, state, self.instance, rng, cfg.max_steps,
                cfg.record_trace)
        return run_chase_prepared(
            translated, state, self.instance,
            cfg.policy or DEFAULT_POLICY, rng, cfg.max_steps,
            cfg.record_trace)

    # -- inference verbs ----------------------------------------------------

    def run(self, rng: np.random.Generator | int | None = None,
            **overrides) -> ChaseRun:
        """One chase run (sequential or parallel per the config)."""
        cfg = self.config.replace(**overrides)
        if rng is not None:
            chase_rng = rng if isinstance(rng, np.random.Generator) \
                else np.random.default_rng(rng)
        else:
            chase_rng = cfg.base_rng()
        return self._one_run(cfg, chase_rng)

    def sample(self, n: int = 1000, workers: int | None = None,
               shards: int | None = None,
               **overrides) -> InferenceResult:
        """Monte-Carlo output SPDB from ``n`` independent chase runs.

        Translation and applicability bootstrap happen exactly once
        for the whole batch.  The runs execute on the backend selected
        by ``cfg.backend`` (pass ``backend="batched"|"scalar"|"auto"``
        as an override): ``"scalar"`` replays the sequential chase per
        run and is bit-identical to historical seeded output, while
        ``"batched"`` advances all runs at once through
        :class:`repro.engine.batched.BatchedChase` - same output law,
        different draws - falling back to the scalar loop outside its
        supported class.  With ``workers > 1`` the scalar runs execute
        on a thread pool; this requires the (default) ``"spawn"``
        stream scheme, under which results are identical to the
        sequential order for the same seed.  ``workers`` is a
        scalar-path knob: ``backend="auto"`` routes ``workers > 1`` to
        the scalar loop, and an explicit ``backend="batched"`` never
        threads (the batch is already vectorized) - though the
        ``workers > 1`` / ``streams="shared"`` combination is rejected
        up front regardless of backend, as invalid configuration.

        ``shards`` (or ``cfg.shards``) ``>= 2`` splits the batch
        across a process pool (:mod:`repro.serving`): per-world
        SeedSequence child streams make the merged output law-exact
        and bit-identical across shard counts.  ``shards=1`` and
        ``None`` take the single-process paths above unchanged.
        ``workers`` and ``shards`` are mutually exclusive - threads
        parallelize the scalar loop, shards parallelize whole
        sub-batches.
        """
        cfg = self.config.replace(**overrides)
        if shards is not None:
            cfg = cfg.replace(shards=shards)
        if n <= 0:
            raise ValidationError(f"need n >= 1 runs, got {n}")
        if workers is not None and workers > 1 \
                and cfg.streams != "spawn":
            raise ValidationError(
                "workers > 1 requires streams='spawn'; the "
                "'shared' scheme is inherently sequential")
        if cfg.shards is not None and cfg.shards > 1:
            if workers is not None and workers > 1:
                raise ValidationError(
                    "workers and shards are mutually exclusive; "
                    "threads parallelize the scalar loop, shards "
                    "parallelize whole sub-batches")
            from repro.serving import sample_sharded
            return sample_sharded(self, n, cfg)
        if self._resolve_backend(cfg, workers) == "batched":
            result = self._sample_batched(cfg, n)
            if result is not None:
                return result
            if cfg.backend == "batched":
                # An explicit batched request never threads - not even
                # when the batched path declines - so the same call
                # yields the same parallelism on every program.
                workers = None
        return self._sample_scalar(cfg, n, workers)

    def _sample_scalar(self, cfg: ChaseConfig, n: int,
                       workers: int | None) -> InferenceResult:
        """The per-run sequential loop (bit-identical seeded output)."""
        visible = self.compiled.visible_relations
        # Bootstrap the base engine before any worker threads fork it.
        self._base_engine(cfg.engine)
        start = time.perf_counter()
        rngs = cfg.spawn_rngs(n)
        if workers is not None and workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                runs = list(pool.map(
                    lambda rng: self._one_run(cfg, rng), rngs))
        else:
            runs = [self._one_run(cfg, rng) for rng in rngs]
        worlds, truncated = self._collect_worlds(cfg, runs, visible)
        elapsed = time.perf_counter() - start
        return InferenceResult(MonteCarloPDB(worlds, truncated),
                               "sample", elapsed, n_runs=n,
                               n_truncated=truncated,
                               diagnostics={"backend": "scalar"})

    # -- batched backend ----------------------------------------------------

    def _resolve_backend(self, cfg: ChaseConfig,
                         workers: int | None = None) -> str:
        """Which sampling backend this call should attempt.

        ``"scalar"`` and ``"batched"`` are honoured as requested (the
        batched path still declines, falling back to scalar, when the
        program is outside its class).  ``"auto"`` only picks batched
        when nothing observable depends on the scalar draw order: no
        worker threads, the default ``"spawn"`` stream scheme (the
        ``"shared"`` scheme exists precisely for legacy bit-identical
        output), and a batch-safe policy.
        """
        if cfg.backend == "scalar":
            return "scalar"
        if cfg.backend == "batched":
            return "batched"
        if workers is not None and workers > 1:
            return "scalar"
        if cfg.streams != "spawn":
            return "scalar"
        if cfg.policy is not None and not getattr(
                cfg.policy, "batch_safe", False):
            return "scalar"
        if not self._batch_eligible(cfg):
            return "scalar"
        return "batched"

    def _batch_eligible(self, cfg: ChaseConfig) -> bool:
        """Whether the batched backend's exactness argument applies.

        Requires no trace recording, the sequential chase, and weak
        acyclicity (of the translated program) - Theorem 6.1's
        order-independence is what makes the batched prefix produce
        exactly the sequential-chase law.  Both translations qualify:
        the per-rule (grohe) one, and - since the companion fan-out of
        shared ``Sample#`` auxiliaries is vectorized - the Bárány one,
        whose existential program the same theorem covers (the
        auxiliary keying differs, the chase calculus does not).
        """
        if cfg.parallel or cfg.record_trace:
            return False
        return self.compiled.analyze().weakly_acyclic

    def _batched_chase(self):
        """The cached per-(program, instance) batch sampler (or None)."""
        from repro.engine.batched import BatchedChase, BatchUnsupported
        cached = self._engines.get("batched")
        if cached is None:
            try:
                cached = BatchedChase(self.compiled.translated,
                                      self.instance)
            except BatchUnsupported:
                cached = False
            self._engines["batched"] = cached
        return cached or None

    def _sample_batched(self, cfg: ChaseConfig,
                        n: int) -> InferenceResult | None:
        """Vectorized sampling; None = declined (caller runs scalar).

        The result wraps a :class:`~repro.engine.batched.
        ColumnarMonteCarloPDB`: worlds that stayed vectorized through
        the multi-round cascade are kept columnar, so ``marginal`` /
        ``fact_marginals`` queries read the sample arrays directly and
        the n ``Instance`` fact-sets are only materialized if a caller
        walks ``result.pdb.worlds``.
        """
        if not self._batch_eligible(cfg):
            return None
        batched = self._batched_chase()
        if batched is None:
            return None
        from repro.engine.batched import ColumnarMonteCarloPDB
        visible = self.compiled.visible_relations
        start = time.perf_counter()
        batch_rng = cfg.base_rng()
        if cfg.streams == "shared":
            def world_rngs():
                return [batch_rng] * n
        else:
            def world_rngs():
                return cfg.spawn_rngs(n)
        outcome = batched.run_batch(n, batch_rng, world_rngs,
                                    cfg.policy or DEFAULT_POLICY,
                                    cfg.max_steps,
                                    cfg.batch_min_group)
        if outcome is None:
            return None
        pdb = ColumnarMonteCarloPDB(outcome, visible,
                                    keep_aux=cfg.keep_aux)
        elapsed = time.perf_counter() - start
        info = outcome.diagnostics
        return InferenceResult(
            pdb, "sample", elapsed,
            n_runs=n, n_truncated=pdb.truncated,
            diagnostics={"backend": "batched",
                         "n_split": info["n_split"],
                         "n_batched": n - info["n_split"],
                         "n_layer_firings": info["n_firings"],
                         "n_rounds": info["n_rounds"],
                         "n_groups": info["n_groups"],
                         "n_draw_calls": info["n_draw_calls"],
                         "n_pooled_draws": info["n_pooled_draws"]})

    @staticmethod
    def _collect_worlds(cfg: ChaseConfig, runs: Sequence[ChaseRun],
                        visible: tuple[str, ...],
                        ) -> tuple[list[Instance], int]:
        worlds: list[Instance] = []
        truncated = 0
        # Identity-memoized restriction: a fully-batched run with no
        # sampling layer hands back the *same* instance object n
        # times, which needs one restriction, not n.
        previous: Instance | None = None
        previous_restricted: Instance | None = None
        for run in runs:
            if not run.terminated:
                truncated += 1
            elif cfg.keep_aux:
                worlds.append(run.instance)
            else:
                if run.instance is not previous:
                    previous = run.instance
                    previous_restricted = run.instance.restrict(visible)
                worlds.append(previous_restricted)
        return worlds, truncated

    def outputs(self, n: int,
                rng: np.random.Generator | int | None = None,
                **overrides) -> Iterator[Instance | None]:
        """Stream ``n`` chase outputs lazily (None = truncated/err)."""
        cfg = self.config.replace(**overrides)
        if rng is not None:
            cfg = cfg.replace(seed=rng if isinstance(
                rng, np.random.Generator)
                else int(rng), streams="shared")
        visible = self.compiled.visible_relations
        for run_rng in cfg.spawn_rngs(n):
            run = self._one_run(cfg, run_rng)
            if not run.terminated:
                yield None
            elif cfg.keep_aux:
                yield run.instance
            else:
                yield run.instance.restrict(visible)

    def exact(self, **overrides) -> InferenceResult:
        """Exact output SPDB by chase-tree enumeration (discrete only).

        Results are cached per effective config, so repeated queries
        (``marginal``, posterior conditioning) re-use the enumeration.
        """
        cfg = self.config.replace(**overrides)
        cached = self._exact_cache.get(cfg)
        if cached is not None:
            return cached
        translated = self.compiled.translated
        start = time.perf_counter()
        if cfg.parallel:
            pdb = exact_parallel_spdb(
                translated, self.instance, max_depth=cfg.max_depth,
                tolerance=cfg.tolerance, keep_aux=cfg.keep_aux)
        else:
            pdb = exact_sequential_spdb(
                translated, self.instance, cfg.policy,
                max_depth=cfg.max_depth, tolerance=cfg.tolerance,
                keep_aux=cfg.keep_aux)
        result = InferenceResult(pdb, "exact",
                                 time.perf_counter() - start)
        self._exact_cache[cfg] = result
        return result

    def marginal(self, fact, n: int | None = None) -> float:
        """Marginal probability of one output fact.

        Uses exact enumeration for discrete programs, Monte-Carlo
        sampling otherwise (``n`` runs, default 1000); with evidence
        attached, the marginal is taken under the posterior (method
        picked to match the evidence kind).
        """
        if self._evidence:
            if all(isinstance(item, Observation)
                   for item in self._evidence):
                method = "likelihood"
            elif self.compiled.is_discrete():
                method = "exact"
            else:
                method = "rejection"
            return self.posterior(method=method,
                                  n=n or 1000).marginal(fact)
        if self.compiled.is_discrete():
            return self.exact().marginal(fact)
        return self.sample(n or 1000).marginal(fact)

    def query(self, query, n: int | None = None):
        """Answer a relational-algebra plan under this session.

        One entry point for every inference mode, following
        :meth:`marginal`'s convention: exact enumeration for discrete
        programs, Monte-Carlo sampling otherwise (``n`` runs, default
        1000); with evidence attached, the plan is answered under the
        posterior (method picked to match the evidence kind).  Returns
        a :class:`~repro.api.results.QueryResult`; over the batched
        backend's columnar ensembles the plan is compiled to numpy
        (:mod:`repro.query.columnar`) instead of materializing worlds.
        """
        if self._evidence:
            if all(isinstance(item, Observation)
                   for item in self._evidence):
                method = "likelihood"
            elif self.compiled.is_discrete():
                method = "exact"
            else:
                method = "rejection"
            return self.posterior(method=method,
                                  n=n or 1000).query(query)
        if self.compiled.is_discrete():
            return self.exact().query(query)
        return self.sample(n or 1000).query(query)

    # -- conditioning -------------------------------------------------------

    def stream(self, n: int = 1000, max_window: int | None = None,
               **overrides):
        """An incrementally-conditionable posterior over ``n`` worlds.

        Samples the prior once through the batched backend and returns
        a :class:`repro.api.stream.StreamingPosterior` whose
        ``observe(evidence)`` updates the posterior in place -
        O(evidence) per step instead of the O(program) of a fresh
        :meth:`posterior` call.  Evidence already attached to this
        session is applied to the stream up front.  ``max_window``
        bounds the number of active evidence items (oldest
        auto-retracted: a sliding window).  Raises
        :class:`~repro.errors.StreamingUnsupported` when the program/
        config is outside the batched backend's class or the evidence
        cannot be applied exactly; fall back to
        ``observe(...).posterior(method="likelihood")`` then.
        """
        from repro.api.stream import StreamingPosterior
        cfg = self.config.replace(**overrides)
        return StreamingPosterior(self, cfg, n, max_window)

    def posterior(self, method: str = "rejection", n: int = 1000,
                  **overrides) -> InferenceResult:
        """Posterior inference given the session's observed evidence.

        ``method="rejection"`` - rejection-sample on instance events
        (positive-probability events only, any program);
        ``method="likelihood"`` - likelihood weighting on sample-level
        :class:`Observation` evidence (sound for continuous,
        measure-zero observations);
        ``method="exact"`` - restrict-and-normalize the exact SPDB on
        instance events (discrete programs);
        ``method="guided"`` - constraint-guided importance sampling:
        propagate the evidence backwards through the deterministic
        fragment to per-draw feasible regions, sample from the
        truncated proposal through the batched backend and reweight
        exactly (any evidence mix; falls back to likelihood/rejection
        with a recorded diagnostic when the program is outside the
        batched class);
        ``method="auto"`` - rejection when a pilot run accepts often
        enough, guided otherwise.
        """
        cfg = self.config.replace(**overrides)
        if not self._evidence:
            raise ValidationError(
                "posterior() without evidence; call "
                ".observe(...) first")
        observations = [item for item in self._evidence
                        if isinstance(item, Observation)]
        constraints = [item for item in self._evidence
                       if not isinstance(item, Observation)]
        if method == "likelihood":
            if constraints:
                raise ValidationError(
                    "likelihood weighting conditions on sample-level "
                    "Observations only; event evidence needs "
                    "method='rejection' or method='exact'")
            return self._posterior_likelihood(cfg, observations, n)
        if method == "guided":
            return self._posterior_guided(cfg, observations,
                                          constraints, n)
        if method == "auto":
            return self._posterior_auto(cfg, observations,
                                        constraints, n)
        if observations:
            raise ValidationError(
                f"method={method!r} conditions on instance events; "
                "Observation evidence needs method='likelihood', "
                "'guided' or 'auto'")
        if method == "rejection":
            return self._posterior_rejection(cfg, constraints, n)
        if method == "exact":
            return self._posterior_exact(cfg, constraints)
        raise ValidationError(
            f"unknown posterior method {method!r}; use 'rejection', "
            "'likelihood', 'exact', 'guided' or 'auto'")

    def _posterior_rejection(self, cfg: ChaseConfig,
                             constraints: Sequence[ConstraintLike],
                             n: int) -> InferenceResult:
        satisfied = _conjunction(constraints)
        visible = self.compiled.visible_relations
        self._base_engine(cfg.engine)
        start = time.perf_counter()
        accepted: list[Instance] = []
        truncated = 0
        for rng in cfg.spawn_rngs(n):
            run = self._one_run(cfg, rng)
            if not run.terminated:
                truncated += 1
                continue
            world = run.instance if cfg.keep_aux \
                else run.instance.restrict(visible)
            if satisfied(world):
                accepted.append(world)
        if not accepted:
            raise MeasureError(
                f"no accepted samples in {n} proposals; the "
                "constraints have (near-)zero probability - "
                "conditioning on measure-zero events is undefined in "
                "this semantics (paper, Section 7)")
        elapsed = time.perf_counter() - start
        terminated = n - truncated
        return InferenceResult(
            MonteCarloPDB(accepted, 0), "rejection", elapsed,
            n_runs=n, n_truncated=truncated,
            diagnostics={
                "n_proposed": n,
                "n_accepted": len(accepted),
                "acceptance_rate": len(accepted) / terminated
                if terminated else 0.0,
            })

    def _posterior_likelihood(self, cfg: ChaseConfig,
                              observations: Sequence[Observation],
                              n: int) -> InferenceResult:
        translated = self.compiled.translated
        index = _observation_index(translated, observations)
        visible = self.compiled.visible_relations
        policy = cfg.policy or DEFAULT_POLICY
        self._base_engine(cfg.engine)
        start = time.perf_counter()
        worlds: list[Instance] = []
        weights: list[float] = []
        truncated = 0
        for rng in cfg.spawn_rngs(n):
            outcome = _weighted_chase(
                translated, self._fork_engine(cfg.engine),
                self.instance, policy, rng, cfg.max_steps, index)
            if outcome is None:
                truncated += 1
                continue
            world, weight = outcome
            worlds.append(world if cfg.keep_aux
                          else world.restrict(visible))
            weights.append(weight)
        if not worlds:
            raise ValidationError(
                "all runs were truncated; increase max_steps")
        posterior = WeightedPDB(worlds, weights)
        elapsed = time.perf_counter() - start
        return InferenceResult(
            posterior, "likelihood", elapsed, n_runs=n,
            n_truncated=truncated,
            diagnostics={
                "mean_weight": sum(weights) / len(weights),
                "effective_sample_size":
                    posterior.effective_sample_size(),
            })

    def _posterior_guided(self, cfg: ChaseConfig,
                          observations: Sequence[Observation],
                          constraints: Sequence[ConstraintLike],
                          n: int) -> InferenceResult:
        """Constraint-guided importance sampling (backward regions).

        Derives per-draw feasible regions by walking the evidence
        backwards through the deterministic fragment
        (:func:`repro.core.backward.backward_plan`), samples the
        batched chase from the region-truncated proposal, and corrects
        with the exact per-draw importance weights the truncated
        samplers report.  Regions are *necessary-condition*
        over-approximations, so event evidence is still verified
        post-hoc on each world (failing worlds get weight zero) -
        the result is law-exact regardless of how precise the
        backward walk managed to be.  Programs outside the batched
        class fall back to likelihood weighting (observation
        evidence) or rejection (event evidence) with the reason
        recorded under ``diagnostics["fallback_reason"]``.
        """
        if not self._batch_eligible(cfg):
            return self._guided_fallback(
                cfg, observations, constraints, n,
                "program/config is outside the batched backend's "
                "class (needs weak acyclicity, no parallel chase, "
                "no trace recording)")
        batched = self._batched_chase()
        if batched is None:
            return self._guided_fallback(
                cfg, observations, constraints, n,
                "the batched engine declined the program")
        from repro.core.backward import backward_plan
        from repro.engine.batched import ColumnarMonteCarloPDB
        plan = backward_plan(self.compiled.translated,
                             batched.closed_source, batched.growable,
                             observations, constraints)
        if not plan.satisfiable:
            raise MeasureError(
                "the evidence is unreachable: backward propagation "
                "proved that no chase world can satisfy it, so the "
                "conditioning event has probability zero")
        visible = self.compiled.visible_relations
        start = time.perf_counter()
        log_weights = np.zeros(n)
        batch_rng = cfg.base_rng()

        def world_rngs():
            return cfg.spawn_rngs(n)

        try:
            outcome = batched.run_batch(
                n, batch_rng, world_rngs, cfg.policy or DEFAULT_POLICY,
                cfg.max_steps, min_group=1, regions=plan.regions,
                log_weights=log_weights)
        except DistributionError as err:
            raise MeasureError(
                f"evidence has zero prior mass under the program: "
                f"{err}") from None
        if outcome is None:
            return self._guided_fallback(
                cfg, observations, constraints, n,
                "the batched cascade declined mid-run (a scalar "
                "continuation would sample constrained draws "
                "unconstrained)")
        pdb = ColumnarMonteCarloPDB(outcome, visible,
                                    keep_aux=cfg.keep_aux)
        # Exact importance weights, max-normalized for stability; the
        # regions were only necessary conditions, so event evidence is
        # re-verified world by world and failures zero-weighted.
        weights = np.exp(log_weights - log_weights.max())
        n_accepted = n
        if constraints:
            satisfied = _conjunction(constraints)
            mask = np.fromiter(
                (world is not None and satisfied(world)
                 for world in pdb.world_slots()),
                dtype=bool, count=n)
            weights = np.where(mask, weights, 0.0)
            n_accepted = int(mask.sum())
        elif pdb.truncated:
            mask = np.fromiter(
                (world is not None for world in pdb.world_slots()),
                dtype=bool, count=n)
            weights = np.where(mask, weights, 0.0)
            n_accepted = int(mask.sum())
        if not np.any(weights > 0.0):
            raise MeasureError(
                f"no worlds satisfied the evidence in {n} guided "
                "proposals; the residual (non-propagated) part of "
                "the evidence has (near-)zero probability")
        posterior = WeightedColumnarPDB(pdb, weights)
        elapsed = time.perf_counter() - start
        info = outcome.diagnostics
        return InferenceResult(
            posterior, "guided", elapsed,
            n_runs=n, n_truncated=pdb.truncated,
            diagnostics={
                "backend": "guided",
                "n_proposed": n,
                "n_accepted": n_accepted,
                "acceptance_rate": n_accepted / n,
                "n_pinned": plan.n_pinned,
                "n_truncated": plan.n_truncated,
                "n_guided_draws": info.get("n_guided_draws", 0),
                "given_up": plan.given_up,
                "mean_weight": float(weights.mean()),
                "effective_sample_size":
                    posterior.effective_sample_size(),
            })

    def _guided_fallback(self, cfg: ChaseConfig,
                         observations: Sequence[Observation],
                         constraints: Sequence[ConstraintLike],
                         n: int, reason: str) -> InferenceResult:
        """Law-preserving fallback when guided sampling is unavailable."""
        if observations and constraints:
            raise ValidationError(
                f"guided conditioning is unavailable ({reason}) and "
                "no single fallback handles mixed Observation + event "
                "evidence; split the evidence across "
                "method='likelihood' and method='rejection' calls")
        if observations:
            result = self._posterior_likelihood(cfg, observations, n)
        else:
            result = self._posterior_rejection(cfg, constraints, n)
        result.diagnostics.update(fallback=result.kind,
                                  fallback_reason=reason)
        return result

    def _posterior_auto(self, cfg: ChaseConfig,
                        observations: Sequence[Observation],
                        constraints: Sequence[ConstraintLike],
                        n: int) -> InferenceResult:
        """Rejection when it accepts often enough, guided otherwise.

        Event-only evidence gets a small rejection pilot; if its
        acceptance rate clears ``_AUTO_ACCEPTANCE_THRESHOLD`` the
        full run stays with plain rejection (unweighted worlds are
        simpler downstream), otherwise - and for any evidence mix
        involving observations - the guided sampler takes over.
        """
        if observations or not constraints:
            result = self._posterior_guided(cfg, observations,
                                            constraints, n)
            result.diagnostics.setdefault("auto", "guided")
            return result
        n_pilot = min(max(50, n // 20), n)
        try:
            pilot = self._posterior_rejection(cfg, constraints,
                                              n_pilot)
            pilot_rate = pilot.diagnostics["acceptance_rate"]
        except MeasureError:
            pilot_rate = 0.0
        if pilot_rate >= _AUTO_ACCEPTANCE_THRESHOLD:
            result = self._posterior_rejection(cfg, constraints, n)
        else:
            result = self._posterior_guided(cfg, observations,
                                            constraints, n)
        result.diagnostics.update(auto=result.kind,
                                  pilot_acceptance=pilot_rate,
                                  n_pilot=n_pilot)
        return result

    def _posterior_exact(self, cfg: ChaseConfig,
                         constraints: Sequence[ConstraintLike],
                         ) -> InferenceResult:
        satisfied = _conjunction(constraints)
        start = time.perf_counter()
        prior = self.exact(**_config_kwargs(cfg)).pdb
        try:
            posterior = prior.condition(satisfied)
        except MeasureError:
            raise MeasureError(
                "constraints have probability zero under the program "
                "output; conditioning is undefined (cf. the paper's "
                "Borel-Kolmogorov discussion, Section 7)") from None
        return InferenceResult(posterior, "exact",
                               time.perf_counter() - start)

    # -- analysis -----------------------------------------------------------

    def analyze(self, deep: bool = False):
        """Static analysis report (cached on the compiled program).

        ``deep=True`` returns the combined
        :class:`~repro.analysis.report.DeepReport` and additionally
        runs the *instance-aware* lint checks (semi-join
        unreachability over the session's input, constant-foldable
        parameters), so it is cached per session rather than on the
        compiled program.
        """
        if not deep:
            return self.compiled.analyze()
        cached = self._engines.get("deep_analysis")
        if cached is None:
            from repro.analysis import deep_analyze
            cached = deep_analyze(self.compiled.translated,
                                  instance=self.instance,
                                  termination=self.compiled.analyze())
            self._engines["deep_analysis"] = cached
        return cached

    def mass_report(self,
                    budgets: Sequence[int] = (1, 2, 4, 8, 16, 32),
                    **overrides) -> list[MassReport]:
        """Figure-1 mass accounting across depth budgets (E9)."""
        cfg = self.config.replace(**overrides)
        translated = self.compiled.translated
        reports = []
        for budget in budgets:
            pdb = exact_sequential_spdb(
                translated, self.instance, cfg.policy,
                max_depth=budget, tolerance=cfg.tolerance)
            reports.append(MassReport(budget, pdb.total_mass(),
                                      pdb.err_mass()))
        return reports

    def __repr__(self) -> str:
        evidence = f", {len(self._evidence)} evidence" \
            if self._evidence else ""
        return (f"Session({self.compiled!r}, "
                f"|D0|={len(self.instance)}{evidence})")


def _config_kwargs(cfg: ChaseConfig) -> dict:
    """ChaseConfig -> replace() kwargs (for nested override passing)."""
    import dataclasses
    return {f.name: getattr(cfg, f.name)
            for f in dataclasses.fields(cfg)}


# Re-exported conveniences so ``repro.api`` is self-contained.
as_predicate = _as_predicate
