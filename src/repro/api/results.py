"""The unified result object returned by every facade inference call.

Whatever the method - exact enumeration, Monte-Carlo sampling,
rejection conditioning, likelihood weighting - a
:class:`repro.api.Session` hands back one :class:`InferenceResult`
carrying the produced (sub-)probabilistic database together with run
counts, error mass and timing diagnostics.  Query helpers delegate to
the wrapped PDB, so downstream code does not need to care which
representation (exact, ensemble, weighted) the method produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.pdb.database import PDBBase
from repro.pdb.events import Event
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.query.relalg import Query


@dataclass(frozen=True)
class InferenceResult:
    """Outcome of one facade inference call.

    ``pdb`` is the produced (sub-)probabilistic database - a
    :class:`~repro.pdb.database.DiscretePDB` (``kind="exact"``), a
    :class:`~repro.pdb.database.MonteCarloPDB` (``kind="sample"`` /
    ``"rejection"``) or a :class:`~repro.pdb.weighted.WeightedPDB`
    (``kind="likelihood"``).  ``elapsed`` is wall-clock seconds spent
    inside the call; ``diagnostics`` carries method-specific extras
    (acceptance rate, effective sample size, mean importance weight,
    cache hits, ...).
    """

    pdb: PDBBase
    kind: str
    elapsed: float
    n_runs: int | None = None
    n_truncated: int | None = None
    diagnostics: Mapping[str, Any] = field(default_factory=dict)

    @property
    def backend(self) -> str | None:
        """Which sampling backend produced this result (if sampled).

        ``"scalar"`` or ``"batched"`` for ``kind="sample"`` results;
        None for methods without a backend choice (exact, rejection,
        likelihood).  Batched results additionally report ``n_split`` /
        ``n_batched`` (worlds finished scalar vs vectorized),
        ``n_rounds`` (cascade depth of the multi-round batch loop) and
        ``n_groups`` (terminal signature groups) in ``diagnostics``,
        and their ``pdb`` answers ``marginal`` / ``fact_marginals``
        straight from the columnar sample arrays - worlds materialize
        only when accessed.
        """
        return self.diagnostics.get("backend")

    @property
    def effective_sample_size(self) -> float | None:
        """ESS of the importance weights, if this result carries any.

        ``(Σw)² / Σw²`` for likelihood-weighted and streamed
        posteriors - the number of equally-weighted samples the
        estimate is worth.  None for unweighted results (exact,
        plain sampling, rejection).
        """
        ess = self.diagnostics.get("effective_sample_size")
        if ess is not None:
            return ess
        size = getattr(self.pdb, "effective_sample_size", None)
        return size() if callable(size) else None

    # -- delegation to the wrapped PDB --------------------------------------

    def marginal(self, fact: Fact) -> float:
        """(Estimated) probability that ``fact`` holds in the output."""
        return self.pdb.marginal(fact)

    def prob(self, event: Event | Callable[[Instance], bool]) -> float:
        """(Estimated) probability of an instance event."""
        return self.pdb.prob(event)

    def expectation(self,
                    statistic: Callable[[Instance], float]) -> float:
        """(Estimated) expectation of a numeric world statistic."""
        return self.pdb.expectation(statistic)

    def err_mass(self) -> float:
        """Mass of the error event (non-terminating chase paths)."""
        return self.pdb.err_mass()

    def total_mass(self) -> float:
        """Mass assigned to genuine instances (``<= 1``)."""
        return self.pdb.total_mass()

    def fact_marginals(self,
                       relations: tuple[str, ...] | None = None,
                       ) -> dict[Fact, float]:
        """Marginals of every output fact (optionally restricted)."""
        from repro.pdb.stats import fact_marginals
        return fact_marginals(self.pdb, relations=relations)

    def query(self, query: Query) -> "QueryResult":
        """Bind a relational-algebra plan to this result's PDB.

        Returns a :class:`QueryResult` whose accessors push the plan
        forward through whatever representation this result carries -
        compiled to numpy over columnar ensembles, evaluated per world
        or per exact branch otherwise.
        """
        return QueryResult(self.pdb, query, self)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (used by the CLI's ``--json`` mode)."""
        return {
            "kind": self.kind,
            "elapsed_seconds": self.elapsed,
            "n_runs": self.n_runs,
            "n_truncated": self.n_truncated,
            "total_mass": self.total_mass(),
            "err_mass": self.err_mass(),
            "diagnostics": dict(self.diagnostics),
        }

    def __repr__(self) -> str:
        runs = f", runs {self.n_runs}" if self.n_runs is not None else ""
        return (f"InferenceResult({self.kind}{runs}, "
                f"mass {self.total_mass():.6g}, "
                f"err {self.err_mass():.6g}, "
                f"{self.elapsed * 1e3:.1f} ms)")


@dataclass(frozen=True)
class QueryResult:
    """A relational query bound to a produced PDB - every reading of it.

    The single façade for query answers, independent of how inference
    ran: the same accessors work over exact enumerations
    (:class:`~repro.pdb.database.DiscretePDB`), sampled ensembles
    (plain or columnar) and weighted posteriors (materialized or
    streamed).  Over columnar ensembles the plan is compiled to numpy
    by :mod:`repro.query.columnar` - including a lifted fast path when
    the plan only reads stable relations - so no accessor here
    materializes worlds unless the plan genuinely cannot be vectorized.
    """

    pdb: PDBBase
    query: Query
    #: The inference result that produced ``pdb``, when built through
    #: the facade (``Session.query`` / ``InferenceResult.query``) -
    #: carries run counts, timing and diagnostics for reporting.
    result: "InferenceResult | None" = None

    def distribution(self):
        """Push-forward distribution of the full answer relation.

        Points are canonical forms - ``(columns, sorted rows)`` tuples
        (:meth:`~repro.query.relalg.Relation.canonical`).
        """
        from repro.query.columnar import query_distribution
        return query_distribution(self.pdb, self.query)

    def boolean_probability(self) -> float:
        """Probability that the answer relation is non-empty."""
        from repro.query.columnar import boolean_probability
        return boolean_probability(self.pdb, self.query)

    def expected_aggregate(self, column: str | None = None) -> float:
        """Expected value of a numeric single-valued aggregate plan."""
        from repro.query.columnar import expected_aggregate
        return expected_aggregate(self.pdb, self.query, column)

    def aggregate_distribution(self, column: str | None = None):
        """Distribution of a single-valued aggregate plan's value."""
        from repro.query.columnar import aggregate_distribution
        return aggregate_distribution(self.pdb, self.query, column)

    def answer_probabilities(self,
                             column: str) -> "dict[Any, float]":
        """P(value ∈ answer) for every value the column ever takes."""
        from repro.query.columnar import answer_probabilities
        return answer_probabilities(self.pdb, self.query, column)

    def strategy(self) -> str:
        """How the plan evaluates over this PDB (diagnostics).

        One of ``"lifted"``, ``"columnar"``, ``"fallback"`` or
        ``"worlds"`` - see :func:`repro.query.columnar.explain`.
        """
        from repro.query.columnar import explain
        return explain(self.pdb, self.query)

    def __repr__(self) -> str:
        return (f"QueryResult({type(self.query).__name__} over "
                f"{type(self.pdb).__name__}, {self.strategy()})")
