"""Legacy top-level semantics API (now thin facade shims).

Historically this module tied the pipeline together with a flat bag of
functions, each of which re-translated the program and re-threaded the
same keyword arguments.  The primary public API is now the
compile-once / infer-many facade of :mod:`repro.api`:

>>> import repro
>>> compiled = repro.compile("R(Flip<0.5>) :- true.")
>>> pdb = compiled.on().exact().pdb

The historical entry points remain available here as delegating shims
(each emits a :class:`DeprecationWarning`) so that existing code keeps
working with identical semantics:

* :func:`exact_spdb` - the exact output SPDB of a *discrete* program
  (Theorems 4.8 / 5.5 / 6.1), now ``Session.exact()``;
* :func:`sample_spdb` - the Monte-Carlo output SPDB of any program,
  now ``Session.sample(n)``;
* :func:`apply_to_pdb` - a program applied to a probabilistic *input*
  database, now ``CompiledProgram.apply_to_pdb``;
* :func:`spdb_mass_report` - the Figure-1 bookkeeping, now
  ``Session.mass_report``.

Auxiliary relations (``Result#i`` / ``Sample#ψ``) are projected away by
default (Remark 4.9); pass ``keep_aux=True`` to inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._compat import warn_legacy
from repro.core.chase import DEFAULT_MAX_STEPS
from repro.core.exact import (DEFAULT_MAX_DEPTH,
                              DEFAULT_SUPPORT_TOLERANCE)
from repro.core.policies import ChasePolicy
from repro.core.program import Program
from repro.core.translate import ExistentialProgram
from repro.pdb.database import DiscretePDB, MonteCarloPDB
from repro.pdb.instances import Instance


def exact_spdb(program: Program | ExistentialProgram,
               instance: Instance | None = None,
               *,
               semantics: str = "grohe",
               parallel: bool = False,
               policy: ChasePolicy | None = None,
               max_depth: int = DEFAULT_MAX_DEPTH,
               tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
               keep_aux: bool = False) -> DiscretePDB:
    """Exact output SPDB of a discrete program.

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance).exact().pdb``.

    By Theorem 6.1 the result is independent of ``parallel`` and
    ``policy`` - parameters exposed precisely so that tests and
    benchmarks can *verify* that independence.

    >>> g0 = Program.parse('''
    ...     R(Flip<0.5>) :- true.
    ...     R(Flip<0.5>) :- true.
    ... ''')
    >>> pdb = exact_spdb(g0)
    >>> pdb.support_size()   # {R(0)}, {R(1)}, {R(0), R(1)}
    3
    """
    warn_legacy("exact_spdb",
                "repro.compile(program).on(instance).exact()")
    from repro.api.session import compiled_for
    session = compiled_for(program, semantics).on(
        instance, parallel=parallel, policy=policy, max_depth=max_depth,
        tolerance=tolerance, keep_aux=keep_aux)
    return session.exact().pdb


def sample_spdb(program: Program | ExistentialProgram,
                instance: Instance | None = None,
                n: int = 1000,
                *,
                semantics: str = "grohe",
                parallel: bool = False,
                policy: ChasePolicy | None = None,
                rng: np.random.Generator | int | None = None,
                max_steps: int = DEFAULT_MAX_STEPS,
                keep_aux: bool = False) -> MonteCarloPDB:
    """Monte-Carlo output SPDB: ``n`` independent chase runs.

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance).sample(n).pdb``.

    Works for continuous programs (where it is the only representation)
    and discrete ones (where it converges to :func:`exact_spdb`).
    Budget-truncated runs are counted as ``err`` mass.  The shim runs
    the legacy single-stream RNG scheme (``streams="shared"``) so that
    seeded outputs are bit-identical to historical releases.
    """
    warn_legacy("sample_spdb",
                "repro.compile(program).on(instance).sample(n)")
    from repro.api.session import compiled_for
    session = compiled_for(program, semantics).on(
        instance, parallel=parallel, policy=policy, max_steps=max_steps,
        keep_aux=keep_aux, seed=rng, streams="shared")
    return session.sample(n).pdb


def apply_to_pdb(program: Program | ExistentialProgram,
                 input_pdb: DiscretePDB,
                 *,
                 semantics: str = "grohe",
                 parallel: bool = False,
                 policy: ChasePolicy | None = None,
                 max_depth: int = DEFAULT_MAX_DEPTH,
                 tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                 keep_aux: bool = False) -> DiscretePDB:
    """Apply a discrete program to a probabilistic input database.

    .. deprecated:: 1.1
        Use ``repro.compile(program).apply_to_pdb(input_pdb).pdb``.

    Theorem 4.8 (second part): with an SPDB as input, the program
    defines an SPDB as output.  Operationally the output measure is the
    mixture, over input worlds ``D_0`` with weight ``P(D_0)``, of the
    per-world output SPDBs; input error mass passes through unchanged.
    """
    warn_legacy("apply_to_pdb",
                "repro.compile(program).apply_to_pdb(input_pdb)")
    from repro.api.session import compiled_for
    result = compiled_for(program, semantics).apply_to_pdb(
        input_pdb, parallel=parallel, policy=policy,
        max_depth=max_depth, tolerance=tolerance, keep_aux=keep_aux)
    return result.pdb


@dataclass(frozen=True)
class MassReport:
    """Figure-1 bookkeeping: where the unit of probability mass went.

    ``instance_mass`` is carried by finite (stable) chase paths -
    these map into the instance space ``D`` under ``lim-inst``;
    ``err_mass`` is carried by paths that were still alive at the
    budget - the stand-in for infinite paths, mapped to ``err``.
    The two always sum to 1 (up to float tolerance).
    """

    budget: int
    instance_mass: float
    err_mass: float

    @property
    def total(self) -> float:
        return self.instance_mass + self.err_mass


def spdb_mass_report(program: Program | ExistentialProgram,
                     instance: Instance | None = None,
                     budgets: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
                     *,
                     semantics: str = "grohe",
                     policy: ChasePolicy | None = None,
                     tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                     ) -> list[MassReport]:
    """Mass accounting across depth budgets (experiment E9).

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance).mass_report(budgets)``.

    For terminating programs the err mass drops to 0 once the budget
    exceeds the tree height; for almost-surely-non-terminating programs
    it stays near 1 for every budget.
    """
    warn_legacy("spdb_mass_report",
                "repro.compile(program).on(instance).mass_report(...)")
    from repro.api.session import compiled_for
    session = compiled_for(program, semantics).on(
        instance, policy=policy, tolerance=tolerance)
    return session.mass_report(budgets)
