"""Top-level semantics API: programs to (sub-)probabilistic databases.

This module ties the pipeline together (Theorems 4.8 / 5.5 / 6.1):

* :func:`exact_spdb` - the exact output SPDB of a *discrete* program,
  by sequential or parallel chase-tree enumeration, under either
  semantics ("grohe" = this paper, "barany" = [3] via Section 6.2);
* :func:`sample_spdb` - the Monte-Carlo output SPDB of any program
  (the only option for continuous programs);
* :func:`apply_to_pdb` - a program applied to a probabilistic *input*
  database (the second halves of Theorems 4.8/5.5): the output is the
  mixture over input worlds of per-world outputs;
* :func:`spdb_mass_report` - the Figure-1 bookkeeping: instance mass
  vs ``err`` mass as a function of the step/depth budget.

Auxiliary relations (``Result#i`` / ``Sample#ψ``) are projected away by
default (Remark 4.9); pass ``keep_aux=True`` to inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chase import DEFAULT_MAX_STEPS, _as_rng, run_chase
from repro.core.exact import (DEFAULT_MAX_DEPTH,
                              DEFAULT_SUPPORT_TOLERANCE,
                              exact_parallel_spdb, exact_sequential_spdb)
from repro.core.parallel import run_parallel_chase
from repro.core.policies import ChasePolicy
from repro.core.program import Program
from repro.core.translate import (ExistentialProgram, translate,
                                  translate_barany)
from repro.errors import ValidationError
from repro.pdb.database import DiscretePDB, MonteCarloPDB, mixture_pdb
from repro.pdb.instances import Instance


def _translated_for(program: Program | ExistentialProgram,
                    semantics: str) -> ExistentialProgram:
    if isinstance(program, ExistentialProgram):
        return program
    if semantics == "grohe":
        return translate(program)
    if semantics == "barany":
        return translate_barany(program)
    raise ValidationError(
        f"unknown semantics {semantics!r}; use 'grohe' or 'barany'")


def exact_spdb(program: Program | ExistentialProgram,
               instance: Instance | None = None,
               *,
               semantics: str = "grohe",
               parallel: bool = False,
               policy: ChasePolicy | None = None,
               max_depth: int = DEFAULT_MAX_DEPTH,
               tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
               keep_aux: bool = False) -> DiscretePDB:
    """Exact output SPDB of a discrete program.

    By Theorem 6.1 the result is independent of ``parallel`` and
    ``policy`` - parameters exposed precisely so that tests and
    benchmarks can *verify* that independence.

    >>> g0 = Program.parse('''
    ...     R(Flip<0.5>) :- true.
    ...     R(Flip<0.5>) :- true.
    ... ''')
    >>> pdb = exact_spdb(g0)
    >>> pdb.support_size()   # {R(0)}, {R(1)}, {R(0), R(1)}
    3
    """
    translated = _translated_for(program, semantics)
    if parallel:
        return exact_parallel_spdb(translated, instance,
                                   max_depth=max_depth,
                                   tolerance=tolerance, keep_aux=keep_aux)
    return exact_sequential_spdb(translated, instance, policy,
                                 max_depth=max_depth, tolerance=tolerance,
                                 keep_aux=keep_aux)


def sample_spdb(program: Program | ExistentialProgram,
                instance: Instance | None = None,
                n: int = 1000,
                *,
                semantics: str = "grohe",
                parallel: bool = False,
                policy: ChasePolicy | None = None,
                rng: np.random.Generator | int | None = None,
                max_steps: int = DEFAULT_MAX_STEPS,
                keep_aux: bool = False) -> MonteCarloPDB:
    """Monte-Carlo output SPDB: ``n`` independent chase runs.

    Works for continuous programs (where it is the only representation)
    and discrete ones (where it converges to :func:`exact_spdb`).
    Budget-truncated runs are counted as ``err`` mass.
    """
    translated = _translated_for(program, semantics)
    rng = _as_rng(rng)
    visible = translated.visible_relations()
    worlds: list[Instance] = []
    truncated = 0
    for _ in range(n):
        if parallel:
            run = run_parallel_chase(translated, instance, rng,
                                     max_steps=max_steps)
        else:
            run = run_chase(translated, instance, policy, rng,
                            max_steps=max_steps)
        if not run.terminated:
            truncated += 1
            continue
        world = run.instance if keep_aux \
            else run.instance.restrict(visible)
        worlds.append(world)
    return MonteCarloPDB(worlds, truncated)


def apply_to_pdb(program: Program | ExistentialProgram,
                 input_pdb: DiscretePDB,
                 *,
                 semantics: str = "grohe",
                 parallel: bool = False,
                 policy: ChasePolicy | None = None,
                 max_depth: int = DEFAULT_MAX_DEPTH,
                 tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                 keep_aux: bool = False) -> DiscretePDB:
    """Apply a discrete program to a probabilistic input database.

    Theorem 4.8 (second part): with an SPDB as input, the program
    defines an SPDB as output.  Operationally the output measure is the
    mixture, over input worlds ``D_0`` with weight ``P(D_0)``, of the
    per-world output SPDBs; input error mass passes through unchanged.
    """
    translated = _translated_for(program, semantics)
    components = []
    for world, weight in input_pdb.worlds():
        output = exact_spdb(translated, world, parallel=parallel,
                            policy=policy, max_depth=max_depth,
                            tolerance=tolerance, keep_aux=keep_aux)
        components.append((weight, output))
    mixed = mixture_pdb(components)
    return DiscretePDB(mixed.measure, mixed.err + input_pdb.err_mass())


@dataclass(frozen=True)
class MassReport:
    """Figure-1 bookkeeping: where the unit of probability mass went.

    ``instance_mass`` is carried by finite (stable) chase paths -
    these map into the instance space ``D`` under ``lim-inst``;
    ``err_mass`` is carried by paths that were still alive at the
    budget - the stand-in for infinite paths, mapped to ``err``.
    The two always sum to 1 (up to float tolerance).
    """

    budget: int
    instance_mass: float
    err_mass: float

    @property
    def total(self) -> float:
        return self.instance_mass + self.err_mass


def spdb_mass_report(program: Program | ExistentialProgram,
                     instance: Instance | None = None,
                     budgets: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
                     *,
                     semantics: str = "grohe",
                     policy: ChasePolicy | None = None,
                     tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                     ) -> list[MassReport]:
    """Mass accounting across depth budgets (experiment E9).

    For terminating programs the err mass drops to 0 once the budget
    exceeds the tree height; for almost-surely-non-terminating programs
    it stays near 1 for every budget.
    """
    translated = _translated_for(program, semantics)
    reports = []
    for budget in budgets:
        pdb = exact_sequential_spdb(translated, instance, policy,
                                    max_depth=budget, tolerance=tolerance)
        reports.append(MassReport(budget, pdb.total_mass(),
                                  pdb.err_mass()))
    return reports
