"""Translation of GDatalog programs to existential Datalog (Section 3.2).

Every random rule ``φ_i`` with head ``R(x_1..x_n, ψ⟨p_1..p_m⟩)`` is
replaced by the pair

.. code-block:: text

    (3.A)  ∃y: R_i(x_1..x_n, p_1..p_m, y) ← φ_{i,b}(x̄)
    (3.B)  R(x_1.., y, ..x_n)             ← φ_{i,b}(x̄), R_i(x_1..x_n, p_1..p_m, y)

where ``R_i`` is a fresh auxiliary relation *per rule* - this is the
paper's semantics, under which each probabilistic rule samples at most
once per valuation.  :func:`translate_barany` instead keys the
auxiliary relation by the *(distribution name, parameter tuple)* -
``Sample_ψ(p̄, y)`` shared across rules - which reproduces the original
semantics of Bárány et al. as characterized in Section 6.2 ("they tie
samples to the (name of) the distribution").

The random term may occupy any head position; auxiliary relations store
the carried (non-random) head values first, then the parameters, then
the sampled value last - so the induced functional dependency
(Section 3.5) is always "all columns but the last determine the last".

Auxiliary relation names contain ``#`` which the surface syntax cannot
produce, so they can never collide with user relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import math

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import RandomTerm, Term, Var, substitute
from repro.distributions.base import ParameterizedDistribution
from repro.errors import ValidationError
from repro.pdb.facts import Fact

#: Prefix of per-rule auxiliary relations (this paper's semantics).
RESULT_PREFIX = "Result#"
#: Prefix of per-distribution auxiliary relations (Bárány semantics).
SAMPLE_PREFIX = "Sample#"


def is_aux_relation(name: str) -> bool:
    """Whether a relation name is translation-generated."""
    return name.startswith(RESULT_PREFIX) or name.startswith(SAMPLE_PREFIX)


class TranslatedRule:
    """Base class of rules in a translated program ``Ĝ``."""

    __slots__ = ("index", "body", "origin")

    def __init__(self, index: int, body: tuple[Atom, ...],
                 origin: Rule | None):
        self.index = index
        self.body = body
        self.origin = origin

    def is_existential(self) -> bool:
        raise NotImplementedError

    def is_random(self) -> bool:
        """Rule-protocol shim: existential rules are the random ones.

        Lets the deterministic fragment of a translated program be fed
        straight into :func:`repro.engine.seminaive.seminaive_fixpoint`
        (used by the batched chase to compute the shared deterministic
        fixpoint once per batch).
        """
        return self.is_existential()


class DetRule(TranslatedRule):
    """A deterministic rule of ``Ĝ``: fires by adding its ground head."""

    __slots__ = ("head",)

    def __init__(self, index: int, head: Atom, body: tuple[Atom, ...],
                 origin: Rule | None):
        super().__init__(index, body, origin)
        self.head = head

    def is_existential(self) -> bool:
        return False

    def head_fact(self, binding: dict[Var, Any]) -> Fact:
        return self.head.ground(binding)

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body) or "⊤"
        return f"[{self.index}] {self.head!r} ← {body}"


class ExtRule(TranslatedRule):
    """An existential rule (3.A) of ``Ĝ``.

    ``prefix_terms`` are the auxiliary relation's deterministic columns:
    the carried head terms followed by the distribution parameters.  The
    existential variable fills the final column.
    """

    __slots__ = ("aux_relation", "prefix_terms", "n_carried",
                 "distribution")

    def __init__(self, index: int, aux_relation: str,
                 prefix_terms: tuple[Term, ...], n_carried: int,
                 distribution: ParameterizedDistribution,
                 body: tuple[Atom, ...], origin: Rule | None):
        super().__init__(index, body, origin)
        self.aux_relation = aux_relation
        self.prefix_terms = prefix_terms
        self.n_carried = n_carried
        self.distribution = distribution

    def is_existential(self) -> bool:
        return True

    def prefix_values(self, binding: dict[Var, Any]) -> tuple:
        """Ground the deterministic columns under a body valuation."""
        return tuple(substitute(term, binding)
                     for term in self.prefix_terms)

    def param_values(self, prefix: tuple) -> tuple:
        """Extract the distribution parameters from a ground prefix."""
        return prefix[self.n_carried:]

    def aux_fact(self, prefix: tuple, sampled: Any) -> Fact:
        """The auxiliary fact ``R_i(prefix, sampled)``."""
        return Fact(self.aux_relation, prefix + (sampled,))

    def aux_atom(self, existential: Var) -> Atom:
        """The auxiliary atom with the existential variable as last term."""
        return Atom(self.aux_relation,
                    self.prefix_terms + (existential,))

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body) or "⊤"
        cols = ", ".join(repr(t) for t in self.prefix_terms)
        return (f"[{self.index}] ∃y: {self.aux_relation}({cols}, y) "
                f"← {body}   ~{self.distribution.name}")


@dataclass(frozen=True)
class AuxInfo:
    """Metadata of one auxiliary relation."""

    distribution: ParameterizedDistribution
    n_carried: int
    arity: int  # prefix length + 1


class ExistentialProgram:
    """A translated program ``Ĝ`` with its auxiliary-relation metadata.

    ``semantics`` records which translation produced it (``"grohe"`` for
    this paper's per-rule auxiliaries, ``"barany"`` for the
    per-distribution auxiliaries of Section 6.2).
    """

    def __init__(self, source: Program, rules: Sequence[TranslatedRule],
                 aux_info: dict[str, AuxInfo], semantics: str):
        self.source = source
        self.rules = tuple(rules)
        self.aux_info = dict(aux_info)
        self.semantics = semantics
        self.aux_relations = frozenset(aux_info)

    def existential_rules(self) -> tuple[ExtRule, ...]:
        return tuple(r for r in self.rules if isinstance(r, ExtRule))

    def deterministic_rules(self) -> tuple[DetRule, ...]:
        return tuple(r for r in self.rules if isinstance(r, DetRule))

    def visible_relations(self) -> tuple[str, ...]:
        """The original program's relations (auxiliaries excluded)."""
        return self.source.relations()

    def is_discrete(self) -> bool:
        return all(info.distribution.is_discrete
                   for info in self.aux_info.values())

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        lines = [repr(rule) for rule in self.rules]
        return (f"ExistentialProgram[{self.semantics}](\n  "
                + "\n  ".join(lines) + "\n)")


def _fresh_existential_var(rule: Rule, tag: str) -> Var:
    """A variable name unused in the rule (``y#`` cannot be parsed)."""
    used = {v.name for v in rule.body_variable_set()}
    used.update(v.name for v in rule.head.variable_set())
    candidate = f"y#{tag}"
    while candidate in used:
        candidate += "'"
    return Var(candidate)


def _split_random_head(rule: Rule) -> tuple[int, RandomTerm,
                                            tuple[Term, ...]]:
    """Random position, random term, and carried (other) head terms."""
    position, random_term = rule.single_random_term()
    carried = tuple(term for i, term in enumerate(rule.head.terms)
                    if i != position)
    return position, random_term, carried


def _companion_head(rule: Rule, position: int, existential: Var) -> Atom:
    """The (3.B) head: the original head with ``y`` at the random slot."""
    terms = list(rule.head.terms)
    terms[position] = existential
    return Atom(rule.head.relation, terms)


def translate(program: Program) -> ExistentialProgram:
    """This paper's translation ``G ↦ Ĝ`` (per-rule auxiliaries)."""
    source = program
    if not program.is_normal_form():
        # Normalization helpers (Split#...) are implementation detail;
        # keep the original program as the visible-schema source.
        program = program.normalized()
    rules: list[TranslatedRule] = []
    aux_info: dict[str, AuxInfo] = {}
    for source_index, rule in enumerate(program.rules):
        index = len(rules)
        if not rule.is_random():
            rules.append(DetRule(index, rule.head, rule.body, rule))
            continue
        position, random_term, carried = _split_random_head(rule)
        aux_relation = f"{RESULT_PREFIX}{source_index}"
        prefix_terms = carried + random_term.params
        ext = ExtRule(index, aux_relation, prefix_terms, len(carried),
                      random_term.distribution, rule.body, rule)
        rules.append(ext)
        aux_info[aux_relation] = AuxInfo(
            random_term.distribution, len(carried),
            len(prefix_terms) + 1)
        existential = _fresh_existential_var(rule, str(source_index))
        companion_body = rule.body + (ext.aux_atom(existential),)
        rules.append(DetRule(len(rules),
                             _companion_head(rule, position, existential),
                             companion_body, rule))
    return ExistentialProgram(source, rules, aux_info, "grohe")


def translate_barany(program: Program) -> ExistentialProgram:
    """The Section 6.2 translation matching Bárány et al.'s semantics.

    Samples are keyed by (distribution name, parameter tuple): all rules
    using ``ψ`` share the auxiliary relation ``Sample#ψ/m`` whose columns
    are the ``m`` parameters plus the sampled value.  Renaming a
    distribution (``Flip`` → ``Flip'``) therefore changes program
    behaviour - exactly the phenomenon of Example 1.1.
    """
    source = program
    if not program.is_normal_form():
        program = program.normalized()
    rules: list[TranslatedRule] = []
    aux_info: dict[str, AuxInfo] = {}
    for rule in program.rules:
        index = len(rules)
        if not rule.is_random():
            rules.append(DetRule(index, rule.head, rule.body, rule))
            continue
        position, random_term, _carried = _split_random_head(rule)
        distribution = random_term.distribution
        arity_tag = len(random_term.params)
        aux_relation = f"{SAMPLE_PREFIX}{distribution.name}#{arity_tag}"
        prefix_terms = tuple(random_term.params)
        ext = ExtRule(index, aux_relation, prefix_terms, 0,
                      distribution, rule.body, rule)
        rules.append(ext)
        existing = aux_info.get(aux_relation)
        if existing is not None and \
                existing.distribution.name != distribution.name:
            raise ValidationError(
                f"auxiliary relation clash for {aux_relation}")
        aux_info[aux_relation] = AuxInfo(distribution, 0,
                                         len(prefix_terms) + 1)
        existential = _fresh_existential_var(rule, distribution.name)
        companion_body = rule.body + (ext.aux_atom(existential),)
        rules.append(DetRule(len(rules),
                             _companion_head(rule, position, existential),
                             companion_body, rule))
    return ExistentialProgram(source, rules, aux_info, "barany")


def validate_params_in_theta(ext: ExtRule, params: tuple) -> tuple:
    """Check a ground parameter tuple lies in ``Θ_ψ``.

    Definition 3.1 demands valuations map parameters into the parameter
    space; a violating binding at chase time is a semantic error in the
    program/data and raises :class:`repro.errors.DistributionError`
    with rule context.
    """
    validated = ext.distribution.validate_params(params)
    for value in validated:
        if isinstance(value, float) and not math.isfinite(value):
            raise ValidationError(
                f"non-finite parameter {value!r} for rule {ext!r}")
    return validated
