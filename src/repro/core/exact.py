"""Exact chase-tree enumeration for discrete programs.

For programs whose random terms all use discrete distributions, the
chase tree (Definition 4.2 / 5.2) is countably branching and every
branch probability is computable in closed form.  This module
enumerates the tree and pushes the path measure forward along
``lim-inst`` (Section 4.2) *exactly*, producing a
:class:`repro.pdb.database.DiscretePDB`:

* finite (stable) paths contribute their probability to their final
  instance;
* paths cut off by the depth budget, and tail mass beyond a
  distribution's truncated support (Poisson, Geometric), contribute to
  the explicit ``err`` mass - the sub-probability deficit of
  Definition 2.7.  For weakly-acyclic programs with finite-support
  distributions the err mass is exactly 0.

Both tree flavours are supported: sequential (needs a policy -
Theorem 6.1 says the result does not depend on it, which tests verify)
and parallel (policy-free; branches are product distributions over all
simultaneously-firing existential pairs, Definition 5.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.applicability import Firing
from repro.core.chase import make_engine
from repro.core.policies import DEFAULT_POLICY, ChasePolicy
from repro.core.program import Program
from repro.core.translate import (ExistentialProgram,
                                  validate_params_in_theta)
from repro.errors import UnsupportedProgramError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

#: Default bound on chase-tree depth (number of steps along a path).
DEFAULT_MAX_DEPTH = 200
#: Default truncation tolerance for infinite discrete supports.
DEFAULT_SUPPORT_TOLERANCE = 1e-12


def _require_discrete(translated: ExistentialProgram) -> None:
    for name, info in translated.aux_info.items():
        if not info.distribution.is_discrete:
            raise UnsupportedProgramError(
                f"exact enumeration needs discrete distributions; "
                f"{name} samples {info.distribution.name} (continuous). "
                "Use sample_spdb for Monte-Carlo semantics instead.")


def _branches(translated: ExistentialProgram, firing: Firing,
              tolerance: float) -> tuple[list[tuple[Fact, float]], float]:
    """Branching of one firing: ``[(fact, probability)]`` and residue.

    Deterministic firings have a single branch of probability 1
    (Eq. 4.B); existential firings branch over the (truncated) support
    of ``ψ⟨ā⟩`` (Eq. 4.A).
    """
    if not firing.existential:
        return [(firing.fact(), 1.0)], 0.0
    info = translated.aux_info[firing.relation]
    ext_rule = translated.rules[firing.rule_index]
    params = validate_params_in_theta(
        ext_rule, firing.values[info.n_carried:])
    support, residue = info.distribution.truncated_support(
        params, tolerance)
    return [(firing.fact(value), mass) for value, mass in support], residue


def exact_sequential_spdb(program: Program | ExistentialProgram,
                          instance: Instance | None = None,
                          policy: ChasePolicy | None = None,
                          max_depth: int = DEFAULT_MAX_DEPTH,
                          tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                          keep_aux: bool = False) -> DiscretePDB:
    """Exact output SPDB via the sequential chase tree.

    Enumerates ``T_app,D0`` depth-first with exact branch probabilities.
    ``max_depth`` bounds path length; unresolved mass goes to ``err``.

    >>> pdb = exact_sequential_spdb(Program.parse("R(Flip<0.5>) :- true."))
    >>> sorted(round(p, 3) for _, p in pdb.worlds())
    [0.5, 0.5]
    """
    translated = _as_translated(program)
    _require_discrete(translated)
    instance = instance if instance is not None else Instance.empty()
    policy = policy or DEFAULT_POLICY

    outcome_masses: dict[Instance, float] = {}
    err_mass = 0.0
    # Depth-first worklist of (engine, instance, probability, depth).
    stack = [(make_engine(translated, instance), instance, 1.0, 0)]
    while stack:
        engine, current, probability, depth = stack.pop()
        applicable = engine.applicable()
        if not applicable:
            outcome_masses[current] = \
                outcome_masses.get(current, 0.0) + probability
            continue
        if depth >= max_depth:
            err_mass += probability
            continue
        firing = policy.select(current, applicable)
        branches, residue = _branches(translated, firing, tolerance)
        err_mass += probability * residue
        for branch_index, (new_fact, mass) in enumerate(branches):
            # The last branch may reuse this node's engine (no fork).
            child = engine if branch_index == len(branches) - 1 \
                else engine.fork()
            child.add_fact(new_fact)
            stack.append((child, current.add(new_fact),
                          probability * mass, depth + 1))

    return _finalize(translated, outcome_masses, err_mass, keep_aux)


def exact_parallel_spdb(program: Program | ExistentialProgram,
                        instance: Instance | None = None,
                        max_depth: int = DEFAULT_MAX_DEPTH,
                        tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                        keep_aux: bool = False) -> DiscretePDB:
    """Exact output SPDB via the parallel chase tree (Definition 5.2).

    Each node branches over the product of all its existential firings'
    supports - the product measure of Definition 5.1 - while all
    deterministic firings extend every branch.
    """
    translated = _as_translated(program)
    _require_discrete(translated)
    instance = instance if instance is not None else Instance.empty()

    outcome_masses: dict[Instance, float] = {}
    err_mass = 0.0
    stack = [(make_engine(translated, instance), instance, 1.0, 0)]
    while stack:
        engine, current, probability, depth = stack.pop()
        applicable = engine.applicable()
        if not applicable:
            outcome_masses[current] = \
                outcome_masses.get(current, 0.0) + probability
            continue
        if depth >= max_depth:
            err_mass += probability
            continue
        deterministic_facts: list[Fact] = []
        existential_branches: list[list[tuple[Fact, float]]] = []
        covered = 1.0
        for firing in applicable:
            branches, residue = _branches(translated, firing, tolerance)
            if firing.existential:
                existential_branches.append(branches)
                covered *= (1.0 - residue)
            else:
                deterministic_facts.append(branches[0][0])
        err_mass += probability * (1.0 - covered)
        combinations = itertools.product(*existential_branches) \
            if existential_branches else [()]
        for combination in combinations:
            mass = 1.0
            new_facts = list(deterministic_facts)
            for new_fact, branch_mass in combination:
                mass *= branch_mass
                new_facts.append(new_fact)
            child = engine.fork()
            for new_fact in new_facts:
                child.add_fact(new_fact)
            stack.append((child, current.add_all(new_facts),
                          probability * mass, depth + 1))

    return _finalize(translated, outcome_masses, err_mass, keep_aux)


def _finalize(translated: ExistentialProgram,
              outcome_masses: dict[Instance, float], err_mass: float,
              keep_aux: bool) -> DiscretePDB:
    measure = DiscreteMeasure(outcome_masses)
    pdb = DiscretePDB(measure, err_mass)
    if keep_aux:
        return pdb
    return pdb.project(translated.visible_relations())


def _as_translated(program: Program | ExistentialProgram,
                   ) -> ExistentialProgram:
    if isinstance(program, ExistentialProgram):
        return program
    return program.translate()


# ---------------------------------------------------------------------------
# Explicit chase trees (diagnostics, Figure 1, Lemma C.4 checks)
# ---------------------------------------------------------------------------

@dataclass
class ChaseNode:
    """A node of an explicitly materialized (bounded) chase tree.

    ``firing`` is None at leaves (no applicable pair - the paper's
    ``(,)`` label) and at budget-cut nodes (marked ``truncated``).
    ``children`` pairs each child with its branch probability.
    """

    instance: Instance
    probability: float
    depth: int
    firing: Firing | None = None
    truncated: bool = False
    children: list["ChaseNode"] = field(default_factory=list)

    def is_leaf(self) -> bool:
        return not self.children

    def iter_nodes(self) -> Iterator["ChaseNode"]:
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> Iterator["ChaseNode"]:
        for node in self.iter_nodes():
            if node.is_leaf():
                yield node


def enumerate_chase_tree(program: Program | ExistentialProgram,
                         instance: Instance | None = None,
                         policy: ChasePolicy | None = None,
                         max_depth: int = 25,
                         tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                         ) -> ChaseNode:
    """Materialize the (bounded) sequential chase tree ``T_app,D0``.

    Intended for inspection and tests (e.g. Lemma C.4: no instance
    labels two nodes); use :func:`exact_sequential_spdb` for semantics.
    """
    translated = _as_translated(program)
    _require_discrete(translated)
    instance = instance if instance is not None else Instance.empty()
    policy = policy or DEFAULT_POLICY

    root = ChaseNode(instance, 1.0, 0)
    worklist = [(make_engine(translated, instance), root)]
    while worklist:
        engine, node = worklist.pop()
        applicable = engine.applicable()
        if not applicable:
            continue
        if node.depth >= max_depth:
            node.truncated = True
            continue
        firing = policy.select(node.instance, applicable)
        node.firing = firing
        branches, _residue = _branches(translated, firing, tolerance)
        for branch_index, (new_fact, mass) in enumerate(branches):
            child_engine = engine if branch_index == len(branches) - 1 \
                else engine.fork()
            child_engine.add_fact(new_fact)
            child = ChaseNode(node.instance.add(new_fact),
                              node.probability * mass, node.depth + 1)
            node.children.append(child)
            worklist.append((child_engine, child))
    return root
