"""Mutual simulation of the two semantics (Section 6.2).

The paper proves its semantics and that of Bárány et al. [3]
inter-simulate by program rewriting:

* **[3] inside ours** (:func:`to_grohe_simulation`): pull sampling out
  into shared relay rules.  For every distribution/arity used by random
  rules we introduce

  .. code-block:: text

      BNeed#ψ(p̄)          ← body_j            (one per random rule j)
      BSample#ψ(p̄, ψ⟨p̄⟩)  ← BNeed#ψ(p̄)        (a single sampling rule)
      R(.., y, ..)         ← body_j, BSample#ψ(p̄, y)

  The single sampling rule samples once per parameter valuation under
  our per-rule semantics - precisely [3]'s keying of samples by
  (distribution name, parameters).  This generalizes the paper's
  ``H ↦ H'`` example (which needs no relay because the bodies are ⊤).

* **Ours inside [3]** (:func:`to_barany_simulation`): tag each rule's
  distribution with a unique constant so no two rules share a
  (distribution, parameters) key - the paper's "tagging individual
  applications with additional parameters".  Tagging uses a wrapper
  distribution whose first parameter is ignored by the law.

Equivalence statements (verified by tests/benchmarks, experiment E3):
for every discrete program ``G``,

* ``exact_spdb(to_grohe_simulation(G), semantics="grohe")`` projected
  to ``G``'s relations equals ``exact_spdb(G, semantics="barany")``;
* ``exact_spdb(to_barany_simulation(G), semantics="barany")`` projected
  equals ``exact_spdb(G, semantics="grohe")``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Var
from repro.distributions.base import ParameterizedDistribution
from repro.distributions.registry import DistributionRegistry

#: Markers of simulation helper relations ('#' keeps them unparseable).
NEED_PREFIX = "BNeed#"
RELAY_PREFIX = "BSample#"


def is_simulation_relation(name: str) -> bool:
    return name.startswith(NEED_PREFIX) or name.startswith(RELAY_PREFIX)


def _fresh_var(rule: Rule, tag: str) -> Var:
    used = {v.name for v in rule.body_variable_set()}
    used.update(v.name for v in rule.head.variable_set())
    candidate = f"b#{tag}"
    while candidate in used:
        candidate += "'"
    return Var(candidate)


def to_grohe_simulation(program: Program) -> Program:
    """Rewrite so that *our* semantics reproduces [3]'s on ``program``.

    See module docstring.  Deterministic rules pass through; helper
    relations are recognizable via :func:`is_simulation_relation` and
    should be projected away when comparing outputs.
    """
    if not program.is_normal_form():
        program = program.normalized()
    relay_rules: dict[str, Rule] = {}
    rewritten: list[Rule] = []
    for rule in program.rules:
        if not rule.is_random():
            rewritten.append(rule)
            continue
        position, random_term = rule.single_random_term()
        distribution = random_term.distribution
        arity = len(random_term.params)
        key = f"{distribution.name}#{arity}"
        need_relation = f"{NEED_PREFIX}{key}"
        relay_relation = f"{RELAY_PREFIX}{key}"
        params = tuple(random_term.params)

        if params:
            rewritten.append(Rule(Atom(need_relation, params), rule.body))
        else:
            # Zero parameters: no need-relation (atoms need arity >= 1);
            # the relay samples unconditionally, matching H' of §6.2.
            pass
        if key not in relay_rules:
            if params:
                relay_params = tuple(
                    Var(f"q#{i}") for i in range(arity))
                relay_rules[key] = Rule(
                    Atom(relay_relation,
                         relay_params + (RandomTerm(distribution,
                                                    relay_params),)),
                    (Atom(need_relation, relay_params),))
            else:
                relay_rules[key] = Rule(
                    Atom(relay_relation,
                         (RandomTerm(distribution, ()),)), ())

        fresh = _fresh_var(rule, key)
        head_terms = list(rule.head.terms)
        head_terms[position] = fresh
        rewritten.append(Rule(
            Atom(rule.head.relation, head_terms),
            rule.body + (Atom(relay_relation, params + (fresh,)),)))
    rewritten.extend(relay_rules[key] for key in sorted(relay_rules))
    return Program(rewritten, registry=program.registry)


def simulation_helper_relations(program: Program) -> tuple[str, ...]:
    """Helper relations introduced by :func:`to_grohe_simulation`."""
    names = set()
    for rule in program.rules:
        if is_simulation_relation(rule.head.relation):
            names.add(rule.head.relation)
        for body_atom in rule.body:
            if is_simulation_relation(body_atom.relation):
                names.add(body_atom.relation)
    return tuple(sorted(names))


class TaggedDistribution(ParameterizedDistribution):
    """A law with one ignored leading "tag" parameter.

    ``Tagged(ψ)⟨t, θ⟩ = ψ⟨θ⟩`` for every tag ``t``: the tag carries no
    probabilistic content, but under [3]'s semantics it separates the
    sample keys of different rules.  Note the tagged family is *not*
    identifiable in the tag coordinate - intentionally so; it is a
    simulation device, not a modelling distribution.
    """

    def __init__(self, inner: ParameterizedDistribution):
        self._inner = inner
        self.name = f"{inner.name}Tagged"
        self.param_arity = (-1 if inner.param_arity < 0
                            else inner.param_arity + 1)
        self.is_discrete = inner.is_discrete

    def _split(self, params: Sequence[Any]) -> tuple:
        params = tuple(params)
        if not params:
            raise ValueError("tagged distribution needs a tag parameter")
        return params[1:]

    def validate_params(self, params: Sequence[Any]) -> tuple:
        params = tuple(params)
        inner = self._inner.validate_params(self._split(params))
        return (params[0],) + inner

    def _check_params(self, params: tuple) -> tuple:
        return self.validate_params(params)

    def density(self, params: Sequence[Any], x: Any) -> float:
        return self._inner.density(self._split(params), x)

    def sample(self, params: Sequence[Any],
               rng: np.random.Generator) -> Any:
        return self._inner.sample(self._split(params), rng)

    def sample_many(self, params: Sequence[Any],
                    rng: np.random.Generator, n: int) -> list:
        return self._inner.sample_many(self._split(params), rng, n)

    def sample_batch(self, params: Sequence[Any], size: int,
                     rng: np.random.Generator) -> np.ndarray:
        # Delegating keeps the inner family's vectorized sampler on
        # the batched-chase path (Bárány-translated programs batch
        # too); the tag carries no probabilistic content.
        return self._inner.sample_batch(self._split(params), size, rng)

    def finite_support_values(self, params: Sequence[Any],
                              max_points: int = 128) -> tuple | None:
        return self._inner.finite_support_values(self._split(params),
                                                 max_points)

    def support(self, params: Sequence[Any]):
        return self._inner.support(self._split(params))

    def support_is_finite(self, params: Sequence[Any]) -> bool:
        return self._inner.support_is_finite(self._split(params))

    def cdf(self, params: Sequence[Any], x: float) -> float:
        return self._inner.cdf(self._split(params), x)

    def mean(self, params: Sequence[Any]) -> float:
        return self._inner.mean(self._split(params))

    def variance(self, params: Sequence[Any]) -> float:
        return self._inner.variance(self._split(params))


def to_barany_simulation(program: Program,
                         ) -> tuple[Program, DistributionRegistry]:
    """Rewrite so that [3]'s semantics reproduces *ours* on ``program``.

    Every random term ``ψ⟨p̄⟩`` of rule ``i`` becomes
    ``ψTagged⟨i, p̄⟩``; distinct rules then never share a sample key
    under [3].  Returns the rewritten program together with the
    extended registry containing the tagged families.
    """
    if not program.is_normal_form():
        program = program.normalized()
    registry = program.registry.copy()
    tagged_cache: dict[str, TaggedDistribution] = {}

    def tagged(distribution: ParameterizedDistribution,
               ) -> TaggedDistribution:
        wrapper = tagged_cache.get(distribution.name)
        if wrapper is None:
            wrapper = TaggedDistribution(distribution)
            tagged_cache[distribution.name] = wrapper
            if wrapper.name not in registry:
                registry.register(wrapper)
        return wrapper

    rewritten: list[Rule] = []
    for index, rule in enumerate(program.rules):
        if not rule.is_random():
            rewritten.append(rule)
            continue
        position, random_term = rule.single_random_term()
        wrapper = tagged(random_term.distribution)
        head_terms = list(rule.head.terms)
        head_terms[position] = RandomTerm(
            wrapper, (Const(index),) + tuple(random_term.params))
        rewritten.append(Rule(Atom(rule.head.relation, head_terms),
                              rule.body))
    return Program(rewritten, registry=registry), registry
