"""Serialization of programs back to parseable surface syntax.

``repr()`` on rules uses the paper's mathematical notation (``←``,
``⊤``) for readability; this module instead emits text that
:mod:`repro.core.parser` accepts, so programs round-trip:

    parse(to_source(program)) == program

Limitations (by design): internal relations created by translation or
normalization contain ``#`` and cannot be re-parsed — serializing them
raises.  Variables named by the library (``y#…``) are likewise
internal-only.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Term, Var
from repro.errors import ValidationError


def _valid_relation(name: str) -> str:
    if not name or not name[0].isupper() or \
            not all(c.isalnum() or c in "_'" for c in name):
        raise ValidationError(
            f"relation {name!r} has no surface syntax (internal?)")
    return name


def _valid_variable(name: str) -> str:
    if not name or not (name[0].islower() or name[0] == "_") or \
            not all(c.isalnum() or c in "_'" for c in name):
        raise ValidationError(
            f"variable {name!r} has no surface syntax (internal?)")
    return name


def constant_to_source(value) -> str:
    """Render a constant value as a literal token."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise ValidationError(f"constant {value!r} has no surface syntax")


def term_to_source(term: Term) -> str:
    """Render one term."""
    if isinstance(term, Var):
        return _valid_variable(term.name)
    if isinstance(term, Const):
        return constant_to_source(term.value)
    if isinstance(term, RandomTerm):
        name = _valid_relation(term.distribution.name)
        params = ", ".join(term_to_source(p) for p in term.params)
        return f"{name}<{params}>"
    raise ValidationError(f"unknown term {term!r}")


def atom_to_source(atom: Atom) -> str:
    """Render one atom."""
    name = _valid_relation(atom.relation)
    inner = ", ".join(term_to_source(t) for t in atom.terms)
    return f"{name}({inner})"


def rule_to_source(rule: Rule) -> str:
    """Render one rule, ``.``-terminated."""
    head = atom_to_source(rule.head)
    if not rule.body:
        return f"{head} :- true."
    body = ", ".join(atom_to_source(a) for a in rule.body)
    return f"{head} :- {body}."


def program_to_source(program: Program) -> str:
    """Render a whole program, one rule per line.

    >>> program = Program.parse("R(Flip<0.5>) :- true.")
    >>> Program.parse(program_to_source(program)) == program
    True
    """
    return "\n".join(rule_to_source(rule) for rule in program.rules)
