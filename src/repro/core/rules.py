"""GDatalog rules (Definition 3.3) and their well-formedness checks.

A rule ``φ = φ_h(x̄) ← φ_b(x̄)`` has an intensional head atom whose free
variables are among the body's, and a body that is a conjunction of
deterministic atoms.  Rules with a random atom in the head are *random*
rules; the rest are *deterministic*.

The paper's proofs assume each random rule contains exactly one
parameterized distribution; :class:`Rule` enforces the well-formedness
constraints and exposes the structure the translation (Section 3.2)
needs.  Multi-random-term heads are accepted at construction and
rewritten into the single-term normal form by
:mod:`repro.core.normalize` (the paper notes the generalization "using
product densities"; the rewrite realizes it with auxiliary relations).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.atoms import Atom
from repro.core.terms import Const, RandomTerm, Var
from repro.errors import ValidationError
from repro.pdb.schema import Schema


class Rule:
    """A GDatalog rule ``head ← body_1, ..., body_k``.

    An empty body is the paper's ``⊤`` (the rule fires unconditionally,
    on the empty valuation).
    """

    __slots__ = ("head", "body", "label")

    def __init__(self, head: Atom, body: Iterable[Atom] = (),
                 label: str | None = None):
        self.head = head
        self.body = tuple(body)
        self.label = label
        self._validate()

    def _validate(self) -> None:
        for body_atom in self.body:
            if body_atom.is_random():
                raise ValidationError(
                    f"rule body must be deterministic, found random atom "
                    f"{body_atom!r}")
        body_variables = self.body_variable_set()
        head_variables = self.head.variable_set()
        unbound = head_variables - body_variables
        if unbound:
            names = ", ".join(sorted(v.name for v in unbound))
            raise ValidationError(
                f"head variables not bound in body: {names} "
                f"(rule {self!r}); GDatalog requires range restriction")

    # -- structure ------------------------------------------------------------

    def is_random(self) -> bool:
        """Whether the head contains a random term."""
        return self.head.is_random()

    def random_terms(self) -> tuple[RandomTerm, ...]:
        return self.head.random_terms()

    def single_random_term(self) -> tuple[int, RandomTerm]:
        """The unique random position and term of a normal-form rule.

        Raises if the rule is deterministic or has several random terms
        (callers should normalize first; see
        :func:`repro.core.normalize.normalize_program`).
        """
        positions = self.head.random_positions()
        if len(positions) != 1:
            raise ValidationError(
                f"expected exactly one random term, found {len(positions)} "
                f"in {self!r}")
        position = positions[0]
        term = self.head.terms[position]
        assert isinstance(term, RandomTerm)
        return position, term

    def is_normal_form(self) -> bool:
        """Deterministic, or exactly one random term in the head."""
        return len(self.head.random_positions()) <= 1

    def body_variable_set(self) -> frozenset[Var]:
        variables: set[Var] = set()
        for body_atom in self.body:
            variables.update(body_atom.variables())
        return frozenset(variables)

    def frontier(self) -> tuple[Var, ...]:
        """Body variables used by the head, in first-occurrence order.

        These are the variables whose valuation identifies one firing of
        the rule - the ``x̄`` of the translation (3.A)/(3.B).
        """
        head_variables = self.head.variable_set()
        seen: list[Var] = []
        for body_atom in self.body:
            for variable in body_atom.variables():
                if variable in head_variables and variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def all_variables(self) -> tuple[Var, ...]:
        """All body variables in first-occurrence order (the body's x̄)."""
        seen: list[Var] = []
        for body_atom in self.body:
            for variable in body_atom.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def relations_in_body(self) -> frozenset[str]:
        return frozenset(a.relation for a in self.body)

    # -- identity ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rule)
                and self.head == other.head
                and self.body == other.body)

    def __hash__(self) -> int:
        return hash((self.head, self.body))

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r} ← ⊤"
        body_text = ", ".join(repr(a) for a in self.body)
        return f"{self.head!r} ← {body_text}"

    # -- validation ----------------------------------------------------------------

    def validate_against(self, schema: Schema,
                         extensional: frozenset[str]) -> None:
        """Check schema typing and the I/E separation of Definition 3.3.

        Heads must be intensional; extensional relations may only occur
        in bodies.
        """
        if self.head.relation in extensional:
            raise ValidationError(
                f"rule head {self.head!r} uses extensional relation; heads "
                "must be intensional (Definition 3.3)")
        self.head.validate_against(schema, intensional=True)
        for body_atom in self.body:
            body_atom.validate_against(schema, intensional=False)
        self._validate_random_typing(schema)

    def _validate_random_typing(self, schema: Schema) -> None:
        relation_schema = schema.get(self.head.relation)
        if relation_schema is None:
            return
        for position in self.head.random_positions():
            term = self.head.terms[position]
            assert isinstance(term, RandomTerm)
            domain = relation_schema.domains[position]
            if term.distribution.is_discrete:
                continue  # numeric samples; checked dynamically
            if domain.is_discrete():
                raise ValidationError(
                    f"continuous distribution {term.distribution.name} "
                    f"cannot fill discrete domain {domain} in {self!r}")


def fact_rule(head: Atom) -> Rule:
    """A bodiless rule ``head ← ⊤`` (ground heads act as facts)."""
    return Rule(head, ())


def iter_constants(rule: Rule) -> Iterator[Const]:
    """All constants appearing anywhere in a rule."""
    atoms = (rule.head, *rule.body)
    for atom_ in atoms:
        for term in atom_.terms:
            if isinstance(term, Const):
                yield term
            elif isinstance(term, RandomTerm):
                for param in term.params:
                    if isinstance(param, Const):
                        yield param
