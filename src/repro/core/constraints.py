"""Conditioning the generative output on constraints (PPDL, §7).

The paper reproduces only the *generative* half of Probabilistic
Programming Datalog; the second half of [3] conditions the generated
distribution on logical constraints, and the paper's conclusion flags
the continuous case as delicate (conditioning on measure-zero events
invites the Borel-Kolmogorov paradox).  This module implements the
unambiguous part as an extension:

* **Exact conditioning** for discrete programs: restrict-and-normalize
  the enumerated SPDB on a *positive-probability* event.  Error mass is
  conditioned away (we condition on "the chase terminates AND the event
  holds" - the only meaningful reading on instances).
* **Rejection sampling** for arbitrary programs: sample worlds, keep
  those satisfying the event.  Sound whenever the event has positive
  probability; for continuous programs this limits constraints to
  "thick" events (interval conditions, counting events), exactly the
  boundary the paper draws.  Zero acceptance raises with a pointer to
  the measure-zero discussion rather than silently looping.
* :class:`ConstrainedProgram` - a generative program packaged with
  constraint events, mirroring [3]'s PPDL = GDatalog + constraints.

Constraints are :class:`repro.pdb.events.Event` objects or Boolean
relational queries (non-empty answer = satisfied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._compat import warn_legacy
from repro.core.chase import DEFAULT_MAX_STEPS
from repro.core.exact import DEFAULT_MAX_DEPTH, DEFAULT_SUPPORT_TOLERANCE
from repro.core.policies import ChasePolicy
from repro.core.program import Program
from repro.core.translate import ExistentialProgram
from repro.pdb.database import DiscretePDB, MonteCarloPDB
from repro.pdb.events import Event
from repro.pdb.instances import Instance

ConstraintLike = Event | Callable[[Instance], bool]


def _as_predicate(constraint: ConstraintLike,
                  ) -> Callable[[Instance], bool]:
    if isinstance(constraint, Event):
        return constraint.contains
    if callable(constraint):
        return constraint
    raise TypeError(f"not a constraint: {constraint!r}")


def _conjunction(constraints: Sequence[ConstraintLike],
                 ) -> Callable[[Instance], bool]:
    predicates = [_as_predicate(c) for c in constraints]
    return lambda instance: all(p(instance) for p in predicates)


def _exact_posterior(session, constraints: Sequence[ConstraintLike],
                     ) -> DiscretePDB:
    """Exact conditioning through a facade session.

    Shared by the :func:`condition_exact` shim and
    :class:`ConstrainedProgram`; an empty constraint list conditions
    on the trivially-true event (restrict-and-normalize away the err
    mass), matching the historical behaviour.
    """
    if not constraints:
        return session.exact().pdb.condition(lambda _instance: True)
    return session.observe(*constraints).posterior(method="exact").pdb


def _rejection_posterior(session,
                         constraints: Sequence[ConstraintLike],
                         n: int) -> "RejectionResult":
    """Rejection conditioning through a facade session (shared)."""
    evidence = tuple(constraints) or (lambda _instance: True,)
    result = session.observe(*evidence).posterior(method="rejection",
                                                  n=n)
    return RejectionResult(result.pdb, n,
                           result.diagnostics["n_accepted"],
                           result.n_truncated)


def condition_exact(program: Program | ExistentialProgram,
                    instance: Instance | None,
                    constraints: Sequence[ConstraintLike],
                    *,
                    semantics: str = "grohe",
                    policy: ChasePolicy | None = None,
                    max_depth: int = DEFAULT_MAX_DEPTH,
                    tolerance: float = DEFAULT_SUPPORT_TOLERANCE,
                    keep_aux: bool = False) -> DiscretePDB:
    """Exact posterior PDB of a discrete program given constraints.

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance)
        .observe(*constraints).posterior(method="exact")``.

    Raises :class:`repro.errors.MeasureError` if the constraint
    conjunction has probability zero under the program's output -
    including the measure-zero case the paper warns about.

    >>> posterior = condition_exact(
    ...     Program.parse('''
    ...         A(Flip<0.5>) :- true.
    ...         B(Flip<0.5>) :- true.
    ...     '''), None,
    ...     [lambda D: any(f.args == (1,) for f in D.facts_of("A"))])
    >>> posterior.total_mass()
    1.0
    """
    warn_legacy("condition_exact",
                "Session.observe(...).posterior(method='exact')")
    from repro.api.session import compiled_for
    session = compiled_for(program, semantics).on(
        instance, policy=policy, max_depth=max_depth,
        tolerance=tolerance, keep_aux=keep_aux)
    return _exact_posterior(session, constraints)


@dataclass(frozen=True)
class RejectionResult:
    """Posterior sample with acceptance accounting.

    ``posterior`` holds the accepted worlds; ``acceptance_rate`` is the
    fraction of *terminating* runs that satisfied the constraints (the
    Monte-Carlo estimate of the constraint probability);
    ``n_truncated`` counts budget-truncated runs (excluded from both).
    """

    posterior: MonteCarloPDB
    n_proposed: int
    n_accepted: int
    n_truncated: int

    @property
    def acceptance_rate(self) -> float:
        terminated = self.n_proposed - self.n_truncated
        if terminated == 0:
            return 0.0
        return self.n_accepted / terminated


def condition_by_rejection(program: Program | ExistentialProgram,
                           instance: Instance | None,
                           constraints: Sequence[ConstraintLike],
                           n: int = 1000,
                           *,
                           semantics: str = "grohe",
                           policy: ChasePolicy | None = None,
                           rng: np.random.Generator | int | None = None,
                           max_steps: int = DEFAULT_MAX_STEPS,
                           keep_aux: bool = False) -> RejectionResult:
    """Rejection-sample the posterior given constraints.

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance)
        .observe(*constraints).posterior(method="rejection")``.

    Works for continuous programs; requires the constraints to have
    positive probability (zero accepted samples raises).  The posterior
    is an ordinary :class:`MonteCarloPDB`, so the whole query layer
    applies to it.
    """
    warn_legacy("condition_by_rejection",
                "Session.observe(...).posterior(method='rejection')")
    from repro.api.session import compiled_for
    session = compiled_for(program, semantics).on(
        instance, policy=policy, max_steps=max_steps,
        keep_aux=keep_aux, seed=rng, streams="shared")
    return _rejection_posterior(session, constraints, n)


class ConstrainedProgram:
    """PPDL-style package: a generative program plus constraints.

    The generative part is a GDatalog program; the constraints condition
    its output SPDB.  ``exact`` is available for discrete programs,
    ``sample`` (rejection) for all programs.
    """

    def __init__(self, program: Program,
                 constraints: Sequence[ConstraintLike] = ()):
        self.program = program
        self.constraints = tuple(constraints)

    def observe(self, constraint: ConstraintLike) -> "ConstrainedProgram":
        """A new package with one more constraint."""
        return ConstrainedProgram(self.program,
                                  self.constraints + (constraint,))

    def _session(self, instance: Instance | None, kwargs: dict):
        from repro.api.session import compiled_for
        semantics = kwargs.pop("semantics", "grohe")
        rng = kwargs.pop("rng", None)
        if rng is not None:
            kwargs.setdefault("seed", rng)
            kwargs.setdefault("streams", "shared")
        return compiled_for(self.program, semantics).on(instance,
                                                        **kwargs)

    def exact(self, instance: Instance | None = None,
              **kwargs) -> DiscretePDB:
        """Exact posterior (discrete programs)."""
        return _exact_posterior(self._session(instance, kwargs),
                                self.constraints)

    def sample(self, instance: Instance | None = None, n: int = 1000,
               **kwargs) -> RejectionResult:
        """Rejection-sampled posterior (any program)."""
        return _rejection_posterior(self._session(instance, kwargs),
                                    self.constraints, n)

    def prior(self, instance: Instance | None = None,
              **kwargs) -> DiscretePDB:
        """The unconditioned output SPDB (discrete programs)."""
        return self._session(instance, kwargs).exact().pdb

    def __repr__(self) -> str:
        return (f"ConstrainedProgram({len(self.program)} rules, "
                f"{len(self.constraints)} constraints)")
