"""Rule applicability: the multifunction ``App`` (Section 3.3).

A pair ``(φ̂, ā)`` is applicable in ``D`` when ``D ⊨ φ̂_b(ā)`` and
``D ⊭ φ̂_h(ā)`` - the body holds but the (possibly existential) head
does not.  ``App(D)`` is the finite set of applicable pairs; measurable
selections of ``App`` are the chase policies of
:mod:`repro.core.policies`.

**Keying of pairs.**  We identify an applicable pair by the *ground
instantiation of its head*: for a deterministic rule the head fact, for
an existential rule the auxiliary relation plus the ground prefix
(carried head values + parameters).  Body valuations that differ only
in projected-away variables collapse to one :class:`Firing`.  This
matches the paper's usage (Section 3.4 takes the head to contain
exactly the rule's free variables) and is what makes the induced
functional dependencies (Lemma 3.10) and sequential/parallel
equivalence (Theorem 6.1) hold for the parallel chase, where all
applicable pairs fire simultaneously with independent samples: distinct
firings have distinct auxiliary prefixes by construction.

Three engines compute ``App``:

* :class:`NaiveApplicability` re-evaluates every rule body per call -
  simple and obviously correct;
* :class:`IncrementalApplicability` maintains the applicable set across
  fact insertions (delta matching for new candidates, head-satisfaction
  removal) - the engine the chase actually uses.  Agreement of the two
  is property-tested; the speedup is measured in experiment E13;
* :class:`OverlayApplicability` layers a copy-on-write delta over a
  *frozen* :class:`IncrementalApplicability` - forking costs O(delta)
  instead of O(instance), which is what the batched chase's
  per-signature-group forks ride on.

``fork()`` is part of the engine interface proper: every engine
produces an independent copy whose mutations never leak into the
original or into sibling forks (property-tested across all three
engines in ``tests/test_applicability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.translate import (DetRule, ExistentialProgram, ExtRule,
                                  TranslatedRule)
from repro.engine.matching import (IndexedSource, OverlaySource,
                                   match_atoms, match_atoms_with_pinned)
from repro.ordering import tuple_sort_key
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


@dataclass(frozen=True)
class Firing:
    """One applicable pair, keyed by its ground head instantiation.

    ``relation`` is the head relation (deterministic rules) or the
    auxiliary relation (existential rules); ``values`` the ground head
    arguments (deterministic) or the auxiliary prefix (existential).
    ``rule_index`` records the lowest-index translated rule producing
    this firing (deterministic tie-breaking only - the firing's effect
    is fully determined by ``relation``/``values``/``existential``).
    """

    rule_index: int
    relation: str
    values: tuple
    existential: bool

    def key(self) -> tuple:
        """Identity of the pair (excludes the representative index)."""
        return (self.existential, self.relation, self.values)

    def sort_key(self) -> tuple:
        """Canonical deterministic order used by policies."""
        return (self.rule_index, self.relation,
                tuple_sort_key(self.values))

    def fact(self, sampled=None) -> Fact:
        """The fact this firing adds (existential firings need a sample)."""
        if self.existential:
            return Fact(self.relation, self.values + (sampled,))
        return Fact(self.relation, self.values)

    def __repr__(self) -> str:
        kind = "∃" if self.existential else " "
        return f"Firing{kind}({self.relation}{self.values!r})"


class ApplicabilityEngine:
    """Interface: compute/maintain ``App(D)`` for a translated program."""

    def __init__(self, translated: ExistentialProgram):
        self.translated = translated

    def applicable(self) -> list[Firing]:
        """Current applicable firings in canonical order."""
        raise NotImplementedError

    def add_fact(self, f: Fact) -> None:
        """Advance the underlying instance by one fact."""
        raise NotImplementedError

    def fork(self) -> "ApplicabilityEngine":
        """An independent copy of the engine state.

        Mutating the fork (``add_fact``) must never affect the original
        engine or any sibling fork, and vice versa - exact enumeration
        branches states on this, and the batched chase forks one engine
        per signature group per round.
        """
        raise NotImplementedError


def _firing_of(rule: TranslatedRule, binding) -> Firing:
    if isinstance(rule, ExtRule):
        return Firing(rule.index, rule.aux_relation,
                      rule.prefix_values(binding), True)
    assert isinstance(rule, DetRule)
    head_fact = rule.head_fact(binding)
    return Firing(rule.index, head_fact.relation, head_fact.args, False)


def _head_satisfied(firing: Firing, fact_set: set[Fact],
                    aux_prefixes: dict[str, set[tuple]]) -> bool:
    if firing.existential:
        prefixes = aux_prefixes.get(firing.relation)
        return prefixes is not None and firing.values in prefixes
    return Fact(firing.relation, firing.values) in fact_set


def _collect_aux_prefixes(translated: ExistentialProgram,
                          facts: Iterable[Fact],
                          ) -> dict[str, set[tuple]]:
    prefixes: dict[str, set[tuple]] = {}
    for f in facts:
        if f.relation in translated.aux_relations:
            prefixes.setdefault(f.relation, set()).add(f.args[:-1])
    return prefixes


class NaiveApplicability(ApplicabilityEngine):
    """Reference engine: full recomputation of ``App`` on demand."""

    def __init__(self, translated: ExistentialProgram,
                 instance: Instance):
        super().__init__(translated)
        self._facts: set[Fact] = set(instance.facts)

    def add_fact(self, f: Fact) -> None:
        self._facts.add(f)

    def instance(self) -> Instance:
        return Instance(self._facts)

    def applicable(self) -> list[Firing]:
        source = IndexedSource(self._facts)
        aux_prefixes = _collect_aux_prefixes(self.translated, self._facts)
        found: dict[tuple, Firing] = {}
        for rule in self.translated.rules:
            for binding in match_atoms(rule.body, source):
                firing = _firing_of(rule, binding)
                if _head_satisfied(firing, self._facts, aux_prefixes):
                    continue
                key = firing.key()
                existing = found.get(key)
                if existing is None or firing.rule_index < \
                        existing.rule_index:
                    found[key] = firing
        return sorted(found.values(), key=Firing.sort_key)

    def fork(self) -> "NaiveApplicability":
        copy = NaiveApplicability.__new__(NaiveApplicability)
        ApplicabilityEngine.__init__(copy, self.translated)
        copy._facts = set(self._facts)
        return copy


class IncrementalApplicability(ApplicabilityEngine):
    """Delta-maintained ``App``: the chase's production engine.

    Soundness relies on Datalog monotonicity: bodies once satisfied stay
    satisfied (facts are only added), and heads once satisfied stay
    satisfied.  Hence the applicable set changes only by (a) removal
    when a new fact satisfies a firing's head, and (b) insertion of
    firings whose body match uses the new fact.
    """

    def __init__(self, translated: ExistentialProgram,
                 instance: Instance,
                 source: IndexedSource | None = None):
        super().__init__(translated)
        # A caller that already indexed the instance (e.g. the batched
        # chase, whose shared fixpoint hands back its warm source) may
        # pass it in; it must mirror ``instance`` exactly and is owned
        # by the engine afterwards.  The check is by *content*, not
        # count: a same-size but content-mismatched source would be
        # accepted by a length test and silently corrupt every body
        # match of the chase.
        if source is not None:
            if len(source) != len(instance) \
                    or any(f not in source for f in instance.facts):
                raise ValueError(
                    f"prebuilt source disagrees with the instance: "
                    f"{len(source)} source facts vs {len(instance)} "
                    "instance facts, or differing content")
        self._source = source if source is not None \
            else IndexedSource(instance.facts)
        self._fact_set: set[Fact] = set(instance.facts)
        self._aux_prefixes = _collect_aux_prefixes(translated,
                                                   instance.facts)
        # body-relation -> [(rule, body position)]
        self._dispatch: dict[str, list[tuple[TranslatedRule, int]]] = {}
        for rule in translated.rules:
            for position, body_atom in enumerate(rule.body):
                self._dispatch.setdefault(body_atom.relation, []).append(
                    (rule, position))
        self._applicable: dict[tuple, Firing] = {}
        self._bootstrap()

    def _bootstrap(self) -> None:
        for rule in self.translated.rules:
            for binding in match_atoms(rule.body, self._source):
                self._consider(_firing_of(rule, binding))

    def _consider(self, firing: Firing) -> None:
        if _head_satisfied(firing, self._fact_set, self._aux_prefixes):
            return
        key = firing.key()
        existing = self._applicable.get(key)
        if existing is None or firing.rule_index < existing.rule_index:
            self._applicable[key] = firing

    def add_fact(self, f: Fact) -> None:
        if f in self._fact_set:
            return
        self._fact_set.add(f)
        self._source.add_fact(f)
        # (a) head satisfaction: retire firings this fact settles.
        if f.relation in self.translated.aux_relations:
            prefix = f.args[:-1]
            self._aux_prefixes.setdefault(f.relation, set()).add(prefix)
            self._applicable.pop((True, f.relation, prefix), None)
        self._applicable.pop((False, f.relation, f.args), None)
        # (b) new body matches pinned on the new fact.
        for rule, position in self._dispatch.get(f.relation, ()):
            for binding in match_atoms_with_pinned(
                    rule.body, self._source, position, f):
                self._consider(_firing_of(rule, binding))

    def retire_existential(self, relation: str, prefix: tuple) -> None:
        """Mark an existential firing's head as satisfied *abstractly*.

        Registers the auxiliary prefix (so the firing leaves the
        applicable set and never re-enters) without inserting a
        concrete auxiliary fact.  The batched chase uses this for layer
        firings whose sampled value varies across the worlds of a
        group: the prefix - the head identity of the pair, Section
        3.3's keying - is shared, while the fact itself is not.
        """
        self._aux_prefixes.setdefault(relation, set()).add(prefix)
        self._applicable.pop((True, relation, prefix), None)

    def applicable(self) -> list[Firing]:
        return sorted(self._applicable.values(), key=Firing.sort_key)

    def has_applicable(self) -> bool:
        return bool(self._applicable)

    def instance(self) -> Instance:
        return Instance(self._fact_set)

    @property
    def source(self):
        """The engine's fact source (read access for body matching).

        The batched chase matches Bárány companion bodies against the
        engine's current source; callers must not mutate it directly.
        """
        return self._source

    def fork(self) -> "IncrementalApplicability":
        copy = IncrementalApplicability.__new__(IncrementalApplicability)
        ApplicabilityEngine.__init__(copy, self.translated)
        copy._source = IndexedSource(self._fact_set)
        copy._fact_set = set(self._fact_set)
        copy._aux_prefixes = {name: set(prefixes) for name, prefixes
                              in self._aux_prefixes.items()}
        copy._dispatch = self._dispatch  # immutable after init
        copy._applicable = dict(self._applicable)
        return copy


class _LayeredFactSet:
    """Set-like view: a frozen base fact set plus a private delta.

    Supports exactly what :class:`IncrementalApplicability`'s hot loop
    needs (membership, add, iteration, len); the layers stay disjoint
    because :meth:`add` refuses base facts.
    """

    __slots__ = ("_base", "_delta")

    def __init__(self, base, delta: set):
        self._base = base
        self._delta = delta

    def __contains__(self, f: Fact) -> bool:
        return f in self._delta or f in self._base

    def add(self, f: Fact) -> None:
        if f not in self._base:
            self._delta.add(f)

    def __iter__(self) -> Iterator[Fact]:
        yield from self._base
        yield from self._delta

    def __len__(self) -> int:
        return len(self._base) + len(self._delta)


class OverlayApplicability(IncrementalApplicability):
    """A copy-on-write fork of a *frozen* incremental engine.

    ``IncrementalApplicability.fork()`` re-indexes the whole fact set -
    O(instance) per fork, which dominated the batched chase's
    per-signature-group setup on large closed instances.  An overlay
    instead shares the parent's indexes through an
    :class:`~repro.engine.matching.OverlaySource` and keeps its own
    additions in a delta layer, so construction and :meth:`fork` cost
    O(delta + |App| + aux prefixes) - independent of the closed
    instance's size.

    **Contract:** the parent engine must not gain facts while any
    overlay of it is alive (the batched chase freezes its base engine
    by construction - rounds always fork).  Lazy index materialization
    inside the parent's source is fine; it does not change logical
    content.  Overlays fork into sibling overlays over the *same*
    frozen parent, never into chains, so lookup depth stays constant
    across cascade rounds.
    """

    def __init__(self, parent: IncrementalApplicability):
        ApplicabilityEngine.__init__(self, parent.translated)
        if isinstance(parent, OverlayApplicability):
            # Flatten: overlay an overlay by copying its delta rather
            # than stacking lookup layers.
            self._parent_facts = parent._parent_facts
            self._delta = set(parent._delta)
            self._source = parent._source.fork()
        else:
            self._parent_facts = parent._fact_set
            self._delta = set()
            self._source = OverlaySource(parent._source)
        self._fact_set = _LayeredFactSet(self._parent_facts, self._delta)
        # Aux-prefix sets and the applicable map are small (one entry
        # per pending/settled existential firing); plain copies keep
        # the parent untouchable without copy-on-write bookkeeping.
        self._aux_prefixes = {name: set(prefixes) for name, prefixes
                              in parent._aux_prefixes.items()}
        self._applicable = dict(parent._applicable)
        self._dispatch = parent._dispatch  # immutable after init

    def fork(self) -> "OverlayApplicability":
        """A sibling overlay over the same frozen parent (O(delta))."""
        return OverlayApplicability(self)

    def instance(self) -> Instance:
        return Instance(iter(self._fact_set))


def overlay_fork(engine: IncrementalApplicability,
                 ) -> OverlayApplicability:
    """The cheapest independent fork of an incremental-family engine.

    Overlays fork as overlays; a plain (frozen-from-now-on)
    :class:`IncrementalApplicability` is wrapped without copying its
    indexes.  The caller asserts the base engine will not be mutated
    for as long as the fork lives.
    """
    return OverlayApplicability(engine)


def applicable_pairs(translated: ExistentialProgram,
                     instance: Instance) -> list[Firing]:
    """One-shot ``App(D)`` (naive engine)."""
    return NaiveApplicability(translated, instance).applicable()


def iter_groundings(translated: ExistentialProgram,
                    instance: Instance) -> Iterator[tuple[TranslatedRule,
                                                          dict]]:
    """All (rule, body valuation) pairs - diagnostic/testing helper."""
    source = IndexedSource(instance.facts)
    for rule in translated.rules:
        for binding in match_atoms(rule.body, source):
            yield rule, binding
