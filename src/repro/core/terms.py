"""Terms of GDatalog (Definition 3.1).

Three kinds of terms appear in atoms:

* :class:`Var` - a variable from the countably infinite set ``V``;
* :class:`Const` - a constant from the attribute domains;
* :class:`RandomTerm` - ``ψ⟨θ⟩`` where ``ψ`` is a parameterized
  distribution and ``θ`` a tuple of constants and variables admitting a
  valuation into ``Θ_ψ``.

Variables and constants are the *deterministic* terms; a random term
may only occur in intensional rule heads (enforced by
:mod:`repro.core.rules`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.distributions.base import ParameterizedDistribution
from repro.errors import ValidationError
from repro.ordering import value_sort_key
from repro.pdb.facts import normalize_value


class Term:
    """Base class of all terms."""

    def is_random(self) -> bool:
        return False

    def variables(self) -> Iterator["Var"]:
        """Variables occurring in this term."""
        return iter(())


class Var(Term):
    """A variable.  Identified by name; hashable and orderable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValidationError(f"invalid variable name {name!r}")
        self.name = name

    def variables(self) -> Iterator["Var"]:
        yield self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __lt__(self, other: "Var") -> bool:
        return self.name < other.name

    def __repr__(self) -> str:
        return self.name


class Const(Term):
    """A constant value (normalized like fact arguments)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = normalize_value(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __lt__(self, other: "Const") -> bool:
        return value_sort_key(self.value) < value_sort_key(other.value)

    def __repr__(self) -> str:
        return repr(self.value)


class RandomTerm(Term):
    """``ψ⟨p_1, ..., p_m⟩``: sample from ``ψ`` at the given parameters.

    The parameters are deterministic terms (constants or variables to be
    bound by the rule body).  Nesting random terms is not part of the
    language.
    """

    __slots__ = ("distribution", "params")

    def __init__(self, distribution: ParameterizedDistribution,
                 params: Iterable[Term]):
        self.distribution = distribution
        self.params = tuple(params)
        for param in self.params:
            if isinstance(param, RandomTerm):
                raise ValidationError(
                    "random terms cannot be nested inside parameters")
            if not isinstance(param, (Var, Const)):
                raise ValidationError(
                    f"random-term parameter must be a term: {param!r}")
        arity = distribution.param_arity
        if arity >= 0 and len(self.params) != arity:
            raise ValidationError(
                f"distribution {distribution.name} expects {arity} "
                f"parameter(s), got {len(self.params)}")
        # If all parameters are constants, validate membership in Θ_ψ now;
        # variable parameters are validated per-valuation during the chase.
        if all(isinstance(p, Const) for p in self.params):
            distribution.validate_params(
                tuple(p.value for p in self.params))

    def is_random(self) -> bool:
        return True

    def variables(self) -> Iterator[Var]:
        for param in self.params:
            yield from param.variables()

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RandomTerm)
                and self.distribution.name == other.distribution.name
                and self.params == other.params)

    def __hash__(self) -> int:
        return hash(("RandomTerm", self.distribution.name, self.params))

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.params)
        return f"{self.distribution.name}<{inner}>"


def as_term(value: Any) -> Term:
    """Coerce a Python value into a term.

    Strings that look like lowercase identifiers become variables (the
    surface-syntax convention); everything else becomes a constant.  Use
    explicit :class:`Var`/:class:`Const` when the convention is wrong
    (e.g. a lowercase string constant).
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value[:1].islower() and \
            value.replace("_", "").isalnum():
        return Var(value)
    return Const(value)


def substitute(term: Term, binding: dict[Var, Any]) -> Any:
    """Apply a valuation to a deterministic term, yielding a value.

    Raises if the term is random (random terms are resolved by the
    chase, not by substitution) or the variable is unbound.
    """
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        try:
            return binding[term]
        except KeyError:
            raise ValidationError(f"unbound variable {term!r}") from None
    raise ValidationError(f"cannot substitute into random term {term!r}")
