"""The sequential probabilistic chase (Section 4).

A sequential chase step ``D --φ̂(ā)--> (𝒟, µ)`` (Definition 4.1) fires
one applicable pair chosen by a policy (a measurable selection of
``App``): deterministic rules add their ground head with probability 1
(Eq. 4.B); existential rules sample the new value from the rule's
parameterized distribution (Eq. 4.A) and add the auxiliary fact.

Running steps until no pair is applicable realizes one path of the
chase tree ``T_app,D0`` (Definition 4.2); the induced Markov process
(Proposition 4.6 / Corollary 4.7) is exposed as a kernel on instances
through :func:`chase_step_kernel`, and the path-to-instance projection
``lim-inst`` (Section 4.2) appears operationally as the
absorbed/truncated distinction of :class:`ChaseRun`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._compat import warn_legacy
from repro.core.applicability import (ApplicabilityEngine, Firing,
                                      IncrementalApplicability,
                                      NaiveApplicability)
from repro.core.policies import DEFAULT_POLICY, ChasePolicy
from repro.core.program import Program
from repro.core.translate import (ExistentialProgram,
                                  validate_params_in_theta)
from repro.errors import ChaseError
from repro.measures.kernels import SamplerKernel
from repro.measures.markov import MarkovProcess
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance

#: Default step budget: ample for terminating programs of test scale,
#: finite so that almost-surely-non-terminating programs yield ``err``.
DEFAULT_MAX_STEPS = 10_000


@dataclass(frozen=True)
class ChaseStep:
    """One executed chase step: the firing chosen and the fact added."""

    firing: Firing
    fact: Fact


@dataclass(frozen=True)
class ChaseRun:
    """The outcome of one sequential chase.

    ``terminated`` distinguishes finite chase paths (which denote
    instances) from budget-truncated ones (which stand in for the
    infinite paths that the semantics maps to ``err``).  ``instance`` is
    the final instance either way - for truncated runs it is the last
    *intermediate* instance and must not be read as program output.
    """

    instance: Instance
    terminated: bool
    steps: int
    trace: tuple[ChaseStep, ...] | None = None

    def output(self) -> Instance | None:
        """The program output: the instance, or None (= err)."""
        return self.instance if self.terminated else None


def _as_translated(program: Program | ExistentialProgram,
                   ) -> ExistentialProgram:
    if isinstance(program, ExistentialProgram):
        return program
    return program.translate()


def make_engine(translated: ExistentialProgram, instance: Instance,
                engine: str = "incremental") -> ApplicabilityEngine:
    """Construct an applicability engine (``"incremental"``/``"naive"``)."""
    if engine == "incremental":
        return IncrementalApplicability(translated, instance)
    if engine == "naive":
        return NaiveApplicability(translated, instance)
    raise ValueError(f"unknown applicability engine {engine!r}")


def fire(translated: ExistentialProgram, firing: Firing,
         rng: np.random.Generator) -> Fact:
    """Execute one firing: ground head fact, or sampled auxiliary fact.

    This is the operational content of a chase step's measure µ: for
    existential firings the new value is drawn from ``ψ⟨ā⟩`` (Eq. 4.A),
    for deterministic ones the Dirac measure on the extended instance
    (Eq. 4.B).
    """
    if not firing.existential:
        return firing.fact()
    info = translated.aux_info.get(firing.relation)
    if info is None:
        raise ChaseError(f"unknown auxiliary relation {firing.relation!r}")
    ext_rule = translated.rules[firing.rule_index]
    params = validate_params_in_theta(ext_rule,
                                      firing.values[info.n_carried:])
    sampled = info.distribution.sample(params, rng)
    return firing.fact(sampled)


def run_chase_prepared(translated: ExistentialProgram,
                       state: ApplicabilityEngine,
                       instance: Instance,
                       policy: ChasePolicy,
                       rng: np.random.Generator,
                       max_steps: int = DEFAULT_MAX_STEPS,
                       record_trace: bool = False) -> ChaseRun:
    """Run one sequential chase from a pre-built applicability state.

    The hot-loop core of :func:`run_chase`, split out so that batched
    callers (:meth:`repro.api.Session.sample`) can build the engine
    *once* per (program, instance) pair and hand each run a cheap
    ``fork()`` instead of re-matching every rule body from scratch.
    ``state`` must reflect exactly ``instance``; it is consumed.

    The vectorized batch backend (:mod:`repro.engine.batched`) also
    continues *split* worlds here: a world whose sampled values enable
    further firings enters this loop mid-chase, with ``max_steps``
    reduced by the steps the batched prefix already executed.
    """
    current = instance
    trace: list[ChaseStep] | None = [] if record_trace else None

    for step_count in range(max_steps):
        applicable = state.applicable()
        if not applicable:
            return ChaseRun(current, True, step_count,
                            tuple(trace) if trace is not None else None)
        firing = policy.select(current, applicable)
        new_fact = fire(translated, firing, rng)
        state.add_fact(new_fact)
        current = current.add(new_fact)
        if trace is not None:
            trace.append(ChaseStep(firing, new_fact))

    terminated = not state.applicable()
    return ChaseRun(current, terminated, max_steps,
                    tuple(trace) if trace is not None else None)


def run_chase(program: Program | ExistentialProgram,
              instance: Instance | None = None,
              policy: ChasePolicy | None = None,
              rng: np.random.Generator | int | None = None,
              max_steps: int = DEFAULT_MAX_STEPS,
              engine: str = "incremental",
              record_trace: bool = False) -> ChaseRun:
    """Run one sequential chase to termination or budget exhaustion.

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance).run()`` - the
        :class:`repro.api.Session` amortizes translation and engine
        setup across runs.

    Parameters mirror Definition 4.2: the program (translated on
    demand), the root instance ``D_0``, and the measurable chase
    sequence (policy).  ``rng`` may be a numpy Generator or a seed.

    >>> program = Program.parse("R(Flip<0.5>) :- true.")
    >>> run = run_chase(program, rng=0)
    >>> run.terminated
    True
    """
    warn_legacy("run_chase", "repro.compile(program).on(instance).run()")
    return _run_chase_impl(program, instance, policy, rng, max_steps,
                           engine, record_trace)


def _run_chase_impl(program: Program | ExistentialProgram,
                    instance: Instance | None = None,
                    policy: ChasePolicy | None = None,
                    rng: np.random.Generator | int | None = None,
                    max_steps: int = DEFAULT_MAX_STEPS,
                    engine: str = "incremental",
                    record_trace: bool = False) -> ChaseRun:
    """Non-deprecated internal form of :func:`run_chase`."""
    translated = _as_translated(program)
    instance = instance if instance is not None else Instance.empty()
    state = make_engine(translated, instance, engine)
    return run_chase_prepared(translated, state, instance,
                              policy or DEFAULT_POLICY, _as_rng(rng),
                              max_steps, record_trace)


def chase_outputs(program: Program | ExistentialProgram,
                  instance: Instance | None,
                  n: int,
                  rng: np.random.Generator | int | None = None,
                  policy: ChasePolicy | None = None,
                  max_steps: int = DEFAULT_MAX_STEPS,
                  keep_aux: bool = False,
                  ) -> Iterator[Instance | None]:
    """Yield ``n`` independent chase outputs (None = truncated/err).

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance).outputs(n)``.

    Auxiliary relations are projected away unless ``keep_aux`` - the
    measurable projection of Remark 4.9.
    """
    warn_legacy("chase_outputs",
                "repro.compile(program).on(instance).outputs(n)")
    return _chase_outputs_impl(program, instance, n, rng, policy,
                               max_steps, keep_aux)


def _chase_outputs_impl(program: Program | ExistentialProgram,
                        instance: Instance | None,
                        n: int,
                        rng: np.random.Generator | int | None = None,
                        policy: ChasePolicy | None = None,
                        max_steps: int = DEFAULT_MAX_STEPS,
                        keep_aux: bool = False,
                        ) -> Iterator[Instance | None]:
    translated = _as_translated(program)
    instance = instance if instance is not None else Instance.empty()
    policy = policy or DEFAULT_POLICY
    rng = _as_rng(rng)
    visible = translated.visible_relations()
    base = make_engine(translated, instance)
    for _ in range(n):
        run = run_chase_prepared(translated, base.fork(), instance,
                                 policy, rng, max_steps)
        if not run.terminated:
            yield None
        elif keep_aux:
            yield run.instance
        else:
            yield run.instance.restrict(visible)


def chase_step_kernel(program: Program | ExistentialProgram,
                      policy: ChasePolicy | None = None,
                      ) -> SamplerKernel:
    """The chase-step stochastic kernel ``step_app`` (Proposition 4.6).

    On instances with applicable pairs it samples one chase step; on
    instances without, it is the identity kernel.  Recomputes ``App``
    per invocation (kernels are stateless by definition) - use
    :func:`run_chase` for efficient full runs.
    """
    translated = _as_translated(program)
    policy = policy or DEFAULT_POLICY

    def step(instance: Instance, rng: np.random.Generator) -> Instance:
        engine = NaiveApplicability(translated, instance)
        applicable = engine.applicable()
        if not applicable:
            return instance
        firing = policy.select(instance, applicable)
        return instance.add(fire(translated, firing, rng))

    return SamplerKernel(step)


def chase_markov_process(program: Program | ExistentialProgram,
                         policy: ChasePolicy | None = None,
                         ) -> MarkovProcess:
    """The chase as a Markov process on instances (Corollary 4.7)."""
    translated = _as_translated(program)

    def is_absorbing(instance: Instance) -> bool:
        return not NaiveApplicability(translated, instance).applicable()

    return MarkovProcess(chase_step_kernel(translated, policy),
                         is_absorbing)


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
