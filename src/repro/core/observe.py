"""Likelihood weighting: conditioning on sample-level observations.

The paper's conclusion warns that conditioning a continuous GDatalog
program on logical constraints invites measure-zero trouble (the
Borel-Kolmogorov paradox).  There is, however, one family of
conditioning events that *is* unambiguous even in the continuous case:
fixing the value of an individual **sample** - i.e. disintegrating
along a sample coordinate of the chase.  Operationally this is the
classic *likelihood weighting* scheme for Bayesian networks, lifted to
GDatalog:

* an :class:`Observation` pins the random attribute of one rule head:
  "the sample produced for head relation ``R`` with carried values
  ``c̄`` equals ``v``";
* during each chase run, an existential firing matching an observation
  does not sample: it *forces* the observed value and multiplies the
  run's importance weight by the density ``ψ⟨ā⟩(v)``;
* the resulting weighted ensemble (:class:`repro.pdb.weighted.WeightedPDB`)
  is a self-normalized estimate of the posterior.

For discrete programs this provably agrees with exact conditioning on
the corresponding fact event (tested); for continuous programs it
computes the density-weighted posterior that rejection sampling cannot
reach (e.g. the textbook Normal-Normal update, see the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._compat import warn_legacy
from repro.core.applicability import ApplicabilityEngine, Firing
from repro.core.chase import DEFAULT_MAX_STEPS
from repro.core.policies import ChasePolicy
from repro.core.program import Program
from repro.core.translate import ExistentialProgram, ExtRule, \
    validate_params_in_theta
from repro.errors import ValidationError
from repro.pdb.facts import Fact, normalize_value
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedPDB


@dataclass(frozen=True)
class Observation:
    """Evidence on one sample: head relation + carried values ↦ value.

    ``carried`` are the ground values of the head's *deterministic*
    argument positions in order (the random position excluded).  For a
    head ``PHeight(p, Normal⟨µ, σ²⟩)`` observing person ``ada``'s height:
    ``Observation("PHeight", ("ada",), 172.5)``.
    """

    relation: str
    carried: tuple
    value: object

    def __post_init__(self):
        object.__setattr__(self, "carried",
                           tuple(normalize_value(v)
                                 for v in self.carried))
        object.__setattr__(self, "value", normalize_value(self.value))


def observe(relation: str, *carried_then_value) -> Observation:
    """Convenience constructor: last argument is the observed value.

    >>> observe("PHeight", "ada", 172.5)
    Observation(relation='PHeight', carried=('ada',), value=172.5)
    """
    if not carried_then_value:
        raise ValidationError("observe needs at least the value")
    return Observation(relation, tuple(carried_then_value[:-1]),
                       carried_then_value[-1])


def _observation_index(translated: ExistentialProgram,
                       observations: Sequence[Observation],
                       ) -> dict[tuple, object]:
    """Map (aux relation, carried values) to observed values.

    Raises when an observation names a relation no random rule heads -
    silent typos would otherwise produce unweighted prior samples.
    """
    by_relation: dict[str, list[ExtRule]] = {}
    for rule in translated.existential_rules():
        if rule.origin is not None:
            by_relation.setdefault(rule.origin.head.relation,
                                   []).append(rule)
    index: dict[tuple, object] = {}
    for observation in observations:
        rules = by_relation.get(observation.relation)
        if not rules:
            raise ValidationError(
                f"no random rule produces {observation.relation!r}; "
                "cannot observe its sample")
        for rule in rules:
            index[(rule.aux_relation, observation.carried)] = \
                observation.value
    return index


@dataclass(frozen=True)
class WeightingResult:
    """Posterior ensemble plus importance-sampling diagnostics."""

    posterior: WeightedPDB
    n_runs: int
    n_truncated: int
    mean_weight: float

    @property
    def effective_sample_size(self) -> float:
        return self.posterior.effective_sample_size()


def likelihood_weighting(program: Program | ExistentialProgram,
                         instance: Instance | None,
                         observations: Sequence[Observation],
                         n: int = 1000,
                         *,
                         semantics: str = "grohe",
                         policy: ChasePolicy | None = None,
                         rng: np.random.Generator | int | None = None,
                         max_steps: int = DEFAULT_MAX_STEPS,
                         keep_aux: bool = False) -> WeightingResult:
    """Sample the posterior given sample-level observations.

    .. deprecated:: 1.1
        Use ``repro.compile(program).on(instance)
        .observe(*observations).posterior(method="likelihood")``.

    Runs ``n`` chases; observed samples are forced (not drawn) and the
    run weight accumulates the observation densities.  Budget-truncated
    runs are dropped (their weight does not enter the posterior).
    """
    warn_legacy("likelihood_weighting",
                "Session.observe(...).posterior(method='likelihood')")
    from repro.api.session import compiled_for
    session = compiled_for(program, semantics).on(
        instance, policy=policy, max_steps=max_steps,
        keep_aux=keep_aux, seed=rng,
        streams="shared").observe(*observations)
    result = session.posterior(method="likelihood", n=n)
    return WeightingResult(result.pdb, n, result.n_truncated,
                           result.diagnostics["mean_weight"])


def _weighted_chase(translated: ExistentialProgram,
                    state: ApplicabilityEngine,
                    instance: Instance, policy: ChasePolicy,
                    rng: np.random.Generator, max_steps: int,
                    index: dict[tuple, object],
                    ) -> tuple[Instance, float] | None:
    """One likelihood-weighted chase over a pre-built engine state."""
    current = instance
    engine = state
    weight = 1.0
    for _ in range(max_steps):
        applicable = engine.applicable()
        if not applicable:
            return current, weight
        firing = policy.select(current, applicable)
        new_fact, factor = _fire_observed(translated, firing, rng,
                                          index)
        weight *= factor
        engine.add_fact(new_fact)
        current = current.add(new_fact)
    return None


def _fire_observed(translated: ExistentialProgram, firing: Firing,
                   rng: np.random.Generator,
                   index: dict[tuple, object],
                   ) -> tuple[Fact, float]:
    if not firing.existential:
        return firing.fact(), 1.0
    info = translated.aux_info[firing.relation]
    ext_rule = translated.rules[firing.rule_index]
    assert isinstance(ext_rule, ExtRule)
    params = validate_params_in_theta(
        ext_rule, firing.values[info.n_carried:])
    carried = firing.values[:info.n_carried]
    observed = index.get((firing.relation, carried))
    if observed is None:
        return firing.fact(info.distribution.sample(params, rng)), 1.0
    density = info.distribution.density(params, observed)
    return firing.fact(observed), float(density)
