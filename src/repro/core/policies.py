"""Chase policies: measurable selections of ``App`` (Lemma 3.6).

The sequential chase needs, at every instance ``D`` with applicable
pairs, a *choice* of one pair - mathematically a measurable selection
``app`` of the multifunction ``App`` (whose existence Lemma 3.6
establishes via Kuratowski/Ryll-Nardzewski).  Operationally a policy is
a deterministic **function of the applicable set and the instance
alone**: no hidden mutable state, so the same instance always yields
the same choice.  This discipline is what makes our policies honest
selections, and it is what the chase-independence experiments
(Theorem 6.1) quantify over.

Provided policies:

* :class:`FirstPolicy` / :class:`LastPolicy` - extremes of the
  canonical firing order (rule index, then value order);
* :class:`PriorityPolicy` - a user-supplied rule-index priority;
* :class:`RandomTiePolicy` - pseudo-random choice derived from a salted
  hash of the canonicalized instance: different salts give genuinely
  different selections, yet each salt is a pure function ``D ↦ App(D)``;
* :class:`RoundRobinPolicy` - rotates by ``|D| mod k``; again a pure
  function of ``D``.
"""

from __future__ import annotations

import hashlib

from repro.core.applicability import Firing
from repro.errors import ChaseError
from repro.pdb.instances import Instance


class ChasePolicy:
    """A measurable selection: chooses one applicable firing."""

    #: Human-readable name used in reports and benchmarks.
    name: str = "policy"

    #: Whether the batched sampling backend may run under this policy.
    #: Theorem 6.1 makes the output law of a weakly acyclic program
    #: independent of any *honest* selection (deterministic in the
    #: instance), so every policy that keeps the class contract is
    #: batch-safe; the batched prefix merely realizes a different valid
    #: chase order, with split worlds continuing under the policy
    #: itself.  Custom policies that bend the contract (hidden state,
    #: external randomness) should set this to ``False`` to force the
    #: ``"auto"`` backend down the scalar path.
    batch_safe: bool = True

    def select(self, instance: Instance,
               applicable: list[Firing]) -> Firing:
        """Pick one firing.  ``applicable`` is canonically sorted and
        non-empty; implementations must be deterministic in
        ``(instance, applicable)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<policy {self.name}>"


class FirstPolicy(ChasePolicy):
    """Always the canonically first applicable firing."""

    name = "first"

    def select(self, instance: Instance,
               applicable: list[Firing]) -> Firing:
        _require_nonempty(applicable)
        return applicable[0]


class LastPolicy(ChasePolicy):
    """Always the canonically last applicable firing."""

    name = "last"

    def select(self, instance: Instance,
               applicable: list[Firing]) -> Firing:
        _require_nonempty(applicable)
        return applicable[-1]


class PriorityPolicy(ChasePolicy):
    """Prefer firings of earlier rules in a given priority order.

    ``priority`` lists translated-rule indices, most preferred first;
    unlisted rules come after all listed ones, in canonical order.
    """

    def __init__(self, priority: list[int], name: str = "priority"):
        self.priority = {index: position
                         for position, index in enumerate(priority)}
        self.name = name

    def select(self, instance: Instance,
               applicable: list[Firing]) -> Firing:
        _require_nonempty(applicable)
        return min(applicable,
                   key=lambda firing: (
                       self.priority.get(firing.rule_index,
                                         len(self.priority)),
                       firing.sort_key()))


class RandomTiePolicy(ChasePolicy):
    """Pseudo-random, state-free selection.

    The choice index is derived from a SHA-256 hash of the salt and the
    instance's canonical text.  Distinct salts behave like independent
    random selections; each fixed salt is a deterministic function of
    the instance, i.e. a legitimate selection of ``App``.
    """

    def __init__(self, salt: int = 0):
        self.salt = int(salt)
        self.name = f"hash[{self.salt}]"

    def select(self, instance: Instance,
               applicable: list[Firing]) -> Firing:
        _require_nonempty(applicable)
        digest = hashlib.sha256(
            f"{self.salt}|{instance.canonical_text()}".encode()).digest()
        index = int.from_bytes(digest[:8], "big") % len(applicable)
        return applicable[index]


class RoundRobinPolicy(ChasePolicy):
    """Rotate the starting rule with the instance size.

    ``|D| mod len(applicable)`` picks the slot - deterministic in ``D``
    yet spreading choices across rules as the chase proceeds.
    """

    name = "round-robin"

    def select(self, instance: Instance,
               applicable: list[Firing]) -> Firing:
        _require_nonempty(applicable)
        return applicable[len(instance) % len(applicable)]


def _require_nonempty(applicable: list[Firing]) -> None:
    if not applicable:
        raise ChaseError("policy invoked with no applicable firings; "
                         "the chase should have stopped (App = {(,)})")


#: The default selection used when callers do not specify one.
DEFAULT_POLICY = FirstPolicy()


def standard_policies() -> list[ChasePolicy]:
    """The policy battery used by chase-independence experiments (E6)."""
    return [FirstPolicy(), LastPolicy(), RoundRobinPolicy(),
            RandomTiePolicy(1), RandomTiePolicy(2), RandomTiePolicy(3)]
