"""Normalization: one random term per rule (Section 3.2's assumption).

The paper's proofs assume each probabilistic rule contains exactly one
parameterized distribution, remarking that multiple distributions are
handled "using their product densities".  :func:`normalize_program`
realizes that remark as a semantics-preserving rewrite: a rule

.. code-block:: text

    R(..ψ_1⟨p̄_1⟩.., ..ψ_2⟨p̄_2⟩..) ← body

becomes

.. code-block:: text

    Split#i#1(c̄, p̄_all, ψ_1⟨p̄_1⟩) ← body
    Split#i#2(c̄, p̄_all, ψ_2⟨p̄_2⟩) ← body
    R(..y_1.., ..y_2..) ← body, Split#i#1(c̄, p̄_all, y_1),
                                Split#i#2(c̄, p̄_all, y_2)

where ``c̄`` are the deterministic head terms and ``p̄_all`` the
concatenated parameters of *all* random terms.  Keying every split
relation by the full ``(c̄, p̄_all)`` tuple reproduces the product
semantics exactly: one joint (independent) sample per ground head
instantiation, matching the functional dependency the unsplit rule
would induce ``(c̄, p̄_all) → (y_1, ..., y_j)``.
"""

from __future__ import annotations

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import RandomTerm, Term, Var

#: Marker prefix of normalization helper relations (unparseable: '#').
SPLIT_PREFIX = "Split#"


def is_split_relation(name: str) -> bool:
    """Whether a relation was introduced by normalization."""
    return name.startswith(SPLIT_PREFIX)


def _fresh_var(rule: Rule, tag: str) -> Var:
    used = {v.name for v in rule.body_variable_set()}
    used.update(v.name for v in rule.head.variable_set())
    candidate = f"v#{tag}"
    while candidate in used:
        candidate += "'"
    return Var(candidate)


def normalize_rule(rule: Rule, rule_tag: str) -> list[Rule]:
    """Rewrite one rule into single-random-term normal form.

    Rules already in normal form are returned unchanged (singleton
    list); see the module docstring for the rewrite.
    """
    random_positions = rule.head.random_positions()
    if len(random_positions) <= 1:
        return [rule]

    carried_terms: list[Term] = [
        term for i, term in enumerate(rule.head.terms)
        if i not in random_positions]
    all_params: list[Term] = []
    for position in random_positions:
        term = rule.head.terms[position]
        assert isinstance(term, RandomTerm)
        all_params.extend(term.params)
    shared_columns = tuple(carried_terms) + tuple(all_params)

    new_rules: list[Rule] = []
    recombination_body: list[Atom] = list(rule.body)
    replacement: dict[int, Var] = {}
    for split_index, position in enumerate(random_positions):
        term = rule.head.terms[position]
        assert isinstance(term, RandomTerm)
        split_relation = f"{SPLIT_PREFIX}{rule_tag}#{split_index}"
        new_rules.append(Rule(
            Atom(split_relation, shared_columns + (term,)), rule.body))
        fresh = _fresh_var(rule, f"{rule_tag}#{split_index}")
        replacement[position] = fresh
        recombination_body.append(
            Atom(split_relation, shared_columns + (fresh,)))

    head_terms = [replacement.get(i, term)
                  for i, term in enumerate(rule.head.terms)]
    new_rules.append(Rule(Atom(rule.head.relation, head_terms),
                          recombination_body))
    return new_rules


def normalize_program(program: Program) -> Program:
    """Rewrite every multi-random-term rule; fixpoint of the program.

    Returns the program unchanged (same object) when already normal.
    """
    if program.is_normal_form():
        return program
    rewritten: list[Rule] = []
    for index, rule in enumerate(program.rules):
        rewritten.extend(normalize_rule(rule, str(index)))
    return Program(rewritten, schema=None, registry=program.registry)


def split_relations(program: Program) -> tuple[str, ...]:
    """Names of helper relations a normalization introduced."""
    return tuple(sorted(
        rule.head.relation for rule in program.rules
        if is_split_relation(rule.head.relation)))
