"""Backward evidence propagation: feasible regions for guided conditioning.

Rejection sampling collapses on rare evidence and likelihood weighting
degenerates to a handful of effective samples - yet the deterministic
fragment of a translated GDatalog program exposes enough structure to
solve evidence *backwards*.  Given observed evidence (instance events
and/or sample-level :class:`~repro.core.observe.Observation`\\ s), this
module derives, for each existential firing that can reach the
evidence, a **feasible region** (:class:`repro.distributions.regions.
Region`): the set of values the draw must land in for the evidence to
have a chance of holding.  The batched chase then samples those draws
from the *truncated* law (:meth:`ParameterizedDistribution.
sample_batch_truncated`) with exact importance weights, turning
exponential rejection into O(1) acceptance on discrete pin sets.

Soundness rests on one invariant: every derived region is a
**necessary condition** - an over-approximation of the feasible set.
The walk only ever *weakens* constraints (dropping join conditions,
giving up on opaque events, capping recursion), never strengthens
them, so the truncated proposal's support always covers the posterior
support and self-normalized importance weighting stays law-exact.
Anything the analysis cannot prove is recorded in
:attr:`BackwardPlan.given_up` and simply not constrained; correctness
then falls to the caller's post-hoc event verification.

The derivation walks *producers* backwards:

* a goal fact over a **stable** relation (one outside the batched
  chase's growable set) either already holds in the shared closed
  instance or is impossible - stable relations never grow;
* a goal over a growable relation reaches it through some
  deterministic rule head; each producing rule contributes one or
  more **scenarios** - conjunctions ``{(aux relation, ground prefix):
  Region}`` of draw constraints - and alternative producers are
  disjuncts;
* a *companion* rule (3.B) ties the head's random position to the
  auxiliary draw: when the rest of its body is confined to stable
  relations, enumerating the matches over the closed instance grounds
  the auxiliary prefix exactly, and the head condition at the sampled
  slot becomes that firing's region.

Evidence is satisfiable iff *some* scenario is; a draw key is
constrained only when it appears in **every** scenario (with the
union of its per-scenario regions) - the necessity argument for
disjunctive evidence.  An empty scenario set short-circuits: the
evidence is unreachable and the posterior undefined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.terms import Const, Var
from repro.core.translate import DetRule, ExistentialProgram
from repro.distributions.regions import Region
from repro.engine.matching import match_atoms
from repro.pdb.events import (AndEvent, AnyValue, AtLeastEvent,
                              Condition, ContainsFactEvent,
                              CountingEvent, Equals, FactSet,
                              FactSetUnion, Interval, OneOf, OrEvent,
                              TrueEvent)
from repro.pdb.facts import Fact

#: Producer-recursion depth cap; beyond it the walk gives up (TRUE).
_MAX_DEPTH = 6
#: Cap on scenarios per disjunction/conjunction product.
_MAX_SCENARIOS = 64
#: Cap on stable-body match enumeration per companion rule.
_MAX_SOLUTIONS = 64


class _Conj(Condition):
    """Conjunction of conditions (internal: head-binding propagation)."""

    def __init__(self, parts: Sequence[Condition]):
        self.parts = tuple(parts)

    def matches(self, value: Any) -> bool:
        return all(part.matches(value) for part in self.parts)

    def __repr__(self) -> str:
        return " ∧ ".join(repr(p) for p in self.parts) or "*"


def region_from_condition(cond: Condition) -> Region | None:
    """The region a value condition denotes, or None when opaque.

    ``None`` means "no constraint derivable" - the sound default for
    :class:`~repro.pdb.events.AnyValue`, negations and unknown
    condition types.  A :class:`_Conj` intersects its representable
    parts and drops the rest (weaker, still necessary).
    """
    if isinstance(cond, Equals):
        return Region.point(cond.constant)
    if isinstance(cond, OneOf):
        return Region.pins(cond.constants)
    if isinstance(cond, Interval):
        return Region.interval(cond.low, cond.high,
                               cond.closed_left, cond.closed_right)
    if isinstance(cond, _Conj):
        region = None
        for part in cond.parts:
            sub = region_from_condition(part)
            if sub is None:
                continue
            region = sub if region is None else region.intersect(sub)
        return region
    return None


@dataclass(frozen=True)
class BackwardPlan:
    """The backward pass's output: draw regions plus diagnostics.

    ``pin_regions`` are observation-derived single-point regions keyed
    by ``(aux relation, carried values)`` - the same key
    :func:`~repro.core.observe._observation_index` uses, so guided
    pinning forces exactly the firings likelihood weighting would
    (with the pin's prior mass/density as the weight factor).
    ``event_regions`` are event-derived regions keyed by ``(aux
    relation, full ground prefix)`` - a key that identifies *one* draw
    per world, which is what makes truncating it a per-draw necessary
    condition.  ``given_up`` records every conservative weakening;
    ``satisfiable=False`` means no chase derivation can reach the
    evidence at all (conditioning is undefined).
    """

    pin_regions: dict = field(default_factory=dict)
    event_regions: dict = field(default_factory=dict)
    given_up: tuple = ()
    satisfiable: bool = True

    @property
    def regions(self) -> dict:
        """The combined lookup table for the batched engine."""
        return {**self.event_regions, **self.pin_regions}

    @property
    def n_pinned(self) -> int:
        """Regions that are finite pin sets (discrete-style)."""
        return sum(1 for region in self.regions.values()
                   if not region.intervals)

    @property
    def n_truncated(self) -> int:
        """Regions with interval parts (continuous truncations)."""
        return sum(1 for region in self.regions.values()
                   if region.intervals)


def backward_plan(translated: ExistentialProgram, closed_source,
                  growable: frozenset,
                  observations: Sequence = (),
                  events: Sequence = ()) -> BackwardPlan:
    """Propagate evidence backwards through the deterministic fragment.

    ``closed_source`` is the batched chase's fact source mirroring the
    shared deterministic fixpoint (stable relations are final there);
    ``growable`` its growable-relation set
    (:meth:`~repro.engine.batched.BatchedChase._collect_growable`).
    Both are duck-typed so the module stays import-light.
    """
    notes: list[str] = []
    pin_regions: dict = {}
    if observations:
        from repro.core.observe import _observation_index
        index = _observation_index(translated, list(observations))
        pin_regions = {key: Region.point(value)
                       for key, value in index.items()}
    walker = _BackwardWalker(translated, closed_source, growable, notes)
    scenarios: list[dict] = [{}]
    for event in events:
        scenarios = _and_scenarios(scenarios,
                                   walker.event_scenarios(event), notes)
        if not scenarios:
            return BackwardPlan(pin_regions, {}, tuple(notes),
                                satisfiable=False)
    event_regions: dict = {}
    if scenarios:
        for key in scenarios[0]:
            if not all(key in scenario for scenario in scenarios[1:]):
                continue
            region = scenarios[0][key]
            for scenario in scenarios[1:]:
                region = region.union(scenario[key])
            event_regions[key] = region
    return BackwardPlan(pin_regions, event_regions, tuple(notes))


def _merge_scenarios(first: dict, second: dict) -> dict | None:
    """Conjoin two scenarios; None when a shared key's regions clash."""
    merged = dict(first)
    for key, region in second.items():
        if key in merged:
            met = merged[key].intersect(region)
            if met.is_empty:
                return None
            merged[key] = met
        else:
            merged[key] = region
    return merged


def _and_scenarios(first: list[dict], second: list[dict],
                   notes: list) -> list[dict]:
    """Cross-product conjunction of scenario lists (capped)."""
    combined: list[dict] = []
    for a in first:
        for b in second:
            merged = _merge_scenarios(a, b)
            if merged is None:
                continue
            combined.append(merged)
            if len(combined) > _MAX_SCENARIOS:
                notes.append("conjunction exceeded the scenario cap; "
                             "constraints dropped")
                return [{}]
    return combined


class _BackwardWalker:
    """One backward pass over a (translated program, closed source)."""

    def __init__(self, translated: ExistentialProgram, source,
                 growable: frozenset, notes: list):
        self.translated = translated
        self.source = source
        self.growable = growable
        self.notes = notes
        self._producers: dict[str, list[DetRule]] = {}
        for rule in translated.rules:
            if isinstance(rule, DetRule):
                self._producers.setdefault(rule.head.relation,
                                           []).append(rule)

    def _give_up(self, why: str) -> list[dict]:
        """TRUE (no constraint) with the reason recorded."""
        self.notes.append(why)
        return [{}]

    # -- event decomposition -------------------------------------------------

    def event_scenarios(self, event) -> list[dict]:
        """Scenario disjunction whose OR the event *implies*."""
        if isinstance(event, TrueEvent):
            return [{}]
        if isinstance(event, ContainsFactEvent):
            return self._fact_scenarios(event.f)
        if isinstance(event, AndEvent):
            scenarios: list[dict] = [{}]
            for part in event.parts:
                scenarios = _and_scenarios(
                    scenarios, self.event_scenarios(part), self.notes)
                if not scenarios:
                    return []
            return scenarios
        if isinstance(event, OrEvent):
            combined: list[dict] = []
            for part in event.parts:
                combined.extend(self.event_scenarios(part))
                if len(combined) > _MAX_SCENARIOS:
                    return self._give_up(
                        "disjunction exceeded the scenario cap")
            return combined
        if isinstance(event, (CountingEvent, AtLeastEvent)):
            if event.n < 1:
                # "exactly/at least zero" carries only negative
                # information; truncating towards it would not be a
                # necessary condition.
                return self._give_up(
                    f"{type(event).__name__}(n={event.n}) carries no "
                    "positive constraint")
            return self._fact_set_scenarios(event.fact_set)
        # Duck-typed fact holders (e.g. the serving layer's _FactEvent
        # wraps its fact as ``.fact`` and is a bare callable).
        duck = getattr(event, "fact", None)
        if isinstance(duck, Fact) and callable(event):
            return self._fact_scenarios(duck)
        return self._give_up(
            f"opaque evidence {event!r} cannot be propagated backwards")

    def _fact_scenarios(self, f: Fact) -> list[dict]:
        if not isinstance(f, Fact):
            # e.g. ContainsFactEvent misused with a FactSet payload -
            # degrade conservatively instead of crashing the walk
            return self._give_up(
                f"fact evidence carries a non-fact payload {f!r}")
        return self._goal(f.relation,
                          tuple(Equals(arg) for arg in f.args), 0, ())

    def _fact_set_scenarios(self, fact_set) -> list[dict]:
        if isinstance(fact_set, FactSetUnion):
            combined: list[dict] = []
            for part in fact_set.parts:
                combined.extend(self._fact_set_scenarios(part))
                if len(combined) > _MAX_SCENARIOS:
                    return self._give_up(
                        "fact-set union exceeded the scenario cap")
            return combined
        if isinstance(fact_set, FactSet):
            return self._goal(fact_set.relation, fact_set.conditions,
                              0, ())
        return self._give_up(f"opaque fact set {fact_set!r}")

    # -- producer analysis ---------------------------------------------------

    def _goal(self, relation: str, conds: tuple, depth: int,
              stack: tuple) -> list[dict]:
        """Scenarios for "some fact of ``relation`` matching ``conds``
        is in the final instance"; ``[]`` means provably impossible."""
        if self._closed_match(relation, conds):
            # Already derivable without any draw: the goal imposes no
            # constraint.  (For stable relations this is complete.)
            return [{}]
        if relation not in self.growable:
            return []
        if relation in self.translated.aux_relations:
            return self._give_up(
                f"evidence reaches auxiliary relation {relation!r}")
        if depth >= _MAX_DEPTH:
            return self._give_up(
                f"backward reach through {relation!r} exceeded the "
                "depth cap")
        if relation in stack:
            return self._give_up(
                f"recursive reach through {relation!r}")
        scenarios: list[dict] = []
        for rule in self._producers.get(relation, ()):
            scenarios.extend(self._rule_scenarios(
                rule, conds, depth, stack + (relation,)))
            if len(scenarios) > _MAX_SCENARIOS:
                return self._give_up(
                    f"producers of {relation!r} exceeded the scenario "
                    "cap")
        return scenarios

    def _closed_match(self, relation: str, conds: tuple) -> bool:
        for f in self.source.facts_of(relation):
            if len(f.args) != len(conds):
                continue
            if all(cond.matches(value)
                   for cond, value in zip(conds, f.args)):
                return True
        return False

    def _rule_scenarios(self, rule: DetRule, conds: tuple, depth: int,
                        stack: tuple) -> list[dict]:
        """Scenarios under which ``rule`` produces a matching fact."""
        head = rule.head
        if len(head.terms) != len(conds):
            return []
        binding_conds: dict[Var, list] = {}
        for term, cond in zip(head.terms, conds):
            if isinstance(term, Const):
                if not cond.matches(term.value):
                    return []
            elif isinstance(term, Var):
                binding_conds.setdefault(term, []).append(cond)
            else:
                return self._give_up(
                    f"unexpected head term {term!r} in {rule!r}")
        eq_binding: dict[Var, Any] = {}
        for var, cond_list in binding_conds.items():
            values = [c.constant for c in cond_list
                      if isinstance(c, Equals)]
            if not values:
                continue
            value = values[0]
            if any(other != value for other in values[1:]):
                return []
            if not all(c.matches(value) for c in cond_list):
                return []
            eq_binding[var] = value
        aux_atoms = [atom for atom in rule.body
                     if atom.relation in self.translated.aux_relations]
        if aux_atoms:
            if len(aux_atoms) > 1:
                return self._give_up(
                    f"rule {rule!r} joins several auxiliary atoms")
            return self._companion_scenarios(
                rule, aux_atoms[0], conds, binding_conds, eq_binding,
                depth, stack)
        return self._body_scenarios(rule.body, binding_conds,
                                    eq_binding, depth, stack)

    def _atom_conditions(self, atom, binding_conds: dict,
                         ) -> tuple | None:
        """Per-position conditions a body atom inherits from the head."""
        conds: list[Condition] = []
        for term in atom.terms:
            if isinstance(term, Const):
                conds.append(Equals(term.value))
            elif isinstance(term, Var):
                bound = binding_conds.get(term)
                conds.append(_Conj(bound) if bound else _ANY)
            else:
                return None
        return tuple(conds)

    def _body_scenarios(self, atoms, binding_conds: dict,
                        eq_binding: dict, depth: int,
                        stack: tuple) -> list[dict]:
        """Conjoin the body atoms as independent reachability subgoals.

        Cross-atom join constraints beyond equality-ground variables
        are deliberately ignored - dropping a conjunct only weakens
        the derived condition, which keeps it necessary.
        """
        scenarios: list[dict] = [{}]
        for atom in atoms:
            sub_conds = self._atom_conditions(atom, binding_conds)
            if sub_conds is None:
                return self._give_up(
                    f"opaque body atom {atom!r}")
            sub = self._goal(atom.relation, sub_conds, depth + 1, stack)
            if not sub:
                return []
            scenarios = _and_scenarios(scenarios, sub, self.notes)
            if not scenarios:
                return []
        return scenarios

    def _companion_scenarios(self, rule: DetRule, aux_atom,
                             conds: tuple, binding_conds: dict,
                             eq_binding: dict, depth: int,
                             stack: tuple) -> list[dict]:
        """Scenarios for a (3.B) companion producing the goal fact.

        The head condition at the existential slot becomes the draw's
        region; the rest of the body, when confined to stable
        relations, is enumerated against the closed instance to ground
        the auxiliary prefix exactly (one scenario per match - each
        match is an alternative firing, so alternatives stay
        disjuncts and the necessity argument survives).
        """
        existential = aux_atom.terms[-1]
        draw_conds = [cond for term, cond in zip(rule.head.terms, conds)
                      if term == existential]
        region = region_from_condition(_Conj(draw_conds)) \
            if draw_conds else None
        if region is not None and region.is_empty:
            return []
        rest = [atom for atom in rule.body if atom is not aux_atom]
        if region is None \
                or any(atom.relation in self.growable for atom in rest):
            # Either no draw condition is representable, or the
            # companion body reaches growable relations (the stable
            # enumeration below would be incomplete).  Keep the
            # reachability subgoals, drop the draw constraint.
            if region is not None:
                self.notes.append(
                    f"dropped draw constraint on {aux_atom.relation!r}:"
                    " companion body reaches growable relations")
            return self._body_scenarios(rest, binding_conds,
                                        eq_binding, depth, stack)
        scenarios: list[dict] = []
        restricted = {var: value for var, value in eq_binding.items()
                      if var != existential}
        for count, solution in enumerate(
                match_atoms(rest, self.source, restricted)):
            if count >= _MAX_SOLUTIONS:
                return self._give_up(
                    f"companion matches of {aux_atom.relation!r} "
                    "exceeded the solution cap")
            if not self._solution_admissible(solution, binding_conds,
                                             existential):
                continue
            prefix = self._ground_prefix(aux_atom, solution, eq_binding)
            if prefix is None:
                # Reachable, but the firing is not identified: the
                # goal holds without constraining any single draw.
                scenarios.append({})
            else:
                scenarios.append({(aux_atom.relation, prefix): region})
            if len(scenarios) > _MAX_SCENARIOS:
                return self._give_up(
                    f"companion matches of {aux_atom.relation!r} "
                    "exceeded the scenario cap")
        return scenarios

    @staticmethod
    def _solution_admissible(solution: dict, binding_conds: dict,
                             existential) -> bool:
        """Whether a body match satisfies the non-equality head conds."""
        for var, cond_list in binding_conds.items():
            if var == existential or var not in solution:
                continue
            value = solution[var]
            if not all(cond.matches(value) for cond in cond_list):
                return False
        return True

    @staticmethod
    def _ground_prefix(aux_atom, solution: dict,
                       eq_binding: dict) -> tuple | None:
        """The fully ground auxiliary prefix, or None if underivable."""
        prefix: list = []
        for term in aux_atom.terms[:-1]:
            if isinstance(term, Const):
                prefix.append(term.value)
            elif isinstance(term, Var):
                if term in solution:
                    prefix.append(solution[term])
                elif term in eq_binding:
                    prefix.append(eq_binding[term])
                else:
                    return None
            else:
                return None
        return tuple(prefix)


_ANY = AnyValue()
