"""Induced functional dependencies (Section 3.5, Lemma 3.10).

Each existential rule ``φ̂`` of a translated program induces the
functional dependency ``FD(φ̂): R_i: A_1, ..., A_{k−1} → A_k`` on its
auxiliary relation: the deterministic columns (carried head values and
parameters) determine the sampled value.  Lemma 3.10 states that every
instance reachable by the chase satisfies all induced FDs - the formal
content of "each rule samples at most once per valuation".

This module makes the FDs first-class so tests can verify the lemma on
arbitrary chase runs, and so diagnostics can report violations (which
would indicate a chase bug - they are impossible by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.translate import ExistentialProgram
from repro.pdb.instances import Instance


@dataclass(frozen=True)
class FunctionalDependency:
    """``relation: determinant positions → dependent position``."""

    relation: str
    determinants: tuple[int, ...]
    dependent: int

    def holds_in(self, instance: Instance) -> bool:
        """Whether every fact pair of the relation respects the FD."""
        return not self.violations(instance)

    def violations(self, instance: Instance,
                   ) -> list[tuple[tuple, set]]:
        """Determinant values mapped to more than one dependent value."""
        seen: dict[tuple, set] = {}
        for f in instance.facts_of(self.relation):
            key = tuple(f.args[i] for i in self.determinants)
            seen.setdefault(key, set()).add(f.args[self.dependent])
        return [(key, values) for key, values in seen.items()
                if len(values) > 1]

    def __repr__(self) -> str:
        dets = ", ".join(f"A{i}" for i in self.determinants)
        return f"FD({self.relation}: {dets} → A{self.dependent})"


def induced_fds(translated: ExistentialProgram,
                ) -> list[FunctionalDependency]:
    """The FDs induced by the existential rules (one per aux relation).

    Auxiliary relations always store the sampled value last, so every
    induced FD has the form "all columns but the last determine the
    last" (cf. the translation layout in :mod:`repro.core.translate`).
    """
    fds = []
    for name in sorted(translated.aux_info):
        info = translated.aux_info[name]
        fds.append(FunctionalDependency(
            name, tuple(range(info.arity - 1)), info.arity - 1))
    return fds


def check_all_fds(translated: ExistentialProgram,
                  instance: Instance) -> bool:
    """Lemma 3.10 check: the instance satisfies every induced FD."""
    return all(fd.holds_in(instance) for fd in induced_fds(translated))


def fd_violation_report(translated: ExistentialProgram,
                        instances: Iterable[Instance]) -> list[str]:
    """Human-readable FD violations across instances (expected: none)."""
    report: list[str] = []
    fds = induced_fds(translated)
    for index, instance in enumerate(instances):
        for fd in fds:
            for key, values in fd.violations(instance):
                report.append(
                    f"instance #{index}: {fd!r} violated at {key!r} "
                    f"with values {sorted(map(repr, values))}")
    return report
