"""Parser for the textual GDatalog surface syntax.

The grammar mirrors the paper's notation, ASCII-fied:

.. code-block:: text

    program  := (rule)*
    rule     := atom ( ":-" | "<-" | "←" ) body "." | atom "."
    body     := "true" | "⊤" | atom ("," atom)*
    atom     := RELATION "(" term ("," term)* ")"
    term     := VARIABLE | constant | DIST "<" param ("," param)* ">"
    param    := VARIABLE | constant
    constant := NUMBER | STRING | "true" | "false"

Conventions: relation and distribution names start with an uppercase
letter, variables with a lowercase letter or underscore.  Distribution
names are resolved against a :class:`DistributionRegistry`; a name in
angle-bracket position that is not registered is a parse error.  Both
``%`` and ``#`` start line comments.  The paper's examples parse
directly, e.g.::

    Earthquake(c, Flip<0.1>) :- City(c, r).
    Unit(h, c) :- House(h, c).
    PHeight(p, Normal<mu, sigma2>) :- PCountry(p, c), CMoments(c, mu, sigma2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.atoms import Atom
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Term, Var
from repro.distributions.registry import DistributionRegistry
from repro.errors import ParseError

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_PUNCT = {
    "(": "LPAREN", ")": "RPAREN", ",": "COMMA", ".": "DOT",
    "<": "LANGLE", ">": "RANGLE",
}


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens; raises :class:`ParseError` on illegal characters."""
    line = 1
    column = 1
    index = 0
    n = len(text)
    while index < n:
        ch = text[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch in "%#":
            while index < n and text[index] != "\n":
                index += 1
            continue
        start_column = column
        if text.startswith(":-", index):
            yield Token("ARROW", ":-", line, start_column)
            index += 2
            column += 2
            continue
        if text.startswith("<-", index) and not (
                index + 2 < n and (text[index + 2].isdigit()
                                   or text[index + 2] == ".")):
            # "<-" is the rule arrow - except in "Normal<-1.5, ...>",
            # where "<" opens a parameter list and "-1.5" is a negative
            # number (a rule arrow is never followed by a digit).
            yield Token("ARROW", "<-", line, start_column)
            index += 2
            column += 2
            continue
        if ch == "←":
            yield Token("ARROW", ch, line, start_column)
            index += 1
            column += 1
            continue
        if ch == "⊤":
            yield Token("TOP", ch, line, start_column)
            index += 1
            column += 1
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line, start_column)
            index += 1
            column += 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            index += 1
            column += 1
            chars: list[str] = []
            while index < n and text[index] != quote:
                if text[index] == "\n":
                    raise ParseError("unterminated string literal",
                                     line, start_column)
                if text[index] == "\\" and index + 1 < n:
                    index += 1
                    column += 1
                chars.append(text[index])
                index += 1
                column += 1
            if index >= n:
                raise ParseError("unterminated string literal",
                                 line, start_column)
            index += 1
            column += 1
            yield Token("STRING", "".join(chars), line, start_column)
            continue
        if ch.isdigit() or (ch in "+-" and index + 1 < n
                            and (text[index + 1].isdigit()
                                 or text[index + 1] == ".")):
            begin = index
            index += 1
            column += 1
            while index < n and (text[index].isdigit()
                                 or text[index] in ".eE"
                                 or (text[index] in "+-"
                                     and text[index - 1] in "eE")):
                index += 1
                column += 1
            yield Token("NUMBER", text[begin:index], line, start_column)
            continue
        if ch.isalpha() or ch == "_":
            begin = index
            while index < n and (text[index].isalnum()
                                 or text[index] in "_'"):
                index += 1
                column += 1
            yield Token("NAME", text[begin:index], line, start_column)
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    yield Token("EOF", "", line, column)


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str, registry: DistributionRegistry):
        self.tokens = list(tokenize(text))
        self.position = 0
        self.registry = registry

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                token.line, token.column)
        return self.advance()

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> list[Rule]:
        rules: list[Rule] = []
        while self.current.kind != "EOF":
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        head = self.parse_atom(allow_random=True)
        body: list[Atom] = []
        if self.accept("ARROW"):
            if self.accept("TOP") is None:
                if self.current.kind == "NAME" \
                        and self.current.text == "true" \
                        and self.tokens[self.position + 1].kind == "DOT":
                    self.advance()
                else:
                    body.append(self.parse_atom(allow_random=False))
                    while self.accept("COMMA"):
                        body.append(self.parse_atom(allow_random=False))
        self.expect("DOT")
        return Rule(head, body)

    def parse_atom(self, allow_random: bool) -> Atom:
        name_token = self.expect("NAME")
        name = name_token.text
        if not name[:1].isupper():
            raise ParseError(
                f"relation names start uppercase, got {name!r}",
                name_token.line, name_token.column)
        self.expect("LPAREN")
        terms = [self.parse_term(allow_random)]
        while self.accept("COMMA"):
            terms.append(self.parse_term(allow_random))
        self.expect("RPAREN")
        return Atom(name, terms)

    def parse_term(self, allow_random: bool) -> Term:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return Const(_parse_number(token))
        if token.kind == "STRING":
            self.advance()
            return Const(token.text)
        if token.kind == "NAME":
            self.advance()
            text = token.text
            if text == "true":
                return Const(1)
            if text == "false":
                return Const(0)
            if text[:1].isupper():
                # A distribution term Name<...> or an error.
                if self.current.kind != "LANGLE":
                    raise ParseError(
                        f"uppercase name {text!r} in term position must be "
                        "a distribution with <...> parameters",
                        token.line, token.column)
                if not allow_random:
                    raise ParseError(
                        f"random term {text!r}<...> not allowed in rule "
                        "bodies (Definition 3.3)",
                        token.line, token.column)
                return self.parse_random_term(token)
            return Var(text)
        raise ParseError(
            f"expected a term, found {token.kind} ({token.text!r})",
            token.line, token.column)

    def parse_random_term(self, name_token: Token) -> RandomTerm:
        # Distribution names may carry primes (Flip'); map to registry
        # aliases (Flip' -> FlipPrime) for the paper's Example 1.1.
        name = name_token.text.replace("'", "Prime")
        if name not in self.registry:
            raise ParseError(
                f"unknown distribution {name_token.text!r}",
                name_token.line, name_token.column)
        distribution = self.registry[name]
        self.expect("LANGLE")
        params: list[Term] = []
        if self.current.kind != "RANGLE":
            params.append(self.parse_param())
            while self.accept("COMMA"):
                params.append(self.parse_param())
        self.expect("RANGLE")
        return RandomTerm(distribution, params)

    def parse_param(self) -> Term:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return Const(_parse_number(token))
        if token.kind == "STRING":
            self.advance()
            return Const(token.text)
        if token.kind == "NAME":
            self.advance()
            if token.text == "true":
                return Const(1)
            if token.text == "false":
                return Const(0)
            if token.text[:1].isupper():
                raise ParseError(
                    "distribution parameters must be constants or "
                    f"variables, got {token.text!r}",
                    token.line, token.column)
            return Var(token.text)
        raise ParseError(
            f"expected a parameter, found {token.kind} ({token.text!r})",
            token.line, token.column)


def _parse_number(token: Token):
    text = token.text
    try:
        if any(c in text for c in ".eE"):
            return float(text)
        return int(text)
    except ValueError:
        raise ParseError(f"bad number literal {text!r}",
                         token.line, token.column) from None


def parse_program(text: str,
                  registry: DistributionRegistry) -> list[Rule]:
    """Parse program text into rules (see module docstring)."""
    return _Parser(text, registry).parse_program()


def parse_rule(text: str, registry: DistributionRegistry) -> Rule:
    """Parse a single rule (must consume all input)."""
    rules = parse_program(text, registry)
    if len(rules) != 1:
        raise ParseError(f"expected exactly one rule, found {len(rules)}")
    return rules[0]
