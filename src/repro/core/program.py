"""GDatalog programs: finite collections of rules (Definition 3.3).

A :class:`Program` owns its rules, the (optional) schema, and the
distribution family ``Ψ`` used by its random terms.  It exposes the
derived structure needed downstream: intensional/extensional relation
split, the Datalog-with-existentials translation (via
:mod:`repro.core.translate`), normalization, and validation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.atoms import Atom
from repro.core.rules import Rule
from repro.core.terms import RandomTerm
from repro.distributions.registry import DEFAULT_REGISTRY, \
    DistributionRegistry
from repro.errors import ValidationError
from repro.pdb.schema import Schema


class Program:
    """An immutable GDatalog program.

    Parameters
    ----------
    rules:
        The rules, in source order (order is irrelevant semantically -
        Theorem 6.1 - but used for deterministic tie-breaking).
    extensional:
        Names of extensional relations.  If omitted, every relation that
        never occurs in a rule head is treated as extensional - the
        usual Datalog convention.
    schema:
        Optional typed schema for validation.
    registry:
        The distribution family ``Ψ``; defaults to the standard family.
    """

    def __init__(self, rules: Iterable[Rule],
                 extensional: Iterable[str] | None = None,
                 schema: Schema | None = None,
                 registry: DistributionRegistry | None = None):
        self.rules = tuple(rules)
        self.schema = schema
        self.registry = registry or DEFAULT_REGISTRY
        if not self.rules:
            raise ValidationError("a program must contain at least one rule")

        head_relations = frozenset(r.head.relation for r in self.rules)
        body_relations = frozenset(
            a.relation for r in self.rules for a in r.body)
        if extensional is None:
            self.extensional = frozenset(body_relations - head_relations)
        else:
            self.extensional = frozenset(extensional)
            clash = self.extensional & head_relations
            if clash:
                raise ValidationError(
                    f"extensional relations in rule heads: {sorted(clash)}")
        self.intensional = frozenset(
            head_relations | (body_relations - self.extensional))
        self._validate()

    def _validate(self) -> None:
        for rule in self.rules:
            if self.schema is not None:
                rule.validate_against(self.schema, self.extensional)

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str,
              registry: DistributionRegistry | None = None,
              schema: Schema | None = None,
              extensional: Iterable[str] | None = None) -> "Program":
        """Parse the textual GDatalog syntax (see :mod:`repro.core.parser`).

        >>> program = Program.parse('''
        ...     Earthquake(c, Flip<0.1>) :- City(c, r).
        ... ''')
        """
        from repro.core.parser import parse_program
        rules = parse_program(text, registry or DEFAULT_REGISTRY)
        return cls(rules, extensional=extensional, schema=schema,
                   registry=registry or DEFAULT_REGISTRY)

    # -- structure ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def random_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_random())

    def deterministic_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if not r.is_random())

    def is_deterministic(self) -> bool:
        """Whether the program is plain Datalog (no random rules)."""
        return not any(r.is_random() for r in self.rules)

    def is_discrete(self) -> bool:
        """Whether every random term uses a discrete distribution.

        Discrete programs admit exact chase enumeration
        (:mod:`repro.core.exact`); continuous ones require sampling.
        """
        return all(term.distribution.is_discrete
                   for rule in self.rules
                   for term in rule.random_terms())

    def is_normal_form(self) -> bool:
        """At most one random term per rule (the proofs' assumption)."""
        return all(rule.is_normal_form() for rule in self.rules)

    def distributions_used(self) -> tuple[str, ...]:
        names = {term.distribution.name
                 for rule in self.rules for term in rule.random_terms()}
        return tuple(sorted(names))

    def relations(self) -> tuple[str, ...]:
        return tuple(sorted(self.intensional | self.extensional))

    def head_relations(self) -> frozenset[str]:
        return frozenset(r.head.relation for r in self.rules)

    # -- derived programs --------------------------------------------------------

    def translate(self):
        """The associated Datalog-with-existentials program ``Ĝ``
        (Section 3.2, this paper's per-rule semantics)."""
        from repro.core.translate import translate
        return translate(self)

    def translate_barany(self):
        """The translation matching Bárány et al.'s semantics (§6.2):
        samples keyed by (distribution name, parameters)."""
        from repro.core.translate import translate_barany
        return translate_barany(self)

    def normalized(self) -> "Program":
        """Rewrite to single-random-term normal form
        (:func:`repro.core.normalize.normalize_program`)."""
        from repro.core.normalize import normalize_program
        return normalize_program(self)

    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        """A copy of this program with a different rule set."""
        return Program(rules, extensional=None, schema=self.schema,
                       registry=self.registry)

    # -- identity -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Program)
                and self.rules == other.rules
                and self.extensional == other.extensional)

    def __hash__(self) -> int:
        return hash((self.rules, self.extensional))

    def __repr__(self) -> str:
        lines = [repr(rule) for rule in self.rules]
        return "Program(\n  " + "\n  ".join(lines) + "\n)"

    def pretty(self) -> str:
        """Multi-line source-like rendering."""
        return "\n".join(repr(rule) for rule in self.rules)


def program_of(*rules: Rule, **kwargs) -> Program:
    """Convenience constructor from rule arguments."""
    return Program(rules, **kwargs)


def collect_random_terms(program: Program) -> list[tuple[Rule, int,
                                                         RandomTerm]]:
    """All random terms with their rule and head position."""
    collected: list[tuple[Rule, int, RandomTerm]] = []
    for rule in program.rules:
        for position in rule.head.random_positions():
            term = rule.head.terms[position]
            assert isinstance(term, RandomTerm)
            collected.append((rule, position, term))
    return collected


def head_atom_relations(program: Program) -> dict[str, list[Atom]]:
    """Head atoms grouped by relation name."""
    grouped: dict[str, list[Atom]] = {}
    for rule in program.rules:
        grouped.setdefault(rule.head.relation, []).append(rule.head)
    return grouped
