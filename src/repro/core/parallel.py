"""The parallel probabilistic chase (Section 5).

A parallel chase step (Definition 5.1) fires *all* applicable pairs of
``App(D)`` simultaneously: deterministic firings add their head facts,
and every existential firing draws its sample independently - the
product-measure structure the paper makes explicit (and justifies via
Fubini: the order of the independent draws is irrelevant).

Because applicable pairs are keyed by their ground head instantiation
(see :mod:`repro.core.applicability`), distinct existential firings
target distinct auxiliary prefixes, so the simultaneous extension never
violates the induced functional dependencies (Lemma 3.10) - including
under the Bárány translation, where several source rules may share an
auxiliary relation and are collapsed into a single firing.

Unlike the sequential chase, the parallel chase needs no policy: the
parallel chase step from an instance is unique (remark after
Definition 5.1), which is also why its tree ``T_App,D0`` is determined
by the root instance alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.applicability import NaiveApplicability
from repro.core.chase import (DEFAULT_MAX_STEPS, ChaseRun, ChaseStep,
                              _as_rng, _as_translated, fire, make_engine)
from repro.core.program import Program
from repro.core.translate import ExistentialProgram
from repro.measures.kernels import SamplerKernel
from repro.measures.markov import MarkovProcess
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


def run_parallel_chase(program: Program | ExistentialProgram,
                       instance: Instance | None = None,
                       rng: np.random.Generator | int | None = None,
                       max_steps: int = DEFAULT_MAX_STEPS,
                       engine: str = "incremental",
                       record_trace: bool = False) -> ChaseRun:
    """Run one parallel chase to termination or budget exhaustion.

    ``max_steps`` counts *parallel* steps (tree levels); each step may
    add many facts.  The firing configuration ``ℓ(D)`` of Section 5.1
    is simply the multiset of rules behind the applicable firings.
    """
    translated = _as_translated(program)
    instance = instance if instance is not None else Instance.empty()
    state = make_engine(translated, instance, engine)
    return run_parallel_chase_prepared(translated, state, instance,
                                       _as_rng(rng), max_steps,
                                       record_trace)


def run_parallel_chase_prepared(translated: ExistentialProgram,
                                state, instance: Instance,
                                rng: np.random.Generator,
                                max_steps: int = DEFAULT_MAX_STEPS,
                                record_trace: bool = False) -> ChaseRun:
    """Parallel-chase hot loop over a pre-built applicability state.

    Batched callers (:meth:`repro.api.Session.sample`) construct the
    engine once and ``fork()`` it per run; ``state`` must reflect
    exactly ``instance`` and is consumed.
    """
    current = instance
    trace: list[ChaseStep] | None = [] if record_trace else None

    for step_count in range(max_steps):
        applicable = state.applicable()
        if not applicable:
            return ChaseRun(current, True, step_count,
                            tuple(trace) if trace is not None else None)
        # All firings sample against the *current* instance, then the
        # extensions are applied jointly (Ext of Definition 3.7).
        new_facts: list[Fact] = []
        for firing in applicable:
            new_fact = fire(translated, firing, rng)
            new_facts.append(new_fact)
            if trace is not None:
                trace.append(ChaseStep(firing, new_fact))
        for new_fact in new_facts:
            state.add_fact(new_fact)
        current = current.add_all(new_facts)

    terminated = not state.applicable()
    return ChaseRun(current, terminated, max_steps,
                    tuple(trace) if trace is not None else None)


def firing_configuration(program: Program | ExistentialProgram,
                         instance: Instance) -> dict[int, int]:
    """The firing configuration ``ℓ(D)``: rule index -> firing count.

    (Section 5.1: ``ℓ_i = |{ā : (φ̂_i, ā) ∈ App(D)}|``.)  Only rules
    with at least one applicable firing appear.
    """
    translated = _as_translated(program)
    configuration: dict[int, int] = {}
    for firing in NaiveApplicability(translated, instance).applicable():
        configuration[firing.rule_index] = \
            configuration.get(firing.rule_index, 0) + 1
    return configuration


def parallel_step_kernel(program: Program | ExistentialProgram,
                         ) -> SamplerKernel:
    """The parallel step kernel ``step_App`` (Proposition 5.3).

    Identity on instances without applicable pairs, one full parallel
    extension otherwise.
    """
    translated = _as_translated(program)

    def step(instance: Instance, rng: np.random.Generator) -> Instance:
        engine = NaiveApplicability(translated, instance)
        applicable = engine.applicable()
        if not applicable:
            return instance
        return instance.add_all(
            fire(translated, firing, rng) for firing in applicable)

    return SamplerKernel(step)


def parallel_markov_process(program: Program | ExistentialProgram,
                            ) -> MarkovProcess:
    """The parallel chase as a Markov process (Corollary 5.4)."""
    translated = _as_translated(program)

    def is_absorbing(instance: Instance) -> bool:
        return not NaiveApplicability(translated, instance).applicable()

    return MarkovProcess(parallel_step_kernel(translated), is_absorbing)
