"""Atoms of GDatalog (Definition 3.2).

An atom ``R(t_1, ..., t_n)`` pairs a relation symbol with a term tuple.
Random atoms contain at least one random term and may only head rules
over the intensional schema; deterministic atoms contain only variables
and constants.  Ground atoms (all constants) coincide with facts.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.terms import Const, RandomTerm, Term, Var, as_term, \
    substitute
from repro.errors import ValidationError
from repro.pdb.facts import Fact
from repro.pdb.schema import Schema


class Atom:
    """An atom: relation symbol applied to terms."""

    __slots__ = ("relation", "terms")

    def __init__(self, relation: str, terms: Iterable[Term]):
        if not relation:
            raise ValidationError("atom relation name must be non-empty")
        self.relation = relation
        self.terms = tuple(terms)
        if not self.terms:
            raise ValidationError(
                f"atom {relation!r} must have at least one term")
        for term in self.terms:
            if not isinstance(term, Term):
                raise ValidationError(f"not a term: {term!r}")

    # -- structure ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.terms)

    def is_random(self) -> bool:
        """Whether any argument is a random term."""
        return any(t.is_random() for t in self.terms)

    def random_positions(self) -> tuple[int, ...]:
        """Indices of random-term arguments."""
        return tuple(i for i, t in enumerate(self.terms) if t.is_random())

    def random_terms(self) -> tuple[RandomTerm, ...]:
        return tuple(t for t in self.terms if isinstance(t, RandomTerm))

    def variables(self) -> Iterator[Var]:
        """All variables, including those inside random-term parameters."""
        for term in self.terms:
            yield from term.variables()

    def variable_set(self) -> frozenset[Var]:
        return frozenset(self.variables())

    def is_ground(self) -> bool:
        return all(isinstance(t, Const) for t in self.terms)

    # -- grounding -----------------------------------------------------------

    def ground(self, binding: dict[Var, Any]) -> Fact:
        """The fact obtained by applying a valuation (deterministic atoms).

        This is the paper's ``f_φ̂`` head-instantiation map restricted to
        deterministic atoms; random atoms are grounded by the chase via
        the Datalog-with-existentials translation.
        """
        if self.is_random():
            raise ValidationError(
                f"cannot ground random atom {self!r} by substitution")
        return Fact(self.relation,
                    tuple(substitute(t, binding) for t in self.terms))

    def to_fact(self) -> Fact:
        """The fact denoted by a ground atom."""
        return self.ground({})

    # -- identity ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Atom)
                and self.relation == other.relation
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return hash((self.relation, self.terms))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"

    # -- validation -----------------------------------------------------------

    def validate_against(self, schema: Schema, intensional: bool) -> None:
        """Check Definition 3.2's constraints against a schema.

        Constants must lie in their attribute domains; random terms are
        only allowed if the atom is intensional and the distribution's
        sample space embeds into the attribute domain.
        """
        relation_schema = schema.get(self.relation)
        if relation_schema is None:
            return  # schema-free program: nothing to check
        if relation_schema.arity != self.arity:
            raise ValidationError(
                f"atom {self!r} has arity {self.arity}, relation declares "
                f"{relation_schema.arity}")
        for position, term in enumerate(self.terms):
            domain = relation_schema.domains[position]
            if isinstance(term, Const) and not domain.contains(term.value):
                raise ValidationError(
                    f"constant {term.value!r} outside domain {domain} at "
                    f"position {position} of {self!r}")
            if isinstance(term, RandomTerm):
                if not intensional or relation_schema.extensional:
                    raise ValidationError(
                        f"random term in extensional atom {self!r}")


def atom(relation: str, *term_specs: Any) -> Atom:
    """Convenience constructor coercing specs via :func:`as_term`.

    >>> atom("R", "x", 1)
    R(x, 1)
    """
    return Atom(relation, tuple(as_term(spec) for spec in term_specs))
