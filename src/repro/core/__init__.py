"""GDatalog core: syntax, translation, chase, and semantics."""

from repro.core.applicability import (Firing, IncrementalApplicability,
                                      NaiveApplicability,
                                      OverlayApplicability,
                                      applicable_pairs, overlay_fork)
from repro.core.atoms import Atom, atom
from repro.core.barany import (TaggedDistribution,
                               simulation_helper_relations,
                               to_barany_simulation, to_grohe_simulation)
from repro.core.chase import (ChaseRun, ChaseStep, chase_markov_process,
                              chase_outputs, chase_step_kernel, fire,
                              run_chase, run_chase_prepared)
from repro.core.constraints import (ConstrainedProgram, RejectionResult,
                                    condition_by_rejection,
                                    condition_exact)
from repro.core.exact import (ChaseNode, enumerate_chase_tree,
                              exact_parallel_spdb, exact_sequential_spdb)
from repro.core.fd import (FunctionalDependency, check_all_fds,
                           fd_violation_report, induced_fds)
from repro.core.normalize import (is_split_relation, normalize_program,
                                  normalize_rule)
from repro.core.observe import (Observation, WeightingResult,
                                likelihood_weighting, observe)
from repro.core.parallel import (firing_configuration,
                                 parallel_markov_process,
                                 parallel_step_kernel,
                                 run_parallel_chase,
                                 run_parallel_chase_prepared)
from repro.core.parser import parse_program, parse_rule
from repro.core.policies import (DEFAULT_POLICY, ChasePolicy, FirstPolicy,
                                 LastPolicy, PriorityPolicy,
                                 RandomTiePolicy, RoundRobinPolicy,
                                 standard_policies)
from repro.core.program import Program, program_of
from repro.core.rules import Rule, fact_rule
from repro.core.semantics import (MassReport, apply_to_pdb, exact_spdb,
                                  sample_spdb, spdb_mass_report)
from repro.core.source import (atom_to_source, program_to_source,
                               rule_to_source, term_to_source)
from repro.core.terms import Const, RandomTerm, Term, Var, as_term
from repro.core.termination import (TerminationEstimate,
                                    TerminationReport,
                                    analyze_termination,
                                    estimate_termination_probability,
                                    position_graph, weakly_acyclic)
from repro.core.translate import (ExistentialProgram, is_aux_relation,
                                  translate, translate_barany)

__all__ = [
    "Atom", "ChaseNode", "ChasePolicy", "ChaseRun", "ChaseStep",
    "ConstrainedProgram", "Observation", "RejectionResult",
    "WeightingResult", "atom_to_source", "condition_by_rejection",
    "condition_exact", "likelihood_weighting", "observe",
    "program_to_source", "rule_to_source", "term_to_source", "Const",
    "DEFAULT_POLICY", "ExistentialProgram", "Firing", "FirstPolicy",
    "FunctionalDependency", "IncrementalApplicability", "LastPolicy",
    "MassReport", "NaiveApplicability", "OverlayApplicability",
    "PriorityPolicy", "Program",
    "RandomTerm", "RandomTiePolicy", "RoundRobinPolicy", "Rule",
    "TaggedDistribution", "Term", "TerminationEstimate",
    "TerminationReport", "Var", "analyze_termination",
    "applicable_pairs", "apply_to_pdb", "as_term", "atom",
    "overlay_fork",
    "chase_markov_process", "chase_outputs", "chase_step_kernel",
    "check_all_fds", "enumerate_chase_tree",
    "estimate_termination_probability", "exact_parallel_spdb",
    "exact_sequential_spdb", "exact_spdb", "fact_rule",
    "fd_violation_report", "fire", "firing_configuration",
    "induced_fds", "is_aux_relation", "is_split_relation",
    "normalize_program", "normalize_rule", "parallel_markov_process",
    "parallel_step_kernel", "parse_program", "parse_rule",
    "position_graph", "program_of", "run_chase", "run_chase_prepared",
    "run_parallel_chase", "run_parallel_chase_prepared",
    "sample_spdb", "simulation_helper_relations", "spdb_mass_report",
    "standard_policies", "to_barany_simulation", "to_grohe_simulation",
    "translate", "translate_barany", "weakly_acyclic",
]
