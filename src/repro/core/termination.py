"""Termination analysis: weak acyclicity and beyond (Section 6.3).

Theorem 6.3 (from [3, Theorem 3.10]): weakly acyclic GDatalog programs
terminate on every input.  Weak acyclicity is the classical criterion
for existential rules, evaluated on the translated program ``Ĝ``:

* build the *position graph* whose nodes are (relation, position)
  pairs;
* for every rule and every variable ``x`` occurring at body position
  ``π`` and head position ``π'``: a **regular** edge ``π → π'``;
* for every existential rule, every body position ``π`` of every
  variable that appears in the head, and the existential position
  ``π''``: a **special** edge ``π ⇒ π''``;
* the program is weakly acyclic iff no cycle traverses a special edge.

Section 6.3 argues further that a cycle through a *continuous*
distribution is fatal: fresh continuous samples almost surely avoid
every finite set, so the rule keeps firing and the program is almost
surely non-terminating.  Cycles through *discrete* distributions may
still terminate with positive probability (the paper leaves bounds to
future work); :func:`estimate_termination_probability` provides the
empirical estimator used by experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.chase import make_engine, run_chase_prepared
from repro.core.policies import DEFAULT_POLICY, ChasePolicy
from repro.core.program import Program
from repro.core.terms import Var
from repro.core.translate import (DetRule, ExistentialProgram, ExtRule,
                                  translate)
from repro.pdb.instances import Instance

Position = tuple[str, int]


def position_graph(translated: ExistentialProgram) -> nx.MultiDiGraph:
    """The dependency graph over (relation, position) nodes.

    Edges carry ``special=True`` for existential edges and a ``rule``
    attribute with the translated-rule index (for diagnostics).
    """
    graph = nx.MultiDiGraph()
    for rule in translated.rules:
        body_positions: dict[Var, list[Position]] = {}
        for body_atom in rule.body:
            for position, term in enumerate(body_atom.terms):
                if isinstance(term, Var):
                    body_positions.setdefault(term, []).append(
                        (body_atom.relation, position))
        if isinstance(rule, DetRule):
            head_positions = [(rule.head.relation, i, term)
                              for i, term in enumerate(rule.head.terms)]
            existential_position = None
        else:
            assert isinstance(rule, ExtRule)
            head_positions = [(rule.aux_relation, i, term)
                              for i, term
                              in enumerate(rule.prefix_terms)]
            existential_position = (rule.aux_relation,
                                    len(rule.prefix_terms))
        head_variables: set[Var] = set()
        for relation, index, term in head_positions:
            if isinstance(term, Var):
                head_variables.add(term)
                for source in body_positions.get(term, ()):
                    graph.add_edge(source, (relation, index),
                                   special=False, rule=rule.index)
        if existential_position is not None:
            graph.add_node(existential_position)
            for variable in head_variables:
                for source in body_positions.get(variable, ()):
                    graph.add_edge(source, existential_position,
                                   special=True, rule=rule.index)
    return graph


@dataclass
class TerminationReport:
    """Result of the static termination analysis.

    ``weakly_acyclic`` implies termination of every chase (Thm 6.3).
    ``special_cycles`` lists (source, target) special edges lying on a
    cycle; ``continuous_cycle`` flags whether any such cycle feeds a
    continuous distribution - the almost-surely-non-terminating case of
    Section 6.3.
    """

    weakly_acyclic: bool
    special_cycles: list[tuple[Position, Position]] = \
        field(default_factory=list)
    continuous_cycle: bool = False
    cyclic_distributions: tuple[str, ...] = ()

    def guarantees_termination(self) -> bool:
        return self.weakly_acyclic

    def almost_surely_diverges(self) -> bool:
        """Heuristic per Section 6.3: a continuous special cycle."""
        return self.continuous_cycle

    def __repr__(self) -> str:
        if self.weakly_acyclic:
            return "TerminationReport(weakly acyclic ⇒ terminating)"
        kind = "continuous" if self.continuous_cycle else "discrete"
        return (f"TerminationReport(not weakly acyclic; {kind} cycle "
                f"through {sorted(self.cyclic_distributions)})")


def analyze_termination(program: Program | ExistentialProgram,
                        ) -> TerminationReport:
    """Static analysis: weak acyclicity + cycle classification.

    >>> report = analyze_termination(
    ...     Program.parse("R(Flip<0.5>) :- true."))
    >>> report.weakly_acyclic
    True
    """
    translated = program if isinstance(program, ExistentialProgram) \
        else translate(program)
    graph = position_graph(translated)
    plain = nx.DiGraph()
    plain.add_nodes_from(graph.nodes)
    special_edges = []
    for source, target, data in graph.edges(data=True):
        plain.add_edge(source, target)
        if data.get("special"):
            special_edges.append((source, target))

    bad_edges = [(source, target) for source, target in special_edges
                 if nx.has_path(plain, target, source)]
    if not bad_edges:
        return TerminationReport(True)

    cyclic_distributions = set()
    continuous = False
    for _source, target in bad_edges:
        relation = target[0]
        info = translated.aux_info.get(relation)
        if info is not None:
            cyclic_distributions.add(info.distribution.name)
            if not info.distribution.is_discrete:
                continuous = True
    return TerminationReport(False, bad_edges, continuous,
                             tuple(sorted(cyclic_distributions)))


def weakly_acyclic(program: Program | ExistentialProgram) -> bool:
    """Shorthand for ``analyze_termination(program).weakly_acyclic``."""
    return analyze_termination(program).weakly_acyclic


@dataclass(frozen=True)
class TerminationEstimate:
    """Empirical termination behaviour over sampled chases."""

    n_runs: int
    terminated: int
    max_steps: int
    mean_steps_when_terminated: float

    @property
    def probability(self) -> float:
        return self.terminated / self.n_runs

    def standard_error(self) -> float:
        p = self.probability
        return float(np.sqrt(max(p * (1 - p) / self.n_runs, 0.0)))


def estimate_termination_probability(
        program: Program | ExistentialProgram,
        instance: Instance | None = None,
        n_runs: int = 200,
        max_steps: int = 1000,
        rng: np.random.Generator | int | None = None,
        policy: ChasePolicy | None = None) -> TerminationEstimate:
    """Monte-Carlo estimate of P(chase terminates within ``max_steps``).

    For weakly acyclic programs this is 1 for any sufficient budget;
    for continuous special cycles it is (almost surely) 0 for *every*
    budget; for discrete cycles it estimates the AST behaviour the
    paper marks as future work.
    """
    translated = program if isinstance(program, ExistentialProgram) \
        else translate(program)
    rng = np.random.default_rng(rng) \
        if not isinstance(rng, np.random.Generator) else rng
    root = instance if instance is not None else Instance.empty()
    base = make_engine(translated, root)
    chase_policy = policy or DEFAULT_POLICY
    terminated = 0
    steps_sum = 0
    for _ in range(n_runs):
        run = run_chase_prepared(translated, base.fork(), root,
                                 chase_policy, rng,
                                 max_steps=max_steps)
        if run.terminated:
            terminated += 1
            steps_sum += run.steps
    mean_steps = steps_sum / terminated if terminated else float("nan")
    return TerminationEstimate(n_runs, terminated, max_steps, mean_steps)
