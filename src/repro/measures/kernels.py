"""Stochastic kernels: measurable families of probability measures.

Section 2.1.2: a (sub-)stochastic kernel ``κ`` from ``(X, 𝒳)`` to
``(Y, 𝒴)`` assigns each point ``x`` a (sub-)probability measure
``κ(x, ·)``, measurably in ``x``.  The paper's central technical result
(Propositions 4.6/5.3) is that chase steps are such kernels.

Computationally a kernel is realized by two capabilities:

* :meth:`Kernel.sample` - draw ``y ~ κ(x, ·)`` using a numpy RNG (this
  is all a Markov-process simulation needs);
* :meth:`Kernel.distribution` - for *discrete* kernels, the explicit
  :class:`repro.measures.discrete.DiscreteMeasure` ``κ(x, ·)`` (this is
  what exact chase enumeration consumes).

The combinators mirror the textbook constructions: identity kernel ``ι``
(Section 2.1.2), composition (Chapman-Kolmogorov), products (the
independence structure of parallel chase steps, Definition 5.1), and
kernels induced by deterministic measurable functions.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.errors import MeasureError
from repro.measures.discrete import DiscreteMeasure


class Kernel:
    """A stochastic kernel, exposed through sampling.

    Subclasses must implement :meth:`sample`; kernels with computable
    discrete conditionals additionally implement :meth:`distribution`.
    """

    def sample(self, x: Any, rng: np.random.Generator) -> Any:
        """Draw one point from ``κ(x, ·)``."""
        raise NotImplementedError

    def distribution(self, x: Any) -> DiscreteMeasure:
        """The measure ``κ(x, ·)`` when it is finitely supported."""
        raise MeasureError(
            f"{type(self).__name__} has no finitely-supported conditional")

    def has_distribution(self) -> bool:
        """Whether :meth:`distribution` is available."""
        return False

    # -- combinators -------------------------------------------------------

    def then(self, other: "Kernel") -> "Kernel":
        """Kernel composition: first this kernel, then ``other``."""
        return ComposedKernel(self, other)

    def product(self, other: "Kernel") -> "Kernel":
        """The product kernel on pairs, sampling independently."""
        return ProductKernel([self, other])


class IdentityKernel(Kernel):
    """The identity kernel ``ι(x, E) = [x ∈ E]`` (Section 2.1.2)."""

    def sample(self, x: Any, rng: np.random.Generator) -> Any:
        return x

    def distribution(self, x: Any) -> DiscreteMeasure:
        return DiscreteMeasure.dirac(x)

    def has_distribution(self) -> bool:
        return True


class FunctionKernel(Kernel):
    """The deterministic kernel ``κ(x, ·) = δ_{f(x)}`` of a function ``f``.

    This is the kernel form of a push-forward: composing a measure with
    a :class:`FunctionKernel` computes ``µ ∘ f⁻¹``.
    """

    def __init__(self, f: Callable[[Any], Any]):
        self.f = f

    def sample(self, x: Any, rng: np.random.Generator) -> Any:
        return self.f(x)

    def distribution(self, x: Any) -> DiscreteMeasure:
        return DiscreteMeasure.dirac(self.f(x))

    def has_distribution(self) -> bool:
        return True


class DiscreteKernel(Kernel):
    """A kernel given by an explicit map ``x -> DiscreteMeasure``."""

    def __init__(self, conditional: Callable[[Any], DiscreteMeasure]):
        self.conditional = conditional

    def sample(self, x: Any, rng: np.random.Generator) -> Any:
        return sample_discrete(self.conditional(x), rng)

    def distribution(self, x: Any) -> DiscreteMeasure:
        return self.conditional(x)

    def has_distribution(self) -> bool:
        return True


class SamplerKernel(Kernel):
    """A kernel given only by a sampler ``(x, rng) -> y``.

    This is the general continuous case, where no finite representation
    of the conditional measure exists.
    """

    def __init__(self, sampler: Callable[[Any, np.random.Generator], Any]):
        self.sampler = sampler

    def sample(self, x: Any, rng: np.random.Generator) -> Any:
        return self.sampler(x, rng)


class ComposedKernel(Kernel):
    """``(κ₁ ; κ₂)(x, ·)``: run ``κ₁``, feed the result into ``κ₂``.

    For discrete kernels the conditional is the Chapman-Kolmogorov sum
    ``Σ_y κ₁(x, {y}) κ₂(y, ·)``.
    """

    def __init__(self, first: Kernel, second: Kernel):
        self.first = first
        self.second = second

    def sample(self, x: Any, rng: np.random.Generator) -> Any:
        return self.second.sample(self.first.sample(x, rng), rng)

    def distribution(self, x: Any) -> DiscreteMeasure:
        inner = self.first.distribution(x)
        result: dict[Hashable, float] = {}
        for mid, mass in inner.items():
            outer = self.second.distribution(mid)
            for point, conditional_mass in outer.items():
                result[point] = (result.get(point, 0.0)
                                 + mass * conditional_mass)
        return DiscreteMeasure(result)

    def has_distribution(self) -> bool:
        return self.first.has_distribution() and \
            self.second.has_distribution()


class ProductKernel(Kernel):
    """Independent product of kernels: ``κ(x, ·) = ⊗_i κ_i(x, ·)``.

    This encodes the paper's implicit independence assumption for
    parallel chase steps (remark under Definition 5.1): all firing rules
    sample independently, and by Fubini the order does not matter.
    """

    def __init__(self, kernels: Sequence[Kernel]):
        self.kernels = tuple(kernels)
        if not self.kernels:
            raise MeasureError("product of zero kernels")

    def sample(self, x: Any, rng: np.random.Generator) -> tuple:
        return tuple(kernel.sample(x, rng) for kernel in self.kernels)

    def distribution(self, x: Any) -> DiscreteMeasure:
        result = DiscreteMeasure.dirac(())
        for kernel in self.kernels:
            component = kernel.distribution(x)
            next_result: dict[Hashable, float] = {}
            for prefix, prefix_mass in result.items():
                for point, point_mass in component.items():
                    key = prefix + (point,)
                    next_result[key] = (next_result.get(key, 0.0)
                                        + prefix_mass * point_mass)
            result = DiscreteMeasure(next_result)
        return result

    def has_distribution(self) -> bool:
        return all(kernel.has_distribution() for kernel in self.kernels)


def sample_discrete(measure: DiscreteMeasure,
                    rng: np.random.Generator) -> Any:
    """Draw one point from a finitely-supported (sub-)probability measure.

    If the measure is a strict sub-probability, the deficit is treated
    as an error event and ``None`` is returned with that probability -
    the sampling counterpart of the paper's ``err`` element.
    """
    points = measure.sorted_points()
    if not points:
        return None
    masses = np.array([measure.mass(point) for point in points])
    total = masses.sum()
    if total > 1.0 + 1e-9:
        raise MeasureError(f"not a sub-probability measure (mass {total})")
    u = rng.random() * max(total, 1.0)
    cumulative = 0.0
    for point, mass in zip(points, masses):
        cumulative += mass
        if u < cumulative:
            return point
    return None if total < 1.0 - 1e-12 else points[-1]


def push_forward_measure(measure: DiscreteMeasure,
                         kernel: Kernel) -> DiscreteMeasure:
    """``µκ(E) = ∫ κ(x, E) µ(dx)`` for discrete ``µ`` and ``κ``."""
    result: dict[Hashable, float] = {}
    for point, mass in measure.items():
        conditional = kernel.distribution(point)
        for image, conditional_mass in conditional.items():
            result[image] = result.get(image, 0.0) + mass * conditional_mass
    return DiscreteMeasure(result)
