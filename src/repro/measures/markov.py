"""Discrete-time Markov processes built from kernels (Fact B.9).

Kolmogorov's theorem guarantees that an initial distribution plus a
sequence of stochastic kernels determines a Markov process; the paper
uses this (Corollaries 4.7/5.4) to interpret chase trees as Markov
processes over the space of database instances, whose path measure is
then pushed forward along ``lim-inst`` to obtain the output SPDB.

This module realizes the operational side of that construction:

* :class:`MarkovProcess` - initial distribution (or point) + transition
  kernel; supports sampling finite path prefixes and running until
  absorption;
* :func:`iterate_distribution` - for discrete kernels, the exact
  distribution after ``n`` steps (matrix-free forward iteration);
* stability detection (the paper's "stable at i": the path repeats its
  state forever once an absorbing state is reached).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.measures.discrete import DiscreteMeasure
from repro.measures.kernels import Kernel, push_forward_measure, \
    sample_discrete


@dataclass(frozen=True)
class PathResult:
    """A sampled path prefix of a Markov process.

    ``states`` holds the visited states ``(x_0, ..., x_k)``.  If the
    process reached an absorbing state, ``absorbed`` is True and ``x_k``
    is the absorbing state; otherwise the path was truncated by the step
    budget - the operational analogue of an infinite path, which the
    paper maps to the error element ``err`` (Section 4.2).
    """

    states: tuple
    absorbed: bool

    @property
    def final(self) -> Any:
        return self.states[-1]

    @property
    def steps(self) -> int:
        return len(self.states) - 1

    def stable_index(self) -> int | None:
        """The paper's "stable at i": first index from which the path is
        constant - only meaningful (non-None) for absorbed paths."""
        if not self.absorbed:
            return None
        index = len(self.states) - 1
        while index > 0 and self.states[index - 1] == self.states[index]:
            index -= 1
        return index


class MarkovProcess:
    """A time-homogeneous Markov process with explicit absorption test.

    Parameters
    ----------
    kernel:
        The transition kernel (``step_app`` for the sequential chase,
        ``step_App`` for the parallel chase).
    is_absorbing:
        Predicate marking absorbing states.  For chases these are the
        instances with no applicable rule, where the kernel behaves as
        the identity kernel (Section 4.3).
    """

    def __init__(self, kernel: Kernel,
                 is_absorbing: Callable[[Any], bool] | None = None):
        self.kernel = kernel
        self.is_absorbing = is_absorbing or (lambda state: False)

    def sample_path(self, initial: Any, rng: np.random.Generator,
                    max_steps: int) -> PathResult:
        """Sample a path prefix of at most ``max_steps`` transitions.

        Stops early on absorption.  The resulting :class:`PathResult`
        distinguishes absorbed ("terminating run") from truncated
        ("potentially non-terminating run") prefixes.
        """
        states = [initial]
        state = initial
        for _ in range(max_steps):
            if self.is_absorbing(state):
                return PathResult(tuple(states), absorbed=True)
            state = self.kernel.sample(state, rng)
            states.append(state)
        absorbed = self.is_absorbing(state)
        return PathResult(tuple(states), absorbed=absorbed)

    def sample_final(self, initial: Any, rng: np.random.Generator,
                     max_steps: int) -> tuple[Any, bool]:
        """Like :meth:`sample_path` but keeping only the final state.

        Returns ``(state, absorbed)``; memory use is O(1) in path
        length, which matters for long chases.
        """
        state = initial
        for _ in range(max_steps):
            if self.is_absorbing(state):
                return state, True
            state = self.kernel.sample(state, rng)
        return state, self.is_absorbing(state)

    def sample_many(self, initial: Any, rng: np.random.Generator,
                    max_steps: int, n: int) -> Iterator[tuple[Any, bool]]:
        """Yield ``n`` independent ``(final_state, absorbed)`` draws."""
        for _ in range(n):
            yield self.sample_final(initial, rng, max_steps)


def iterate_distribution(initial: DiscreteMeasure, kernel: Kernel,
                         steps: int,
                         is_absorbing: Callable[[Any], bool] | None = None,
                         ) -> DiscreteMeasure:
    """Exact state distribution after ``steps`` transitions.

    Absorbing states (if given) are frozen: their mass is carried
    through unchanged, matching the identity-kernel behaviour of
    ``step_app`` on instances with no applicable rules.
    """
    is_absorbing = is_absorbing or (lambda state: False)
    current = initial
    for _ in range(steps):
        moving = current.restrict(lambda s: not is_absorbing(s))
        frozen = current.restrict(is_absorbing)
        if len(moving) == 0:
            return current
        current = frozen.add(push_forward_measure(moving, kernel))
    return current


def absorption_distribution(initial: DiscreteMeasure, kernel: Kernel,
                            is_absorbing: Callable[[Any], bool],
                            max_steps: int,
                            ) -> tuple[DiscreteMeasure, float]:
    """Distribution over absorbing states reached within ``max_steps``.

    Returns ``(measure over absorbed states, escaping mass)`` where the
    escaping mass belongs to paths still alive after the budget - the
    mass the paper's semantics assigns to ``err`` in the limit.  The
    pair is a sub-probability decomposition: measure mass + escaping
    mass = initial mass.
    """
    final = iterate_distribution(initial, kernel, max_steps, is_absorbing)
    absorbed = final.restrict(is_absorbing)
    return absorbed, final.total_mass() - absorbed.total_mass()


def empirical_final_distribution(process: MarkovProcess, initial: Any,
                                 rng: np.random.Generator, max_steps: int,
                                 n: int) -> tuple[DiscreteMeasure, float]:
    """Monte-Carlo estimate of the absorption distribution.

    Returns ``(empirical measure over absorbed states, estimated
    non-termination probability)``.
    """
    absorbed_states: list[Any] = []
    truncated = 0
    for state, absorbed in process.sample_many(initial, rng, max_steps, n):
        if absorbed:
            absorbed_states.append(state)
        else:
            truncated += 1
    if not absorbed_states:
        return DiscreteMeasure.zero(), truncated / n
    empirical = DiscreteMeasure.from_samples(absorbed_states)
    return empirical.scale(len(absorbed_states) / n), truncated / n


def sample_chain(initial_measure: DiscreteMeasure, kernels: Iterable[Kernel],
                 rng: np.random.Generator) -> list[Any]:
    """Sample one path of an inhomogeneous chain (Fact B.9 form).

    ``kernels`` gives the per-step transition kernels ``κ_1, κ_2, ...``;
    the returned list is ``[x_0, x_1, ..., x_n]``.
    """
    state = sample_discrete(initial_measure, rng)
    states = [state]
    for kernel in kernels:
        state = kernel.sample(state, rng)
        states.append(state)
    return states
