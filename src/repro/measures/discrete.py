"""Discrete (sub-)probability measures as explicit mass functions.

These are the computational stand-in for the paper's measures on
standard Borel spaces whenever the support is countable and effectively
finite: output distributions of exact chase enumeration, distributions
of discrete parameterized distributions over a truncated support, and
push-forwards of either along queries.

A :class:`DiscreteMeasure` maps hashable points to non-negative masses.
Probability measures have total mass 1; *sub*-probability measures
(mass <= 1) arise from the paper's SPDB construction (Definition 2.7),
where the deficit is the probability of the error event / lost mass.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, Mapping

from repro.errors import MeasureError
from repro.ordering import value_sort_key

#: Tolerance used when checking mass constraints.
MASS_TOLERANCE = 1e-9


class DiscreteMeasure:
    """A finitely-supported measure ``point -> mass >= 0``.

    The class is immutable in spirit: all operations return new
    measures.  Zero-mass points are dropped on construction.
    """

    __slots__ = ("_masses",)

    def __init__(self, masses: Mapping[Hashable, float] | None = None):
        cleaned: Dict[Hashable, float] = {}
        for point, mass in (masses or {}).items():
            mass = float(mass)
            if mass < -MASS_TOLERANCE:
                raise MeasureError(
                    f"negative mass {mass!r} for point {point!r}")
            if mass > 0.0:
                cleaned[point] = cleaned.get(point, 0.0) + mass
        self._masses = cleaned

    # -- constructors -------------------------------------------------------

    @classmethod
    def dirac(cls, point: Hashable) -> "DiscreteMeasure":
        """The Dirac (point) measure at ``point``."""
        return cls({point: 1.0})

    @classmethod
    def uniform(cls, points: Iterable[Hashable]) -> "DiscreteMeasure":
        points = list(points)
        if not points:
            raise MeasureError("uniform measure needs at least one point")
        mass = 1.0 / len(points)
        result: Dict[Hashable, float] = {}
        for point in points:
            result[point] = result.get(point, 0.0) + mass
        return cls(result)

    @classmethod
    def from_samples(cls, samples: Iterable[Hashable]) -> "DiscreteMeasure":
        """The empirical measure of a sample sequence."""
        counts: Dict[Hashable, int] = {}
        total = 0
        for sample in samples:
            counts[sample] = counts.get(sample, 0) + 1
            total += 1
        if total == 0:
            raise MeasureError("empirical measure of an empty sample")
        return cls({point: count / total for point, count in counts.items()})

    @classmethod
    def zero(cls) -> "DiscreteMeasure":
        """The zero measure (empty support, mass 0)."""
        return cls({})

    # -- basic queries -------------------------------------------------------

    def mass(self, point: Hashable) -> float:
        """The mass of a single point."""
        return self._masses.get(point, 0.0)

    def __getitem__(self, point: Hashable) -> float:
        return self.mass(point)

    def __contains__(self, point: Hashable) -> bool:
        return point in self._masses

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._masses)

    def __len__(self) -> int:
        return len(self._masses)

    def items(self) -> Iterable[tuple[Hashable, float]]:
        return self._masses.items()

    def support(self) -> frozenset:
        return frozenset(self._masses)

    def sorted_points(self) -> list:
        """Support in the canonical value order (deterministic)."""
        return sorted(self._masses, key=value_sort_key)

    def total_mass(self) -> float:
        return math.fsum(self._masses.values())

    def deficit(self) -> float:
        """``1 - total mass``: the sub-probability deficit (>= 0 if SPM)."""
        return 1.0 - self.total_mass()

    def is_probability(self, tolerance: float = 1e-6) -> bool:
        return abs(self.total_mass() - 1.0) <= tolerance

    def is_subprobability(self, tolerance: float = 1e-6) -> bool:
        return self.total_mass() <= 1.0 + tolerance

    def measure_of(self, event: Callable[[Any], bool]) -> float:
        """Mass of ``{x : event(x)}``."""
        return math.fsum(mass for point, mass in self._masses.items()
                         if event(point))

    def expectation(self, f: Callable[[Any], float]) -> float:
        """``∫ f dµ`` (support is finite, so this is a finite sum)."""
        return math.fsum(mass * f(point)
                         for point, mass in self._masses.items())

    # -- transformations -----------------------------------------------------

    def push_forward(self, f: Callable[[Any], Hashable]) -> "DiscreteMeasure":
        """The push-forward measure ``µ ∘ f⁻¹`` (Section 2.1.2).

        Mass is preserved: ``(µ ∘ f⁻¹)(Y) = µ(f⁻¹(Y))``.
        """
        result: Dict[Hashable, float] = {}
        for point, mass in self._masses.items():
            image = f(point)
            result[image] = result.get(image, 0.0) + mass
        return DiscreteMeasure(result)

    def restrict(self, event: Callable[[Any], bool]) -> "DiscreteMeasure":
        """The restriction ``µ|_E`` (unnormalized)."""
        return DiscreteMeasure({point: mass
                                for point, mass in self._masses.items()
                                if event(point)})

    def condition(self, event: Callable[[Any], bool]) -> "DiscreteMeasure":
        """The conditional probability measure ``µ( · | E)``."""
        restricted = self.restrict(event)
        total = restricted.total_mass()
        if total <= 0.0:
            raise MeasureError("conditioning on a null event")
        return restricted.scale(1.0 / total)

    def scale(self, factor: float) -> "DiscreteMeasure":
        """``factor * µ`` - e.g. Definition 2.7's ``αP``."""
        if factor < 0:
            raise MeasureError("scaling factor must be non-negative")
        return DiscreteMeasure({point: mass * factor
                                for point, mass in self._masses.items()})

    def add(self, other: "DiscreteMeasure") -> "DiscreteMeasure":
        """The sum measure ``µ + ν`` (used for mixtures)."""
        result = dict(self._masses)
        for point, mass in other._masses.items():
            result[point] = result.get(point, 0.0) + mass
        return DiscreteMeasure(result)

    def product(self, other: "DiscreteMeasure") -> "DiscreteMeasure":
        """The product measure ``µ ⊗ ν`` on pairs (Section 2.1.3)."""
        result: Dict[Hashable, float] = {}
        for p, pm in self._masses.items():
            for q, qm in other._masses.items():
                result[(p, q)] = result.get((p, q), 0.0) + pm * qm
        return DiscreteMeasure(result)

    def normalize(self) -> "DiscreteMeasure":
        """Rescale to total mass 1 (error on the zero measure)."""
        total = self.total_mass()
        if total <= 0.0:
            raise MeasureError("cannot normalize the zero measure")
        return self.scale(1.0 / total)

    # -- comparison -----------------------------------------------------------

    def tv_distance(self, other: "DiscreteMeasure") -> float:
        """Total-variation distance ``sup_E |µ(E) − ν(E)|``.

        For finitely-supported measures this equals half the L1 distance
        of the mass functions plus half the absolute mass difference.
        """
        points = set(self._masses) | set(other._masses)
        l1 = math.fsum(abs(self.mass(p) - other.mass(p)) for p in points)
        return 0.5 * l1

    def allclose(self, other: "DiscreteMeasure",
                 tolerance: float = 1e-9) -> bool:
        """Whether both measures agree pointwise up to ``tolerance``."""
        points = set(self._masses) | set(other._masses)
        return all(abs(self.mass(p) - other.mass(p)) <= tolerance
                   for p in points)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DiscreteMeasure)
                and self._masses == other._masses)

    def __hash__(self) -> int:
        return hash(frozenset(self._masses.items()))

    def __repr__(self) -> str:
        if len(self._masses) > 6:
            return (f"DiscreteMeasure(<{len(self._masses)} points, "
                    f"mass {self.total_mass():.6g}>)")
        inner = ", ".join(f"{point!r}: {mass:.6g}"
                          for point, mass in sorted(
                              self._masses.items(),
                              key=lambda kv: value_sort_key(kv[0])))
        return f"DiscreteMeasure({{{inner}}})"


def mixture(components: Iterable[tuple[float, DiscreteMeasure]],
            ) -> DiscreteMeasure:
    """The mixture ``Σ w_i µ_i`` of weighted measures."""
    result = DiscreteMeasure.zero()
    for weight, component in components:
        result = result.add(component.scale(weight))
    return result
