"""Empirical summaries and statistical distances for continuous outputs.

Continuous GDatalog programs produce output measures with no finite
representation; the library represents them through samples.  This
module provides the statistics used by tests and benchmarks to compare
such empirical measures against each other and against closed-form
references: moments, empirical CDFs, the Kolmogorov-Smirnov statistic,
and simple two-sample tests.  Only numpy is required; scipy (if
installed) is used by the test suite for reference p-values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class MomentSummary:
    """First two moments of a sample with standard errors."""

    n: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def mean_standard_error(self) -> float:
        if self.n <= 1:
            return float("inf")
        return self.std / math.sqrt(self.n)

    def mean_within(self, expected: float, z: float = 4.0) -> bool:
        """Whether ``expected`` lies within ``z`` standard errors."""
        return abs(self.mean - expected) <= z * self.mean_standard_error


def summarize(samples: Iterable[float]) -> MomentSummary:
    """Compute :class:`MomentSummary` of a numeric sample."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return MomentSummary(0, float("nan"), float("nan"))
    variance = float(data.var(ddof=1)) if data.size > 1 else 0.0
    return MomentSummary(int(data.size), float(data.mean()), variance)


def empirical_cdf(samples: Sequence[float]) -> Callable[[float], float]:
    """The empirical CDF of a numeric sample as a callable."""
    data = np.sort(np.asarray(samples, dtype=float))
    n = data.size

    def cdf(x: float) -> float:
        return float(np.searchsorted(data, x, side="right")) / n

    return cdf


def ks_statistic(samples: Sequence[float],
                 cdf: Callable[[float], float]) -> float:
    """One-sample Kolmogorov-Smirnov statistic against a reference CDF.

    ``sup_x |F_n(x) - F(x)|`` evaluated at the sample points (where the
    supremum of the difference with a continuous CDF is attained).
    """
    data = np.sort(np.asarray(samples, dtype=float))
    n = data.size
    if n == 0:
        return 1.0
    reference = np.asarray([cdf(x) for x in data])
    upper = np.abs(np.arange(1, n + 1) / n - reference)
    lower = np.abs(reference - np.arange(0, n) / n)
    return float(max(upper.max(), lower.max()))


def ks_two_sample(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample KS statistic ``sup_x |F_n(x) - G_m(x)|``."""
    a = np.sort(np.asarray(first, dtype=float))
    b = np.sort(np.asarray(second, dtype=float))
    if a.size == 0 or b.size == 0:
        return 1.0
    points = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, points, side="right") / a.size
    cdf_b = np.searchsorted(b, points, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_critical_value(n: int, m: int | None = None,
                      alpha: float = 0.001) -> float:
    """Asymptotic KS critical value at level ``alpha``.

    One-sample if ``m`` is None, else two-sample.  Uses the classical
    ``c(α) · sqrt((n+m)/(n·m))`` approximation.
    """
    c_alpha = math.sqrt(-0.5 * math.log(alpha / 2.0))
    if m is None:
        return c_alpha / math.sqrt(n)
    return c_alpha * math.sqrt((n + m) / (n * m))


def chi_square_statistic(observed_counts: Sequence[float],
                         expected_probabilities: Sequence[float],
                         ) -> float:
    """Pearson χ² statistic of observed counts vs expected probabilities."""
    observed = np.asarray(observed_counts, dtype=float)
    expected_probs = np.asarray(expected_probabilities, dtype=float)
    total = observed.sum()
    expected = expected_probs * total
    mask = expected > 0
    if not mask.all() and observed[~mask].sum() > 0:
        return float("inf")
    return float(((observed[mask] - expected[mask]) ** 2
                  / expected[mask]).sum())


def frequencies_close(samples: Sequence, probabilities: dict,
                      tolerance_sigmas: float = 5.0) -> bool:
    """Whether sampled frequencies match expected point probabilities.

    Each point's frequency must lie within ``tolerance_sigmas`` binomial
    standard deviations of its expected probability.  Robust and
    dependency-free; used by distribution sampling tests.
    """
    n = len(samples)
    if n == 0:
        return False
    counts: dict = {}
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
    for point, probability in probabilities.items():
        sigma = math.sqrt(max(probability * (1 - probability) / n, 1e-12))
        frequency = counts.get(point, 0) / n
        if abs(frequency - probability) > tolerance_sigmas * sigma + 1e-9:
            return False
    return True
