"""Measure-theoretic substrate: discrete measures, kernels, processes.

Computational counterparts of Section 2.1: finitely-supported measures
with push-forwards and products, stochastic kernels with composition,
Markov processes (Fact B.9) with absorption analysis, and empirical
statistics for continuous outputs.
"""

from repro.measures.discrete import MASS_TOLERANCE, DiscreteMeasure, \
    mixture
from repro.measures.empirical import (MomentSummary, chi_square_statistic,
                                      empirical_cdf, frequencies_close,
                                      ks_critical_value, ks_statistic,
                                      ks_two_sample, summarize)
from repro.measures.kernels import (ComposedKernel, DiscreteKernel,
                                    FunctionKernel, IdentityKernel, Kernel,
                                    ProductKernel, SamplerKernel,
                                    push_forward_measure, sample_discrete)
from repro.measures.markov import (MarkovProcess, PathResult,
                                   absorption_distribution,
                                   empirical_final_distribution,
                                   iterate_distribution, sample_chain)

__all__ = [
    "ComposedKernel", "DiscreteKernel", "DiscreteMeasure",
    "FunctionKernel", "IdentityKernel", "Kernel", "MASS_TOLERANCE",
    "MarkovProcess", "MomentSummary", "PathResult", "ProductKernel",
    "SamplerKernel", "absorption_distribution", "chi_square_statistic",
    "empirical_cdf", "empirical_final_distribution", "frequencies_close",
    "iterate_distribution", "ks_critical_value", "ks_statistic",
    "ks_two_sample", "mixture", "push_forward_measure", "sample_chain",
    "sample_discrete", "summarize",
]
