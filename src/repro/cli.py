"""Command-line interface: run GDatalog programs from the shell.

Subcommands (``python -m repro <command>`` or the ``repro`` script):

* ``exact``     - exact output SPDB of a discrete program, printed as
  ``probability  world`` lines (plus err mass);
* ``sample``    - Monte-Carlo semantics: marginals of every output fact
  observed across ``n`` chases;
* ``query``     - answer a relational-algebra plan (``--plan``, the
  wire JSON of :func:`repro.serving.protocol.parse_plan`) over the
  output PDB: exact for discrete programs, compiled to numpy over the
  columnar ensemble otherwise, posterior with ``--observe``;
* ``posterior`` - conditioned marginals given ``--observe`` evidence
  (likelihood weighting, rejection, or exact conditioning) - the same
  document a :class:`~repro.serving.ProgramServer` ``posterior`` reply
  carries;
* ``analyze``   - static report: translation summary, weak acyclicity,
  cycle classification (Theorem 6.3 / §6.3); ``--deep`` adds the lint
  diagnostics and capability predictions of :mod:`repro.analysis`;
* ``lint``      - static diagnostics (:mod:`repro.analysis`): unused
  variables, unreachable rules, invalid distribution parameters,
  weak-acyclicity witness cycles, plus the engine-capability
  predictions; exit code 1 when a diagnostic reaches ``--fail-on``;
* ``translate`` - print the associated existential Datalog program Ĝ;
* ``fuzz``      - differential fuzzing: generate random workloads and
  check every engine pair against each other
  (:mod:`repro.testing`); exit code 1 when a discrepancy
  is found (shrunk reproducers go to ``--corpus``);
* ``serve``     - long-lived program server (:mod:`repro.serving`):
  JSON-lines requests over stdin/stdout or a TCP socket,
  compiled programs cached across requests.

Every subcommand accepts ``--json`` for machine-readable output (one
JSON document on stdout).  Input instances come from
``--data Relation=path.csv`` (repeatable) or ``--data path.json``;
programs from a ``.gdl`` file in the surface syntax.  Exit code 0 on
success, 2 on usage errors.

The CLI is a thin shell over the :mod:`repro.api` facade: each
invocation compiles the program once and drives every query through
the resulting session.

Example::

    repro exact examples/data/g0.gdl
    repro sample program.gdl --data City=city.csv -n 5000 --seed 7
    repro analyze program.gdl --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.api import CompiledProgram, compile as compile_program
from repro.api.config import BACKENDS
from repro.errors import ReproError
from repro.io import load_instance_args, load_program
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.stats import fact_marginals
from repro.serving.protocol import (analyze_payload, fact_payload,
                                    json_default, sample_payload)


def build_arg_parser() -> argparse.ArgumentParser:
    """The argparse tree of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generative Datalog with continuous distributions "
                    "(PODS 2020 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("program", help="program file (.gdl)")
        sub.add_argument("--data", action="append", default=[],
                         metavar="REL=FILE.csv|FILE.json",
                         help="input facts (repeatable)")
        sub.add_argument("--semantics", choices=("grohe", "barany"),
                         default="grohe",
                         help="this paper's semantics (default) or "
                              "Barany et al.'s")
        sub.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")

    exact = subparsers.add_parser(
        "exact", help="exact output SPDB (discrete programs)")
    add_common(exact)
    exact.add_argument("--parallel", action="store_true",
                       help="enumerate the parallel chase tree")
    exact.add_argument("--max-depth", type=int, default=200)
    exact.add_argument("--top", type=int, default=20,
                       help="print at most this many worlds")

    sample = subparsers.add_parser(
        "sample", help="Monte-Carlo semantics: fact marginals")
    add_common(sample)
    sample.add_argument("-n", type=int, default=1000,
                        help="number of chase runs")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--max-steps", type=int, default=10_000)
    sample.add_argument("--parallel", action="store_true")
    sample.add_argument("--backend", choices=BACKENDS,
                        default="auto",
                        help="sampling backend: the vectorized batch "
                             "engine, the per-run scalar loop, or "
                             "automatic selection (the CLI's shared "
                             "RNG stream keeps 'auto' on the scalar "
                             "path for seed-stable output)")

    query = subparsers.add_parser(
        "query", help="answer a relational-algebra plan")
    add_common(query)
    query.add_argument("--plan", required=True,
                       metavar="JSON|@FILE.json",
                       help="the plan document (see "
                            "repro.serving.protocol.parse_plan), "
                            "inline or @file")
    query.add_argument("-n", type=int, default=1000,
                       help="number of chase runs (sampling programs)")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--max-steps", type=int, default=10_000)
    query.add_argument("--backend", choices=BACKENDS, default="auto",
                       help="sampling backend (the batch engine "
                            "answers plans columnar, without "
                            "materializing worlds)")
    query.add_argument("--observe", action="append", default=[],
                       metavar="REL,carried...,value|JSON",
                       help="evidence (repeatable; answers the plan "
                            "under the posterior)")

    posterior = subparsers.add_parser(
        "posterior", help="conditioned marginals given evidence")
    add_common(posterior)
    posterior.add_argument("--observe", action="append", default=[],
                           metavar="REL,carried...,value|JSON",
                           help="evidence (repeatable): a sample-level "
                                "observation as comma-separated "
                                "relation, carried args and observed "
                                "value, or a JSON evidence payload "
                                "({'relation': ...} or {'fact': ...})")
    posterior.add_argument("--method",
                           choices=("likelihood", "rejection", "exact",
                                    "guided", "auto"),
                           default="likelihood")
    posterior.add_argument("-n", type=int, default=1000,
                           help="number of chase runs (sampling "
                                "methods)")
    posterior.add_argument("--seed", type=int, default=0)
    posterior.add_argument("--max-steps", type=int, default=10_000)

    analyze = subparsers.add_parser(
        "analyze", help="static termination / structure report")
    add_common(analyze)
    analyze.add_argument("--deep", action="store_true",
                         help="include lint diagnostics and engine "
                              "capability predictions "
                              "(repro.analysis)")

    lint = subparsers.add_parser(
        "lint", help="static diagnostics and capability predictions")
    add_common(lint)
    lint.add_argument("--fail-on", choices=("error", "warning", "info"),
                      default="error", dest="fail_on",
                      help="lowest severity that fails the run "
                           "(default: error)")

    translate = subparsers.add_parser(
        "translate", help="print the existential Datalog program")
    add_common(translate)

    fuzz = subparsers.add_parser(
        "fuzz", help="differential fuzzing across engine pairs")
    fuzz.add_argument("--budget", type=int, default=100,
                      help="number of generated workloads")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="root seed (cases derive from seed+index)")
    fuzz.add_argument("--oracles", default=None,
                      metavar="NAME[,NAME...]",
                      help="comma-separated oracle subset (default: "
                           "the full battery)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="persist shrunk reproducers here "
                           "(e.g. tests/fuzz_corpus)")
    fuzz.add_argument("--coverage", action="store_true",
                      help="coverage-guided generation: bias workloads "
                           "toward translated-program feature buckets "
                           "not yet seen in this run")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="record raw failing cases without "
                           "minimization")
    fuzz.add_argument("--progress", type=int, default=50,
                      metavar="EVERY",
                      help="emit a progress line to *stderr* every "
                           "EVERY cases (0 disables); progress never "
                           "touches stdout, so --json | tee stays one "
                           "valid JSON document")
    fuzz.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")

    serve = subparsers.add_parser(
        "serve", help="long-lived program server (JSON-lines)")
    serve.add_argument("--port", type=int, default=None,
                       help="serve a TCP socket on this port (0 picks "
                            "a free one; default: stdin/stdout)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port mode")
    serve.add_argument("--max-programs", type=int, default=32,
                       help="compiled-program LRU capacity")
    serve.add_argument("--max-sessions", type=int, default=32,
                       help="warm-session LRU capacity")

    return parser


def _load(args) -> tuple[CompiledProgram, Instance]:
    program = load_program(args.program)
    instance = load_instance_args(args.data) if args.data \
        else Instance.empty()
    return compile_program(program, semantics=args.semantics), instance


def _emit_json(payload: dict, out) -> None:
    print(json.dumps(payload, default=json_default, sort_keys=True),
          file=out)


#: Shared with the server protocol - one fact encoding everywhere.
_fact_json = fact_payload


def _print_worlds(pdb, top: int, out) -> None:
    worlds = sorted(pdb.worlds(), key=lambda wp: -wp[1])
    for world, probability in worlds[:top]:
        print(f"{probability:12.8f}  {world.canonical_text()}",
              file=out)
    if len(worlds) > top:
        print(f"... {len(worlds) - top} more worlds", file=out)
    print(f"{pdb.err_mass():12.8f}  err", file=out)


def cmd_exact(args, out) -> int:
    """``repro exact``: print the exact output SPDB."""
    compiled, instance = _load(args)
    session = compiled.on(instance, parallel=args.parallel,
                          max_depth=args.max_depth)
    result = session.exact()
    pdb = result.pdb
    if args.json:
        worlds = sorted(pdb.worlds(), key=lambda wp: -wp[1])
        _emit_json({
            "command": "exact",
            "n_worlds": pdb.support_size(),
            "total_mass": pdb.total_mass(),
            "err_mass": pdb.err_mass(),
            "elapsed_seconds": result.elapsed,
            "worlds": [
                {"probability": probability,
                 "facts": [_fact_json(f) for f in
                           sorted(world.facts,
                                  key=lambda f: f.sort_key())]}
                for world, probability in worlds[:args.top]],
        }, out)
        return 0
    print(f"# {pdb.support_size()} worlds, mass "
          f"{pdb.total_mass():.8f}", file=out)
    _print_worlds(pdb, args.top, out)
    return 0


def cmd_sample(args, out) -> int:
    """``repro sample``: print Monte-Carlo fact marginals."""
    compiled, instance = _load(args)
    # "shared" stream scheme: output is bit-identical with historical
    # releases for the same --seed (and keeps --backend auto scalar).
    session = compiled.on(instance, parallel=args.parallel,
                          max_steps=args.max_steps, seed=args.seed,
                          streams="shared", backend=args.backend)
    result = session.sample(args.n)
    pdb = result.pdb
    if args.json:
        # The same document a ProgramServer "sample" reply carries.
        _emit_json(sample_payload(result), out)
        return 0
    marginals = fact_marginals(pdb)
    ordered = sorted(marginals, key=lambda f: f.sort_key())
    print(f"# {len(pdb.worlds)} terminated runs, "
          f"{pdb.truncated} truncated (err "
          f"{pdb.err_mass():.4f})", file=out)
    for fact in ordered:
        print(f"{marginals[fact]:10.6f}  {fact!r}", file=out)
    return 0


def _parse_observe_arg(text: str):
    """One ``--observe`` item -> an evidence wire payload (dict).

    Accepts either a raw JSON payload (anything starting with ``{``)
    or the compact ``REL,carried...,value`` form where each token is
    parsed as JSON when possible (so ``0.5`` is a float) and kept as a
    string otherwise.
    """
    from repro.errors import ValidationError
    stripped = text.strip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"bad --observe JSON {text!r}: {error}") from None
        return payload
    tokens = [token.strip() for token in stripped.split(",")]
    if len(tokens) < 2 or not tokens[0]:
        raise ValidationError(
            f"--observe needs at least 'REL,value', got {text!r}")

    def coerce(token: str):
        try:
            return json.loads(token)
        except json.JSONDecodeError:
            return token

    return {"relation": tokens[0],
            "carried": [coerce(token) for token in tokens[1:-1]],
            "value": coerce(tokens[-1])}


def _parse_plan_arg(text: str):
    """``--plan`` -> a Query (inline JSON document or ``@file.json``)."""
    from repro.errors import ValidationError
    from repro.serving.protocol import parse_plan
    stripped = text.strip()
    if stripped.startswith("@"):
        with open(stripped[1:], "r", encoding="utf-8") as handle:
            stripped = handle.read()
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise ValidationError(
            f"bad --plan JSON {text!r}: {error}") from None
    return parse_plan(payload)


def cmd_query(args, out) -> int:
    """``repro query``: answer a relational plan over the output PDB.

    Follows the facade's :meth:`~repro.api.Session.query` convention
    (exact for discrete programs, sampling otherwise, posterior with
    ``--observe``); ``--json`` emits the same document a
    :class:`~repro.serving.ProgramServer` ``query`` reply carries.
    """
    from repro.serving.protocol import parse_evidence, query_payload
    from repro.serving.server import _FactEvent
    compiled, instance = _load(args)
    plan = _parse_plan_arg(args.plan)
    session = compiled.on(instance, seed=args.seed,
                          max_steps=args.max_steps,
                          backend=args.backend)
    evidence = []
    for item in args.observe:
        parsed = parse_evidence(_parse_observe_arg(item))
        evidence.append(_FactEvent(parsed) if isinstance(parsed, Fact)
                        else parsed)
    if evidence:
        session = session.observe(*evidence)
    query_result = session.query(plan, n=args.n)
    payload = query_payload(query_result)
    if args.json:
        _emit_json(payload, out)
        return 0
    runs = f"{payload['n_runs']} runs" if payload["n_runs"] is not None \
        else "exact"
    print(f"# {payload['kind']} ({runs}), "
          f"strategy {payload['strategy']}", file=out)
    for entry in payload["answers"]:
        rows = "; ".join(
            "(" + ", ".join(repr(value) for value in row) + ")"
            for row in entry["rows"]) or "(empty)"
        print(f"{entry['probability']:10.6f}  "
              f"[{', '.join(entry['columns'])}] {rows}", file=out)
    print(f"# P(non-empty) = {payload['boolean_probability']:.6f}",
          file=out)
    if "expected_aggregate" in payload:
        print(f"# E[aggregate]  = {payload['expected_aggregate']:.6f}",
              file=out)
    return 0


def cmd_posterior(args, out) -> int:
    """``repro posterior``: conditioned marginals given evidence.

    Shares the evidence wire codec and the response document with the
    server's ``posterior`` op, so ``repro posterior --json`` output is
    the same payload a :class:`~repro.serving.ProgramServer` reply
    carries.
    """
    from repro.serving.protocol import parse_evidence, posterior_payload
    from repro.serving.server import _FactEvent
    compiled, instance = _load(args)
    session = compiled.on(instance, seed=args.seed,
                          max_steps=args.max_steps)
    evidence = []
    for item in args.observe:
        parsed = parse_evidence(_parse_observe_arg(item))
        evidence.append(_FactEvent(parsed) if isinstance(parsed, Fact)
                        else parsed)
    if evidence:
        session = session.observe(*evidence)
    result = session.posterior(method=args.method, n=args.n)
    payload = posterior_payload(result)
    if args.json:
        _emit_json(payload, out)
        return 0
    ess = payload["effective_sample_size"]
    print(f"# method {payload['method']}, {payload['n_runs']} runs, "
          f"{payload['n_truncated']} truncated"
          + (f", ess {ess:.1f}" if ess is not None else ""), file=out)
    for entry in payload["marginals"]:
        fact = Fact(entry["fact"]["relation"],
                    tuple(entry["fact"]["args"]))
        print(f"{entry['probability']:10.6f}  {fact!r}", file=out)
    return 0


def cmd_analyze(args, out) -> int:
    """``repro analyze``: print the static structure report."""
    compiled, _instance = _load(args)
    program = compiled.program
    report = compiled.analyze()
    if args.json:
        # The same document a ProgramServer "analyze" reply carries.
        _emit_json(analyze_payload(compiled, deep=args.deep), out)
        return 0
    print(f"rules:            {len(program)}", file=out)
    print(f"random rules:     {len(program.random_rules())}", file=out)
    print(f"distributions:    "
          f"{', '.join(program.distributions_used()) or '-'}", file=out)
    print(f"extensional:      "
          f"{', '.join(sorted(program.extensional)) or '-'}", file=out)
    print(f"discrete program: {program.is_discrete()}", file=out)
    print(f"weakly acyclic:   {report.weakly_acyclic}", file=out)
    if not report.weakly_acyclic:
        kind = "continuous" if report.continuous_cycle else "discrete"
        print(f"cycle kind:       {kind} "
              f"({', '.join(report.cyclic_distributions)})", file=out)
        if report.almost_surely_diverges():
            print("verdict:          almost surely non-terminating "
                  "(Section 6.3)", file=out)
        else:
            print("verdict:          may terminate; estimate with "
                  "estimate_termination_probability()", file=out)
    else:
        print("verdict:          terminating on every input "
              "(Theorem 6.3)", file=out)
    if args.deep:
        deep = compiled.analyze(deep=True)
        print(deep.lint.summary(), file=out)
        for diagnostic in deep.lint.diagnostics:
            print(f"  {diagnostic}", file=out)
        print(deep.capabilities.summary(), file=out)
    return 0


def cmd_lint(args, out) -> int:
    """``repro lint``: static diagnostics + capability predictions.

    Exit code 0 when no diagnostic reaches the ``--fail-on`` severity
    (default: ``error``), 1 otherwise, 2 on usage errors.  ``--json``
    emits one document with the documented keys ``command``, ``ok``,
    ``fail_on``, ``semantics``, ``n_rules``, ``counts``,
    ``diagnostics`` and ``capabilities``.
    """
    from repro.analysis import deep_analyze
    compiled, instance = _load(args)
    # Instance-dependent checks (rule reachability over the closed
    # input) only make sense when input data was actually supplied.
    report = deep_analyze(compiled.translated,
                          instance=instance if args.data else None,
                          termination=compiled.analyze())
    lint = report.lint
    ok = lint.ok(args.fail_on)
    if args.json:
        _emit_json({
            "command": "lint",
            "ok": ok,
            "fail_on": args.fail_on,
            "semantics": args.semantics,
            "n_rules": len(compiled.program),
            "counts": lint.counts(),
            "diagnostics": [d.to_json() for d in lint.diagnostics],
            "capabilities": report.capabilities.to_json(),
        }, out)
        return 0 if ok else 1
    print(f"# {lint.summary()} (fail on {args.fail_on})", file=out)
    for diagnostic in lint.diagnostics:
        print(str(diagnostic), file=out)
    print(f"# {report.capabilities.summary()}", file=out)
    return 0 if ok else 1


def cmd_translate(args, out) -> int:
    """``repro translate``: print the existential program."""
    compiled, _instance = _load(args)
    translated = compiled.translated
    if args.json:
        _emit_json({
            "command": "translate",
            "semantics": translated.semantics,
            "n_rules": len(translated),
            "aux_relations": sorted(translated.aux_relations),
            "rules": [repr(rule) for rule in translated.rules],
        }, out)
        return 0
    print(repr(translated), file=out)
    return 0


def cmd_fuzz(args, out) -> int:
    """``repro fuzz``: run a budgeted differential-fuzz pass.

    Exit code 0 when every oracle agrees on every generated workload,
    1 when a discrepancy was found (its shrunk reproducer is persisted
    to ``--corpus`` if given), 2 on usage errors.
    """
    from repro.testing import oracles_by_name, run_fuzz
    if args.budget <= 0:
        print(f"error: --budget must be positive, got {args.budget}",
              file=sys.stderr)
        return 2
    if args.seed < 0:
        print(f"error: --seed must be non-negative, got {args.seed}",
              file=sys.stderr)
        return 2
    battery = None
    if args.oracles is not None:
        by_name = oracles_by_name()
        names = [name.strip() for name in args.oracles.split(",")
                 if name.strip()]
        unknown = sorted(set(names) - set(by_name))
        if not names or unknown:
            what = f"unknown oracle(s) {', '.join(unknown)}" \
                if unknown else "--oracles selected no oracle"
            print(f"error: {what}; "
                  f"known: {', '.join(sorted(by_name))}",
                  file=sys.stderr)
            return 2
        battery = [by_name[name] for name in names]
    # Progress goes to stderr *only*: CI pipes stdout through `tee`
    # into fuzz-report.json and expects exactly one JSON document
    # there (mixing progress into stdout under --json corrupted the
    # artifact).
    on_case = None
    if args.progress > 0:
        def on_case(index, case):
            if index % args.progress == 0:
                print(f"fuzz: case {index}/{args.budget} "
                      f"({case.describe()})",
                      file=sys.stderr, flush=True)
    report = run_fuzz(budget=args.budget, seed=args.seed,
                      oracles=battery, corpus_dir=args.corpus,
                      shrink=not args.no_shrink, on_case=on_case,
                      coverage_guided=args.coverage)
    if args.json:
        _emit_json(report.to_json(), out)
        return 0 if report.ok() else 1
    print(f"# {report.summary()}", file=out)
    print(f"{'oracle':<16} {'checked':>8} {'ok':>6} {'skip':>6} "
          f"{'fail':>6}", file=out)
    for name, stats in sorted(report.stats.items()):
        print(f"{name:<16} {stats.checked:>8} {stats.ok:>6} "
              f"{stats.skipped:>6} {stats.failed:>6}", file=out)
    for discrepancy in report.discrepancies:
        print(f"\nDISCREPANCY [{discrepancy.oracle}] "
              f"{discrepancy.case.describe()}", file=out)
        print(f"  {discrepancy.detail}", file=out)
        print("  shrunk reproducer:", file=out)
        for line in discrepancy.shrunk.program.pretty().splitlines():
            print(f"    {line}", file=out)
        if discrepancy.corpus_path is not None:
            print(f"  saved to {discrepancy.corpus_path}", file=out)
    if report.discrepancies and args.corpus is None:
        print("\nhint: pass --corpus tests/fuzz_corpus to persist "
              "reproducers for pytest replay", file=out)
    return 0 if report.ok() else 1


def cmd_serve(args, out) -> int:
    """``repro serve``: run the long-lived program server.

    Without ``--port``, speaks JSON-lines on stdin/stdout until EOF.
    With ``--port`` (0 = pick a free port), binds a threading TCP
    server, announces the bound address as one JSON line on stdout -
    ``{"serving": {"host": ..., "port": ...}}`` - and serves until
    interrupted.
    """
    from repro.serving import ProgramServer, serve_socket, serve_stdio
    server = ProgramServer(max_programs=args.max_programs,
                           max_sessions=args.max_sessions)
    if args.port is None:
        served = serve_stdio(server, sys.stdin, out)
        print(f"# served {served} requests", file=sys.stderr)
        return 0
    tcp = serve_socket(server, args.host, args.port)
    host, port = tcp.server_address[:2]
    _emit_json({"serving": {"host": host, "port": port}}, out)
    if hasattr(out, "flush"):
        out.flush()
    try:
        tcp.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        tcp.server_close()
    return 0


_COMMANDS = {
    "exact": cmd_exact,
    "sample": cmd_sample,
    "query": cmd_query,
    "posterior": cmd_posterior,
    "analyze": cmd_analyze,
    "lint": cmd_lint,
    "translate": cmd_translate,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
}


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
