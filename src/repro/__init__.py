"""repro: Generative Datalog with continuous distributions.

A faithful, executable reproduction of

    Grohe, Kaminski, Katoen, Lindner.
    *Generative Datalog with Continuous Distributions.*  PODS 2020.

The package implements the full pipeline of the paper: GDatalog syntax
(Section 3), the translation to existential Datalog (3.A/3.B), rule
applicability and measurable-selection chase policies (Section 3.3),
the sequential probabilistic chase as a Markov process (Section 4), the
parallel chase (Section 5), exact and Monte-Carlo output SPDBs, the
Bárány-semantics simulations (Section 6.2), and termination analysis
(Section 6.3) - plus the substrates all of this stands on: probabilistic
databases (Section 2.3), parameterized distributions (Definition 2.1),
discrete measures and stochastic kernels (Section 2.1), a deterministic
Datalog engine, and a relational-algebra/aggregate query layer
(Fact 2.6).

Quickstart
----------

Compile once, infer many: :func:`repro.compile` caches the translation
and every other per-program artifact; the returned
:class:`~repro.api.CompiledProgram` binds input data via ``.on(...)``
and answers queries through a fluent :class:`~repro.api.Session`.

>>> import repro
>>> compiled = repro.compile('''
...     Earthquake(c, Flip<0.1>) :- City(c, r).
... ''')
>>> data = repro.Instance.of(repro.Fact("City", ("Napa", 0.03)))
>>> session = compiled.on(data)
>>> result = session.exact()
>>> round(result.marginal(repro.Fact("Earthquake", ("Napa", 1))), 3)
0.1

Monte-Carlo semantics (the only option for continuous programs) runs
through the same session - the program is translated exactly once no
matter how many runs you draw:

>>> sampled = session.sample(2000, seed=0)
>>> abs(sampled.marginal(
...     repro.Fact("Earthquake", ("Napa", 1))) - 0.1) < 0.05
True

Conditioning is a fluent step: ``session.observe(event)
.posterior(method="rejection")`` (or ``method="likelihood"`` for
sample-level observations, ``method="exact"`` for discrete programs).
The historical flat functions (``exact_spdb``, ``sample_spdb``,
``run_chase``, ...) remain as deprecated delegating shims.

The :mod:`repro.testing` subsystem differential-fuzzes all of the
above: seeded random workloads spanning the grammar, oracles asserting
the paper's agreement theorems across engine pairs, auto-shrinking of
discrepancies, and a persisted reproducer corpus (``repro fuzz`` on
the command line).
"""

from repro.api import (DEFAULT_CONFIG, ChaseConfig, CompiledProgram,
                       InferenceResult, Session, StreamingPosterior,
                       compile)
from repro.core import (Atom, ChasePolicy, ChaseRun,
                        ConstrainedProgram, Const, ExistentialProgram,
                        Firing, FirstPolicy, LastPolicy, PriorityPolicy,
                        Program, RandomTerm, RandomTiePolicy,
                        RejectionResult, RoundRobinPolicy, Rule,
                        TerminationReport, Var, analyze_termination,
                        apply_to_pdb, atom, chase_markov_process,
                        chase_outputs, chase_step_kernel,
                        condition_by_rejection, condition_exact,
                        exact_spdb, likelihood_weighting,
                        normalize_program, observe,
                        parallel_markov_process, program_to_source,
                        run_chase, run_parallel_chase, sample_spdb,
                        spdb_mass_report, standard_policies,
                        to_barany_simulation, to_grohe_simulation,
                        translate, translate_barany, weakly_acyclic)
from repro.distributions import (DEFAULT_REGISTRY, DistributionRegistry,
                                 ParameterizedDistribution)
from repro.errors import (ChaseError, DistributionError, MeasureError,
                          ParseError, ReproError, SchemaError,
                          StreamingUnsupported, UnsupportedProgramError,
                          ValidationError)
from repro.measures import DiscreteMeasure, Kernel, MarkovProcess
from repro.pdb import (AtLeastEvent, ContainsFactEvent, CountingEvent,
                       DiscretePDB, Event, Fact, FactSet, Instance,
                       Interval, MonteCarloPDB, Schema, relation)
from repro.pdb.weighted import WeightedColumnarPDB, WeightedPDB

__version__ = "1.8.0"

__all__ = [
    "Atom", "ChaseConfig", "ChaseError", "ChasePolicy", "ChaseRun",
    "CompiledProgram", "ConstrainedProgram", "Const", "DEFAULT_CONFIG",
    "InferenceResult", "RejectionResult", "Session", "compile",
    "condition_by_rejection", "condition_exact", "likelihood_weighting",
    "observe", "program_to_source", "StreamingPosterior",
    "StreamingUnsupported", "WeightedColumnarPDB", "WeightedPDB",
    "AtLeastEvent", "ContainsFactEvent", "CountingEvent",
    "DEFAULT_REGISTRY", "DiscreteMeasure", "DiscretePDB",
    "DistributionError", "DistributionRegistry", "Event",
    "ExistentialProgram", "Fact", "FactSet", "Firing", "FirstPolicy",
    "Instance", "Interval", "Kernel", "LastPolicy", "MarkovProcess",
    "MeasureError", "MonteCarloPDB", "ParameterizedDistribution",
    "ParseError", "PriorityPolicy", "Program", "RandomTerm",
    "RandomTiePolicy", "ReproError", "RoundRobinPolicy", "Rule",
    "Schema", "SchemaError", "TerminationReport",
    "UnsupportedProgramError", "ValidationError", "Var",
    "analyze_termination", "apply_to_pdb", "atom",
    "chase_markov_process", "chase_outputs", "chase_step_kernel",
    "exact_spdb", "normalize_program", "parallel_markov_process",
    "relation", "run_chase", "run_parallel_chase", "sample_spdb",
    "spdb_mass_report", "standard_policies", "to_barany_simulation",
    "to_grohe_simulation", "translate", "translate_barany",
    "weakly_acyclic", "__version__",
]
