"""Synthetic workload generators for benchmarks and property tests.

Scaling experiments need families of inputs and programs with tunable
size.  All generators are deterministic given their seed.

* :func:`earthquake_city_instance` - Example 3.4 inputs with ``n``
  cities and ``k`` units per city (E4 scaling);
* :func:`heights_instance` - Example 3.5 inputs with ``n`` countries ×
  ``k`` persons (E5 scaling);
* :func:`random_discrete_program` - random weakly-acyclic discrete
  GDatalog programs (chase-independence and FD property tests);
* :func:`chain_program` / :func:`chain_instance` - deterministic
  Datalog chains (engine ablation, E13);
* :func:`bernoulli_grid_program` - wide fan-out of independent flips
  (parallel-chase stress);
* :func:`staged_slots_program` / :func:`staged_slots_instance` - a
  staged draw fanning into per-slot flips over a padded instance
  (many small signature groups: the cross-group draw-pooling and
  overlay-fork stress workload).
"""

from __future__ import annotations

import numpy as np

from repro.core.atoms import Atom
from repro.core.program import Program
from repro.core.rules import Rule
from repro.core.terms import Const, RandomTerm, Var
from repro.distributions.registry import DEFAULT_REGISTRY
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


def earthquake_city_instance(n_cities: int, units_per_city: int,
                             seed: int = 0) -> Instance:
    """Example 3.4 input at scale: n cities, k houses/businesses each."""
    rng = np.random.default_rng(seed)
    facts = []
    for c in range(n_cities):
        city = f"city-{c}"
        rate = round(float(rng.uniform(0.01, 0.2)), 4)
        facts.append(Fact("City", (city, rate)))
        for u in range(units_per_city):
            if u % 2 == 0:
                facts.append(Fact("House", (f"h-{c}-{u}", city)))
            else:
                facts.append(Fact("Business", (f"b-{c}-{u}", city)))
    return Instance(facts)


def heights_instance(n_countries: int, persons_per_country: int,
                     seed: int = 0) -> Instance:
    """Example 3.5 input at scale."""
    rng = np.random.default_rng(seed)
    facts = []
    for c in range(n_countries):
        country = f"country-{c}"
        mu = round(float(rng.uniform(150.0, 190.0)), 2)
        var = round(float(rng.uniform(20.0, 80.0)), 2)
        facts.append(Fact("CMoments", (country, mu, var)))
        for p in range(persons_per_country):
            facts.append(Fact("PCountry", (f"p-{c}-{p}", country)))
    return Instance(facts)


def chain_program(length: int) -> Program:
    """Deterministic chain: ``T1(x) ← T0(x)``, ..., ``Tn(x) ← Tn-1(x)``."""
    rules = [Rule(Atom(f"T{i + 1}", (Var("x"),)),
                  (Atom(f"T{i}", (Var("x"),)),))
             for i in range(length)]
    return Program(rules)


def chain_instance(width: int) -> Instance:
    """``width`` seed facts for :func:`chain_program`."""
    return Instance(Fact("T0", (i,)) for i in range(width))


def transitive_closure_program() -> Program:
    """The classic recursive Datalog benchmark (deterministic)."""
    return Program.parse("""
        Path(x, y) :- Edge(x, y).
        Path(x, z) :- Path(x, y), Edge(y, z).
    """)


def random_graph_instance(n_nodes: int, n_edges: int,
                          seed: int = 0) -> Instance:
    """A random directed graph as ``Edge`` facts."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < min(n_edges, n_nodes * (n_nodes - 1)):
        a = int(rng.integers(n_nodes))
        b = int(rng.integers(n_nodes))
        if a != b:
            edges.add((a, b))
    return Instance(Fact("Edge", e) for e in edges)


def bernoulli_grid_program(bias: float = 0.5) -> Program:
    """One flip per input item: wide, flat fan-out.

    ``Out(i, Flip⟨bias⟩) ← Item(i)`` - every item's flip is applicable
    immediately, so a single parallel chase step fires them all.
    """
    return Program.parse(f"Out(i, Flip<{bias!r}>) :- Item(i).")


def items_instance(n: int) -> Instance:
    """``Item(0..n-1)`` seeds for :func:`bernoulli_grid_program`."""
    return Instance(Fact("Item", (i,)) for i in range(n))


def staged_slots_program(n_stages: int = 8,
                         flip_bias: float = 0.5) -> Program:
    """A staged draw fanning into per-slot flips: many small groups.

    ``Stage`` samples one of ``n_stages`` values; each value joins the
    stable ``Slot`` relation and enables its own layer of per-slot
    flips.  Under the batched chase this produces ``n_stages``
    signature groups in round 2, each needing ``Flip⟨bias⟩`` draws -
    the workload cross-group draw pooling and O(delta) overlay forks
    are built for (one ``sample_batch`` call and one delta fork per
    round instead of one full re-index + one call per group).
    """
    return Program.parse(f"""
        Stage(DiscreteUniform<0, {n_stages - 1}>) :- Go(g).
        Next(k, Flip<{flip_bias!r}>) :- Stage(s), Slot(s, k).
    """)


def staged_slots_instance(n_stages: int = 8, slots_per_stage: int = 6,
                          padding: int = 400) -> Instance:
    """Input for :func:`staged_slots_program`.

    ``padding`` adds inert facts that inflate the closed instance -
    exactly what made eager (re-indexing) group forks expensive.
    """
    facts = [Fact("Go", (0,))]
    facts += [Fact("Slot", (s, f"slot-{s}-{k}"))
              for s in range(n_stages)
              for k in range(slots_per_stage)]
    facts += [Fact("Pad", (i, i + 1)) for i in range(padding)]
    return Instance(facts)


def random_discrete_program(n_base_rules: int = 3,
                            n_derived_rules: int = 3,
                            seed: int = 0,
                            biases: tuple[float, ...] = (0.3, 0.5, 0.7),
                            ) -> Program:
    """A random weakly-acyclic discrete program for property tests.

    Layered construction guarantees weak acyclicity: layer-0 rules
    sample flips from extensional data; layer-1 rules combine layer-0
    relations deterministically or with a further flip keyed by
    layer-0 values.  All distributions are finite-support, so exact
    enumeration is available.
    """
    rng = np.random.default_rng(seed)
    flip = DEFAULT_REGISTRY["Flip"]
    rules: list[Rule] = []
    x, y = Var("x"), Var("y")
    for i in range(n_base_rules):
        bias = float(rng.choice(biases))
        rules.append(Rule(
            Atom(f"L0R{i}", (x, RandomTerm(flip, (Const(bias),)))),
            (Atom("Base", (x,)),)))
    for j in range(n_derived_rules):
        first = int(rng.integers(n_base_rules))
        second = int(rng.integers(n_base_rules))
        mode = int(rng.integers(3))
        if mode == 0:
            # Deterministic join of two layer-0 results.
            rules.append(Rule(
                Atom(f"L1R{j}", (x,)),
                (Atom(f"L0R{first}", (x, Const(1))),
                 Atom(f"L0R{second}", (x, Const(1))))))
        elif mode == 1:
            # A further flip gated on a layer-0 outcome.
            bias = float(rng.choice(biases))
            rules.append(Rule(
                Atom(f"L1R{j}", (x, RandomTerm(flip, (Const(bias),)))),
                (Atom(f"L0R{first}", (x, Const(1))),)))
        else:
            # Copy rule across values.
            rules.append(Rule(
                Atom(f"L1R{j}", (x, y)),
                (Atom(f"L0R{first}", (x, y)),)))
    return Program(rules)


def base_instance(n: int) -> Instance:
    """``Base(0..n-1)`` seeds for :func:`random_discrete_program`."""
    return Instance(Fact("Base", (i,)) for i in range(n))
