"""Workloads: the paper's example programs and synthetic generators."""

from repro.workloads import generators, paper

__all__ = ["generators", "paper"]
