"""The paper's example programs, as ready-made constructors.

Each function returns the program (and input instance where one is
needed) exactly as printed in the paper:

* Example 1.1: ``G0``, ``Gε``, ``G'0`` and §6.2's ``H``, ``H'``
  (the semantics-comparison micro-programs);
* Example 3.4: the earthquake/burglary/alarm program of [3, Fig. 3];
* Example 3.5: continuous height sampling via ``Normal⟨µ, σ²⟩``;
* Section 6.3-style feedback programs (continuous and discrete cycles)
  used for the termination experiments.

Expected exact outcomes under both semantics are provided for the
discrete micro-programs as plain dictionaries, so tests and benchmarks
can assert against the paper's stated numbers (see EXPERIMENTS.md for
the Gε erratum discussion).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.program import Program
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


# ---------------------------------------------------------------------------
# Example 1.1
# ---------------------------------------------------------------------------

def example_1_1_g0() -> Program:
    """``G0``: two syntactically identical fair coin rules."""
    return Program.parse("""
        R(Flip<0.5>) :- true.
        R(Flip<0.5>) :- true.
    """)


def example_1_1_g_eps(epsilon: float) -> Program:
    """``Gε``: biases 1/2 and 1/2 + ε (as printed in the paper)."""
    if not 0.0 < epsilon <= 0.5:
        raise ValueError("the paper takes 0 < ε <= 1/2")
    return Program.parse(f"""
        R(Flip<0.5>) :- true.
        R(Flip<{0.5 + epsilon!r}>) :- true.
    """)


def example_1_1_g0_prime() -> Program:
    """``G'0``: same law, different distribution *names* (Flip, Flip')."""
    return Program.parse("""
        R(Flip<0.5>) :- true.
        R(Flip'<0.5>) :- true.
    """)


def example_1_1_g0_double_prime() -> Program:
    """``G''0`` (§6.2): the single-rule program ``R(Flip⟨1/2⟩) ← ⊤``."""
    return Program.parse("R(Flip<0.5>) :- true.")


def _r_world(*values: int) -> Instance:
    return Instance(Fact("R", (v,)) for v in values)


#: Our semantics on G0 / G'0 (identical - renaming invariance):
#: {R(1)} 1/4, {R(0)} 1/4, {R(0), R(1)} 1/2.
G0_EXPECTED_GROHE = {
    _r_world(1): 0.25,
    _r_world(0): 0.25,
    _r_world(0, 1): 0.5,
}

#: [3]'s semantics on G0: one shared sample - {R(1)} 1/2, {R(0)} 1/2.
G0_EXPECTED_BARANY = {
    _r_world(1): 0.5,
    _r_world(0): 0.5,
}

#: [3]'s semantics on G'0: names differ, so two independent samples.
G0_PRIME_EXPECTED_BARANY = dict(G0_EXPECTED_GROHE)


def g_eps_expected(epsilon: float) -> dict[Instance, float]:
    """Exact outcomes of ``Gε`` with biases (1/2, 1/2 + ε).

    Both semantics agree on ``Gε`` (the parameters differ, so [3] also
    samples twice).  Note the paper's prose values (1/4 + ε + ε², ...)
    correspond to *both* biases being 1/2 + ε; the displayed program
    has biases 1/2 and 1/2 + ε, giving the values below.  Either way
    the discontinuity claim is unaffected; see EXPERIMENTS.md (E2).
    """
    p, q = Fraction(1, 2), Fraction(1, 2) + Fraction(epsilon)
    return {
        _r_world(1): float(p * q),
        _r_world(0): float((1 - p) * (1 - q)),
        _r_world(0, 1): float(p * (1 - q) + (1 - p) * q),
    }


def g_eps_expected_paper_prose(epsilon: float) -> dict[Instance, float]:
    """The prose reading: both biases 1/2 + ε (values as printed)."""
    q = Fraction(1, 2) + Fraction(epsilon)
    return {
        _r_world(1): float(q * q),
        _r_world(0): float((1 - q) * (1 - q)),
        _r_world(0, 1): float(2 * q * (1 - q)),
    }


# ---------------------------------------------------------------------------
# Section 6.2: H and H'
# ---------------------------------------------------------------------------

def section_6_2_h() -> Program:
    """``H``: R and S each sample a fair coin."""
    return Program.parse("""
        R(Flip<0.5>) :- true.
        S(Flip<0.5>) :- true.
    """)


def section_6_2_h_prime() -> Program:
    """``H'``: sampling pulled out into the auxiliary predicate A."""
    return Program.parse("""
        A(Flip<0.5>) :- true.
        R(x) :- A(x).
        S(x) :- A(x).
    """)


def _rs_world(r: int, s: int) -> Instance:
    return Instance.of(Fact("R", (r,)), Fact("S", (s,)))


#: Our semantics on H: four outcomes, 1/4 each.
H_EXPECTED_GROHE = {
    _rs_world(0, 0): 0.25, _rs_world(0, 1): 0.25,
    _rs_world(1, 0): 0.25, _rs_world(1, 1): 0.25,
}

#: [3]'s semantics on H: shared sample - perfectly correlated.
H_EXPECTED_BARANY = {
    _rs_world(0, 0): 0.5,
    _rs_world(1, 1): 0.5,
}

#: H' under our semantics, restricted to {R, S}: equals [3] on H.
H_PRIME_EXPECTED_RESTRICTED = dict(H_EXPECTED_BARANY)


# ---------------------------------------------------------------------------
# Example 3.4: earthquake / burglary / alarm ([3, Fig. 3])
# ---------------------------------------------------------------------------

EARTHQUAKE_PROGRAM_TEXT = """
    Earthquake(c, Flip<0.1>)    :- City(c, r).
    Unit(h, c)                  :- House(h, c).
    Unit(b, c)                  :- Business(b, c).
    Burglary(x, c, Flip<r>)     :- Unit(x, c), City(c, r).
    Trig(x, Flip<0.6>)          :- Unit(x, c), Earthquake(c, 1).
    Trig(x, Flip<0.9>)          :- Burglary(x, c, 1).
    Alarm(x)                    :- Trig(x, 1).
"""


def example_3_4_program() -> Program:
    """The GDatalog program of Example 3.4 (earthquake model)."""
    return Program.parse(EARTHQUAKE_PROGRAM_TEXT)


def example_3_4_instance(cities: dict[str, float] | None = None,
                         houses: dict[str, str] | None = None,
                         businesses: dict[str, str] | None = None,
                         ) -> Instance:
    """An input instance for Example 3.4.

    Defaults to the two-city scenario used in [3]'s exposition: Napa
    (burglary rate 0.03) and Davis (rate 0.01), one house and one
    business.
    """
    cities = cities if cities is not None else \
        {"Napa": 0.03, "Davis": 0.01}
    houses = houses if houses is not None else {"house-1": "Napa"}
    businesses = businesses if businesses is not None else \
        {"biz-1": "Davis"}
    facts = [Fact("City", (name, rate))
             for name, rate in cities.items()]
    facts += [Fact("House", (h, c)) for h, c in houses.items()]
    facts += [Fact("Business", (b, c)) for b, c in businesses.items()]
    return Instance(facts)


def alarm_probability_closed_form(city_rate: float,
                                  p_quake: float = 0.1,
                                  p_trig_quake: float = 0.6,
                                  p_trig_burglary: float = 0.9) -> float:
    """Exact P(Alarm(x)) for a unit in a city with the given rate.

    A unit's alarm triggers via the earthquake path (quake occurred and
    triggered) or the burglary path (burglary occurred and triggered);
    the paths are independent given the model structure:

    ``P = 1 − (1 − p_q·p_tq)(1 − r·p_tb)``.
    """
    quake_path = p_quake * p_trig_quake
    burglary_path = city_rate * p_trig_burglary
    return 1.0 - (1.0 - quake_path) * (1.0 - burglary_path)


# ---------------------------------------------------------------------------
# Example 3.5: continuous height model
# ---------------------------------------------------------------------------

HEIGHT_PROGRAM_TEXT = """
    PHeight(p, Normal<mu, sigma2>) :- PCountry(p, c),
                                      CMoments(c, mu, sigma2).
"""


def example_3_5_program() -> Program:
    """The continuous program of Example 3.5 (height sampling)."""
    return Program.parse(HEIGHT_PROGRAM_TEXT)


def example_3_5_instance(moments: dict[str, tuple[float, float]]
                         | None = None,
                         persons_per_country: int = 3,
                         ) -> Instance:
    """People + country moment table for Example 3.5.

    ``moments`` maps country name to (mean, variance) of heights.
    """
    moments = moments if moments is not None else {
        "NL": (183.8, 49.0), "PE": (165.2, 36.0)}
    facts = []
    for country, (mu, var) in moments.items():
        facts.append(Fact("CMoments", (country, mu, var)))
        for index in range(persons_per_country):
            facts.append(Fact("PCountry",
                              (f"{country.lower()}-p{index}", country)))
    return Instance(facts)


# ---------------------------------------------------------------------------
# Section 6.3: feedback (cyclic) programs for termination experiments
# ---------------------------------------------------------------------------

def continuous_feedback_program() -> Program:
    """A continuous special cycle: almost surely non-terminating.

    ``Value`` feeds its own sampling rule: each sample produces a fresh
    real, which (almost surely) differs from all earlier parameters, so
    a new pair is always applicable (Section 6.3's argument).
    """
    return Program.parse("""
        Value(Normal<0, 1>) :- Seed(s).
        Value(Normal<v, 1>) :- Value(v).
    """)


def discrete_feedback_program(p: float = 0.5) -> Program:
    """A Flip-driven walk along a finite ``Succ`` chain.

    The recursion runs through *deterministic* positions only (the
    sampled bit gates the next hop but is never fed back as a value),
    so the program is weakly acyclic and terminates on every finite
    chain; the number of samples drawn is geometric.  Used as the
    terminating contrast case in experiment E8.
    """
    return Program.parse(f"""
        Reach(0, Flip<{p!r}>) :- Seed(s).
        Reach(n, Flip<{p!r}>) :- Reach(m, 1), Succ(m, n).
    """)


def discrete_cycle_program(rate: float = 1.0) -> Program:
    """A genuine discrete special cycle (not weakly acyclic).

    Each trigger value spawns a Poisson sample, and each sampled value
    becomes a new trigger.  The chase terminates exactly when every
    sampled value repeats an already-triggered one; with an infinite
    support this can take unboundedly many steps, yet termination is
    almost sure for moderate rates (the walk keeps revisiting small
    naturals).  This is the discrete-cycle class whose AST bounds the
    paper defers to future work (Section 6.3).
    """
    return Program.parse(f"""
        Chain(v, Poisson<{rate!r}>) :- Trigger(v).
        Trigger(w) :- Chain(v, w).
    """)


def trigger_instance(start: int = 0) -> Instance:
    """``Trigger(start)`` - seed of :func:`discrete_cycle_program`."""
    return Instance.of(Fact("Trigger", (start,)))


def seed_instance(chain_length: int = 0) -> Instance:
    """``Seed(0)`` plus a successor chain for the discrete feedback."""
    facts = [Fact("Seed", (0,))]
    facts += [Fact("Succ", (i, i + 1)) for i in range(chain_length)]
    return Instance(facts)


def discrete_feedback_termination_probability(p: float,
                                              chain_length: int) -> float:
    """Exact P(discrete feedback terminates) with a finite Succ chain.

    With a finite chain of length ``L`` the program always terminates
    (weakly acyclic on that data in effect), but the number of samples
    is random; with the chain exhausted the walk stops regardless.
    This helper returns 1.0 and exists to document that the *finite*
    variant terminates; the unbounded behaviour is explored empirically
    in experiment E8 via long chains.
    """
    return 1.0


def random_walk_expected_steps(p: float, chain_length: int) -> float:
    """Expected number of Reach samples with success bias p, chain L.

    The walk samples at node 0, then advances while 1s are drawn:
    E[samples] = 1 + p + p² + ... up to the chain length.
    """
    return float(sum(p ** k for k in range(chain_length + 1)))
