"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The subclasses mirror the
phases of the paper's pipeline: schema/validation problems when a program
is built (Definitions 3.1-3.3), parse errors in the surface syntax,
distribution-parameter problems (Definition 2.1), and semantic problems
detected while chasing (Section 4/5).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation, arity or attribute-domain constraint was violated."""


class ValidationError(ReproError):
    """A program, rule, atom or term failed a well-formedness check.

    This covers the syntactic restrictions of Definitions 3.1-3.3: random
    terms only in intensional heads, bodies deterministic, head variables
    bound in the body, and so on.
    """


class ParseError(ReproError):
    """The textual GDatalog syntax could not be parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", column {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class DistributionError(ReproError):
    """A parameterized distribution was used with invalid parameters.

    Raised when a parameter tuple lies outside the parameter space
    ``Theta_psi`` of Definition 2.1, e.g. a negative variance for
    ``Normal`` or a bias outside [0, 1] for ``Flip``.
    """


class UnsupportedProgramError(ReproError):
    """The operation does not support this class of programs.

    For instance, exact inference (:mod:`repro.core.exact`) requires all
    random terms to use discrete distributions; invoking it on a program
    with a ``Normal`` term raises this error.
    """


class StreamingUnsupported(UnsupportedProgramError):
    """Streamed evidence cannot be applied exactly to this ensemble.

    Raised by :class:`repro.api.stream.StreamingPosterior` when forcing
    an observed sample into the pre-sampled prior worlds would *not*
    reproduce one-shot likelihood weighting - e.g. the observed value
    would have enabled downstream rule firings that the prior worlds
    never ran.  The streaming layer declines rather than silently
    approximating; fall back to
    ``session.observe(...).posterior(method="likelihood")``.
    """


class ChaseError(ReproError):
    """An internal invariant of the chase was violated.

    Seeing this exception indicates a bug: the chase machinery maintains
    the invariants of Lemma 3.10 (functional dependencies) and Lemma C.4
    (no repeated instances) by construction.
    """


class NonTerminationError(ReproError):
    """A chase exceeded its step budget where termination was required.

    Callers that can tolerate non-termination should use the APIs that
    return explicit error mass (``err``) instead of catching this.
    """


class MeasureError(ReproError):
    """A measure-theoretic object was constructed inconsistently.

    Examples: a discrete measure with negative mass, a sub-probability
    measure with total mass exceeding one, or a kernel returning masses
    that do not form a (sub-)probability distribution.
    """
