"""Text and DOT renderings of chase trees and position graphs.

Figure 1 of the paper depicts the sequential chase tree with its
finite paths mapping into instances and infinite paths mapping to
``err``.  This module renders the library's explicit
:class:`repro.core.exact.ChaseNode` trees in that spirit:

* :func:`format_chase_tree` - indented text, one node per line, with
  branch probabilities, new facts, and leaf/truncation markers;
* :func:`chase_tree_to_dot` - Graphviz DOT source for the same tree;
* :func:`position_graph_to_dot` - the weak-acyclicity position graph
  (special edges dashed), matching Section 6.3's analysis.

Pure-text output only (no drawing dependencies); the DOT strings can
be fed to Graphviz outside this environment.
"""

from __future__ import annotations

from repro.core.exact import ChaseNode
from repro.core.translate import ExistentialProgram
from repro.core.termination import position_graph
from repro.pdb.facts import Fact


def _new_facts(parent: ChaseNode, child: ChaseNode) -> list[Fact]:
    return sorted(child.instance.facts - parent.instance.facts,
                  key=Fact.sort_key)


def format_chase_tree(root: ChaseNode, max_nodes: int = 200) -> str:
    """Indented text rendering of a (bounded) chase tree.

    >>> from repro.core.exact import enumerate_chase_tree
    >>> from repro.core.program import Program
    >>> tree = enumerate_chase_tree(Program.parse("R(Flip<0.5>) :- true."))
    >>> print(format_chase_tree(tree))  # doctest: +ELLIPSIS
    (p=1.000000) ...
    """
    lines: list[str] = []
    emitted = 0

    def walk(node: ChaseNode, parent: ChaseNode | None,
             depth: int) -> None:
        nonlocal emitted
        if emitted >= max_nodes:
            return
        emitted += 1
        indent = "  " * depth
        if parent is None:
            label = node.instance.canonical_text()
        else:
            added = ", ".join(repr(f) for f in _new_facts(parent, node))
            label = f"+{{{added}}}" if added else "(no new facts)"
        suffix = ""
        if node.truncated:
            suffix = "  [truncated -> err]"
        elif node.is_leaf():
            suffix = "  [leaf]"
        elif node.firing is not None:
            suffix = f"  fires {node.firing!r}"
        lines.append(f"{indent}(p={node.probability:.6f}) "
                     f"{label}{suffix}")
        for child in node.children:
            walk(child, node, depth + 1)

    walk(root, None, 0)
    if emitted >= max_nodes:
        lines.append(f"... rendering capped at {max_nodes} nodes")
    return "\n".join(lines)


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def chase_tree_to_dot(root: ChaseNode, max_nodes: int = 200) -> str:
    """Graphviz DOT source of a (bounded) chase tree.

    Leaves are doublecircles (instances of the output SPDB); truncated
    nodes are shaded (the ``err`` mass of Figure 1); edges carry the
    branch's added facts and probability mass ratio.
    """
    lines = ["digraph chase_tree {", "  rankdir=TB;",
             '  node [fontsize=10, shape=circle, label=""];']
    counter = 0

    def walk(node: ChaseNode, parent_id: int | None,
             parent: ChaseNode | None) -> None:
        nonlocal counter
        if counter >= max_nodes:
            return
        node_id = counter
        counter += 1
        attributes = [f'tooltip="{_dot_escape(node.instance.canonical_text())}"']
        if node.truncated:
            attributes.append('style=filled, fillcolor=gray70')
        elif node.is_leaf():
            attributes.append("shape=doublecircle")
        lines.append(f"  n{node_id} [{', '.join(attributes)}];")
        if parent_id is not None and parent is not None:
            added = ", ".join(repr(f) for f in _new_facts(parent, node))
            ratio = node.probability / parent.probability \
                if parent.probability > 0 else 0.0
            lines.append(
                f'  n{parent_id} -> n{node_id} '
                f'[label="{_dot_escape(added)}\\n{ratio:.4g}"];')
        for child in node.children:
            walk(child, node_id, node)

    walk(root, None, None)
    lines.append("}")
    return "\n".join(lines)


def position_graph_to_dot(translated: ExistentialProgram) -> str:
    """DOT source of the weak-acyclicity position graph.

    Regular edges solid, special (existential) edges dashed and
    labelled with a star - a cycle through a dashed edge is exactly a
    weak-acyclicity violation (Theorem 6.3).
    """
    graph = position_graph(translated)
    lines = ["digraph positions {", "  rankdir=LR;",
             "  node [fontsize=10, shape=box];"]

    def node_id(position) -> str:
        relation, index = position
        return f'"{_dot_escape(relation)}.{index}"'

    for position in graph.nodes:
        lines.append(f"  {node_id(position)};")
    seen = set()
    for source, target, data in graph.edges(data=True):
        key = (source, target, bool(data.get("special")))
        if key in seen:
            continue
        seen.add(key)
        style = ' [style=dashed, label="*"]' if data.get("special") \
            else ""
        lines.append(f"  {node_id(source)} -> {node_id(target)}"
                     f"{style};")
    lines.append("}")
    return "\n".join(lines)
