"""Loading and saving programs and instances.

File formats:

* **Program files** (``.gdl``): the textual GDatalog syntax of
  :mod:`repro.core.parser`.
* **Instance CSV**: one file per relation; each row is one fact.  A
  value parses as int, then float, then stays a string; the literals
  ``true``/``false`` become 1/0.  No header by default (facts are
  positional, like Datalog).
* **Instance JSON**: ``{"Relation": [[v, ...], ...], ...}`` - the same
  shape :meth:`repro.pdb.instances.Instance.from_dict` accepts.

These helpers power the command-line interface (:mod:`repro.cli`) and
are handy for the examples.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.core.program import Program
from repro.distributions.registry import DistributionRegistry
from repro.errors import SchemaError
from repro.ordering import tuple_sort_key
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


def parse_value(text: str) -> Any:
    """Parse one CSV cell into a fact value.

    >>> parse_value("3"), parse_value("0.5"), parse_value("Napa")
    (3, 0.5, 'Napa')
    """
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered == "true":
        return 1
    if lowered == "false":
        return 0
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return stripped


def render_value(value: Any) -> str:
    """Render a fact value as a CSV cell (inverse of parse_value)."""
    return str(value)


def load_program(path: str | Path,
                 registry: DistributionRegistry | None = None) -> Program:
    """Parse a ``.gdl`` program file."""
    text = Path(path).read_text(encoding="utf-8")
    return Program.parse(text, registry=registry)


def save_program(program: Program, path: str | Path) -> None:
    """Write a program in parseable surface syntax."""
    from repro.core.source import program_to_source
    Path(path).write_text(program_to_source(program) + "\n",
                          encoding="utf-8")


def load_relation_csv(path: str | Path, relation: str,
                      skip_header: bool = False) -> list[Fact]:
    """Read one relation's facts from a CSV file."""
    facts: list[Fact] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        for index, row in enumerate(reader):
            if index == 0 and skip_header:
                continue
            if not row:
                continue
            facts.append(Fact(relation,
                              tuple(parse_value(cell) for cell in row)))
    return facts


def load_instance_csv(paths: Mapping[str, str | Path],
                      skip_header: bool = False) -> Instance:
    """Build an instance from ``{relation: csv_path}``.

    >>> # load_instance_csv({"City": "city.csv", "House": "house.csv"})
    """
    facts: list[Fact] = []
    for relation, path in paths.items():
        facts.extend(load_relation_csv(path, relation, skip_header))
    return Instance(facts)


def save_instance_csv(instance: Instance, directory: str | Path) -> \
        dict[str, Path]:
    """Write one CSV per relation into ``directory``.

    Returns ``{relation: written path}``.  Rows are canonically sorted
    so output is deterministic.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for relation in instance.relations():
        path = directory / f"{relation}.csv"
        rows = sorted(instance.tuples_of(relation), key=tuple_sort_key)
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for row in rows:
                writer.writerow([render_value(v) for v in row])
        written[relation] = path
    return written


def load_instance_json(path: str | Path) -> Instance:
    """Read an instance from JSON (``{relation: [rows...]}``)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise SchemaError("instance JSON must be an object of arrays")
    return Instance.from_dict(
        {relation: [tuple(row) for row in rows]
         for relation, rows in payload.items()})


def save_instance_json(instance: Instance, path: str | Path) -> None:
    """Write an instance to JSON (sorted, deterministic)."""
    payload = {relation: [list(row) for row in
                          sorted(instance.tuples_of(relation),
                                 key=tuple_sort_key)]
               for relation in instance.relations()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def parse_relation_spec(spec: str) -> tuple[str, str]:
    """Split a CLI ``Relation=path.csv`` argument."""
    if "=" not in spec:
        raise SchemaError(
            f"expected RELATION=path.csv, got {spec!r}")
    relation, _, path = spec.partition("=")
    if not relation or not path:
        raise SchemaError(f"malformed relation spec {spec!r}")
    return relation, path


def load_instance_args(specs: Iterable[str],
                       skip_header: bool = False) -> Instance:
    """Build an instance from CLI specs (CSV and/or one JSON file)."""
    facts: list[Fact] = []
    for spec in specs:
        if spec.endswith(".json") and "=" not in spec:
            facts.extend(load_instance_json(spec).facts)
            continue
        relation, path = parse_relation_spec(spec)
        facts.extend(load_relation_csv(path, relation, skip_header))
    return Instance(facts)
