"""Canonical total order over the mixed-type values stored in facts.

The paper's measurable selections (Lemma 3.6) must be *functions* of the
database instance.  Operationally this requires a deterministic way to
order applicable pairs, facts and valuations even when attribute values
mix booleans, integers, floats and strings.  Python refuses to compare
``1 < "a"``, so we define an explicit sort key:

* every value maps to a tuple ``(type_rank, comparable_payload)``;
* numbers (bool/int/float) share a rank and compare numerically, so the
  order is compatible with numeric equality (``1 == 1.0 == True``);
* strings come after numbers, ``None`` before everything else;
* tuples compare lexicographically through recursive keys.

The resulting order is total on all values the library stores in facts
and is used by chase policies, canonical instance serialization, and the
deterministic iteration order of exact inference.
"""

from __future__ import annotations

from typing import Any

#: Rank assigned to each family of value types.  Lower rank sorts first.
_RANK_NONE = 0
_RANK_NUMBER = 1
_RANK_STRING = 2
_RANK_TUPLE = 3
_RANK_OTHER = 4


def value_sort_key(value: Any) -> tuple:
    """Return a sort key making heterogeneous fact values totally ordered.

    >>> sorted([3, "b", 1.5, "a", None], key=value_sort_key)
    [None, 1.5, 3, 'a', 'b']
    """
    if value is None:
        return (_RANK_NONE,)
    if isinstance(value, bool):
        # bool is a subclass of int; fold it into the numeric rank so that
        # True == 1 sorts consistently with the integer 1.
        return (_RANK_NUMBER, float(value))
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, float(value))
    if isinstance(value, str):
        return (_RANK_STRING, value)
    if isinstance(value, tuple):
        return (_RANK_TUPLE, tuple(value_sort_key(item) for item in value))
    # Fall back to the repr: deterministic for the value types we accept.
    return (_RANK_OTHER, repr(value))


def tuple_sort_key(values: tuple) -> tuple:
    """Sort key for a tuple of fact values (lexicographic)."""
    return tuple(value_sort_key(value) for value in values)


def canonical_repr(value: Any) -> str:
    """A stable textual form of a value, used for hashing policies.

    Floats are rendered with ``repr`` (shortest round-trip form) so equal
    floats always produce equal text.
    """
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, bool):
        return "n:" + repr(float(value))
    if isinstance(value, (int, float)):
        return "n:" + repr(float(value))
    if value is None:
        return "none"
    if isinstance(value, tuple):
        return "t:(" + ",".join(canonical_repr(item) for item in value) + ")"
    return "o:" + repr(value)
