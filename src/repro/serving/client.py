"""A small client for the ``repro serve`` JSON-lines socket protocol.

One persistent connection per client, requests pipelined in order;
thread-safe (a lock serializes round-trips on the shared socket).  For
one-shot scripting, :func:`repro.serving.server.request_over_socket`
avoids keeping a connection at all.

>>> client = ServingClient("127.0.0.1", port)      # doctest: +SKIP
>>> client.sample("R(Flip<0.5>) :- true.", n=500)  # doctest: +SKIP
{'command': 'sample', ...}
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ReproError
from repro.serving import protocol


class ServingClient:
    """A connected JSON-lines client for a running program server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._conn = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._conn.makefile("r", encoding="utf-8")

    # -- plumbing -----------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request object, return the raw response object."""
        line = protocol.encode_line(payload) + "\n"
        with self._lock:
            self._conn.sendall(line.encode())
            reply = self._reader.readline()
        if not reply:
            raise ReproError(
                "server closed the connection without a reply")
        return protocol.decode_line(reply)

    def result(self, payload: dict) -> dict:
        """Like :meth:`request`, but unwrap ``result`` or raise."""
        response = self.request(payload)
        if not response.get("ok"):
            raise ReproError(
                f"server error: {response.get('error', 'unknown')}")
        return response.get("result", response)

    def close(self) -> None:
        self._reader.close()
        self._conn.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- convenience verbs --------------------------------------------------

    def ping(self) -> dict:
        """Server liveness + cache statistics."""
        return self.request({"op": "ping"})

    def sample(self, program: str, n: int = 1000,
               instance: dict | None = None,
               semantics: str = "grohe", **config) -> dict:
        """The ``repro sample --json`` document, served."""
        return self.result({"op": "sample", "program": program,
                            "semantics": semantics, "n": n,
                            "instance": instance,
                            "config": config or None})

    def marginal(self, program: str, fact, n: int = 1000,
                 instance: dict | None = None,
                 semantics: str = "grohe", **config) -> float:
        """Marginal probability of one output fact."""
        result = self.result({"op": "marginal", "program": program,
                              "semantics": semantics, "fact": fact,
                              "n": n, "instance": instance,
                              "config": config or None})
        return result["probability"]

    def query(self, program: str, plan, n: int = 1000,
              instance: dict | None = None, observe=None,
              semantics: str = "grohe", **config) -> dict:
        """Serve a relational plan; the ``repro query --json`` document.

        ``plan`` is a :class:`~repro.query.relalg.Query` (encoded
        transparently; structural nodes only) or an already-encoded
        wire plan dict.  With ``observe``, the plan is answered under
        the posterior; with ``shards=k`` in the config, sampling fans
        out across the server's shard executor and the plan compiles
        over the merged columnar result.
        """
        payload = {"op": "query", "program": program,
                   "semantics": semantics, "n": n,
                   "instance": instance,
                   "plan": plan if isinstance(plan, dict)
                   else protocol.plan_payload(plan),
                   "config": config or None}
        if observe is not None:
            payload["observe"] = self._evidence_payloads(observe)
        return self.result(payload)

    def analyze(self, program: str, semantics: str = "grohe") -> dict:
        """The ``repro analyze --json`` document, served."""
        return self.result({"op": "analyze", "program": program,
                            "semantics": semantics})

    def mass_report(self, program: str, budgets=None,
                    instance: dict | None = None,
                    semantics: str = "grohe") -> dict:
        """Figure-1 mass accounting across depth budgets."""
        payload = {"op": "mass_report", "program": program,
                   "semantics": semantics, "instance": instance}
        if budgets is not None:
            payload["budgets"] = list(budgets)
        return self.result(payload)

    # -- posteriors and streams ---------------------------------------------

    @staticmethod
    def _evidence_payloads(evidence) -> list:
        return [item if isinstance(item, dict)
                else protocol.evidence_payload(item)
                for item in evidence]

    def posterior(self, program: str, observe, n: int = 1000,
                  method: str = "likelihood",
                  instance: dict | None = None,
                  semantics: str = "grohe", **config) -> dict:
        """One-shot posterior document given evidence payloads.

        ``observe`` is a list of evidence items - wire payloads
        (dicts) or :class:`~repro.core.observe.Observation` /
        :class:`~repro.pdb.facts.Fact` values, encoded transparently.
        """
        return self.result({"op": "posterior", "program": program,
                            "semantics": semantics, "n": n,
                            "method": method, "instance": instance,
                            "observe": self._evidence_payloads(observe),
                            "config": config or None})

    def stream_open(self, program: str, n: int = 1000,
                    instance: dict | None = None,
                    semantics: str = "grohe",
                    max_window: int | None = None, **config) -> dict:
        """Open a server-side streaming posterior; returns its state.

        The returned document carries the ``stream_id`` every
        follow-up call addresses.
        """
        return self.result({"op": "stream_open", "program": program,
                            "semantics": semantics, "n": n,
                            "instance": instance,
                            "max_window": max_window,
                            "config": config or None})

    def stream_observe(self, stream_id: str, evidence) -> dict:
        """Apply one evidence item to an open stream; returns state."""
        payload = evidence if isinstance(evidence, dict) \
            else protocol.evidence_payload(evidence)
        return self.result({"op": "stream_observe",
                            "stream_id": stream_id,
                            "observe": payload})

    def stream_retract(self, stream_id: str, token: int) -> dict:
        """Exactly undo one previously observed evidence item."""
        return self.result({"op": "stream_observe",
                            "stream_id": stream_id, "retract": token})

    def stream_posterior(self, stream_id: str) -> dict:
        """The stream's current posterior document."""
        return self.result({"op": "stream_posterior",
                            "stream_id": stream_id})

    def stream_query(self, stream_id: str, plan) -> dict:
        """Answer a relational plan under the stream's posterior."""
        return self.result({"op": "stream_query",
                            "stream_id": stream_id,
                            "plan": plan if isinstance(plan, dict)
                            else protocol.plan_payload(plan)})

    def stream_close(self, stream_id: str) -> dict:
        """Release the server-side stream."""
        return self.result({"op": "stream_close",
                            "stream_id": stream_id})
