"""A long-lived program server over the JSON-lines protocol.

:class:`ProgramServer` is the transport-free core: it caches compiled
programs by source hash (LRU) and warm sessions by (program, instance)
so repeated requests hit zero recompilation and zero applicability
re-bootstrap, and answers one request dict with one response dict.
Two thin transports wrap it: :func:`serve_stdio` (one JSON object per
stdin line, one per stdout line) and :func:`serve_socket` (a threading
TCP server speaking the same lines over each connection).  Both are
exposed as ``repro serve``.

Request objects carry ``op`` plus op-specific fields::

    {"op": "ping"}
    {"op": "analyze", "program": "...", "semantics": "grohe"}
    {"op": "sample", "program": "...", "instance": {"R": [[1]]},
     "n": 1000, "config": {"seed": 7, "shards": 2}}
    {"op": "marginal", "program": "...", "fact": ["R", [1]], "n": 500}
    {"op": "mass_report", "program": "...", "budgets": [1, 2, 4]}

Responses are ``{"ok": true, "result": ..., "program_sha": ...,
"compile_cached": ...}`` or ``{"ok": false, "error": ...}`` - the
``result`` of ``sample``/``analyze``/``mass_report`` is byte-for-byte
the corresponding CLI ``--json`` document
(:mod:`repro.serving.protocol`).
"""

from __future__ import annotations

import hashlib
import socket
import socketserver
import threading
from collections import OrderedDict

from repro.api.session import CompiledProgram, Session
from repro.api.session import compile as compile_program
from repro.errors import ReproError, ValidationError
from repro.serving import protocol

#: Ops accepted by :meth:`ProgramServer.handle`.
OPS = ("ping", "analyze", "sample", "marginal", "mass_report")


def program_sha(source: str, semantics: str) -> str:
    """The cache key: sha256 over semantics + program source."""
    digest = hashlib.sha256()
    digest.update(semantics.encode())
    digest.update(b"\n")
    digest.update(source.encode())
    return digest.hexdigest()


class ProgramServer:
    """Transport-free request handler with compile and session caches.

    ``max_programs`` / ``max_sessions`` bound the two LRUs (a session
    holds its program's warm applicability engines and batched
    sampler, so the session cache is the larger memory commitment).
    ``handle`` is thread-safe; inference itself is serialized under
    one lock - concurrency buys connection-level interleaving, not
    parallel chases (shard requests parallelize *within* one request
    via the process pool instead).
    """

    def __init__(self, max_programs: int = 32,
                 max_sessions: int = 32):
        if max_programs < 1 or max_sessions < 1:
            raise ValidationError(
                "max_programs and max_sessions must be >= 1")
        self.max_programs = max_programs
        self.max_sessions = max_sessions
        self._programs: OrderedDict[str, CompiledProgram] = \
            OrderedDict()
        self._sessions: OrderedDict[tuple, Session] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = {
            "requests": 0,
            "errors": 0,
            "programs_compiled": 0,
            "program_cache_hits": 0,
            "sessions_created": 0,
            "session_cache_hits": 0,
        }

    # -- caches -------------------------------------------------------------

    def compiled_for(self, source: str,
                     semantics: str = "grohe",
                     ) -> tuple[str, CompiledProgram, bool]:
        """(sha, compiled program, was-cache-hit) for program text."""
        if not isinstance(source, str) or not source.strip():
            raise ValidationError(
                "request needs a non-empty 'program' string")
        sha = program_sha(source, semantics)
        with self._lock:
            compiled = self._programs.get(sha)
            if compiled is not None:
                self._programs.move_to_end(sha)
                self.stats["program_cache_hits"] += 1
                return sha, compiled, True
            compiled = compile_program(source, semantics=semantics)
            # Translate eagerly: the point of the cache is that the
            # hot path never pays compilation again.
            compiled.translated
            self._programs[sha] = compiled
            self.stats["programs_compiled"] += 1
            while len(self._programs) > self.max_programs:
                self._programs.popitem(last=False)
            return sha, compiled, False

    def session_for(self, sha: str, compiled: CompiledProgram,
                    instance) -> Session:
        """The warm base session for (program, instance), LRU-cached.

        Request-specific configs derive from the base via
        ``Session.configure``, which *shares* the engine caches - so
        a config change never discards the applicability bootstrap or
        the batched sampler.
        """
        key = (sha, instance)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.stats["session_cache_hits"] += 1
                return session
            session = compiled.on(instance)
            self._sessions[key] = session
            self.stats["sessions_created"] += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
            return session

    # -- request handling ---------------------------------------------------

    def handle(self, request: dict) -> dict:
        """One response object for one request object (never raises)."""
        with self._lock:
            self.stats["requests"] += 1
            try:
                return self._dispatch(request)
            except ReproError as error:
                self.stats["errors"] += 1
                return {"ok": False, "error": str(error)}
            except Exception as error:  # noqa: BLE001 - server survives
                self.stats["errors"] += 1
                return {"ok": False,
                        "error": f"{type(error).__name__}: {error}"}

    def _dispatch(self, request: dict) -> dict:
        if not isinstance(request, dict):
            raise ValidationError(
                f"request must be an object, got {request!r}")
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "stats": dict(self.stats)}
        if op not in OPS:
            raise ValidationError(
                f"unknown op {op!r}; known ops: {', '.join(OPS)}")
        semantics = request.get("semantics", "grohe")
        sha, compiled, cached = self.compiled_for(
            request.get("program"), semantics)
        if op == "analyze":
            result = protocol.analyze_payload(compiled)
            return self._reply(op, sha, cached, result)
        instance = protocol.parse_instance(request.get("instance"))
        session = self.session_for(sha, compiled, instance)
        overrides = request.get("config") or {}
        if not isinstance(overrides, dict) \
                or not all(isinstance(key, str) for key in overrides):
            raise ValidationError(
                "'config' must be an object of ChaseConfig fields")
        if overrides:
            session = session.configure(**overrides)
        if op == "sample":
            result = protocol.sample_payload(
                session.sample(self._n(request)))
            return self._reply(op, sha, cached, result)
        if op == "marginal":
            fact = protocol.parse_fact(request.get("fact"))
            probability = session.marginal(fact, n=self._n(request))
            result = {"command": "marginal",
                      "fact": protocol.fact_payload(fact),
                      "probability": probability}
            return self._reply(op, sha, cached, result)
        budgets = request.get("budgets", (1, 2, 4, 8, 16, 32))
        if not isinstance(budgets, (list, tuple)) or not budgets \
                or not all(isinstance(budget, int) and budget > 0
                           for budget in budgets):
            raise ValidationError(
                "'budgets' must be a non-empty list of positive ints")
        result = protocol.mass_report_payload(
            session.mass_report(tuple(budgets)))
        return self._reply(op, sha, cached, result)

    @staticmethod
    def _n(request: dict) -> int:
        n = request.get("n", 1000)
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise ValidationError(f"'n' must be a positive int, got {n!r}")
        return n

    def _reply(self, op: str, sha: str, cached: bool,
               result: dict) -> dict:
        return {"ok": True, "op": op, "program_sha": sha,
                "compile_cached": cached, "result": result}


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


def serve_stdio(server: ProgramServer, in_stream, out_stream) -> int:
    """JSON-lines over stdio: one request line in, one response out.

    Returns the number of requests served (EOF ends the loop; blank
    lines are skipped; malformed lines get an error response rather
    than killing the loop).
    """
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            response = server.handle(protocol.decode_line(line))
        except ValidationError as error:
            response = {"ok": False, "error": str(error)}
        print(protocol.encode_line(response), file=out_stream,
              flush=True)
        served += 1
    return served


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                response = self.server.program_server.handle(
                    protocol.decode_line(line))
            except ValidationError as error:
                response = {"ok": False, "error": str(error)}
            self.wfile.write(
                (protocol.encode_line(response) + "\n").encode())
            self.wfile.flush()


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_socket(server: ProgramServer, host: str = "127.0.0.1",
                 port: int = 0) -> _ThreadingServer:
    """A threading TCP server speaking the JSON-lines protocol.

    Binds immediately (``port=0`` picks a free port - read it from
    ``returned.server_address``) but does not serve; call
    ``serve_forever()`` (typically on a thread) and ``shutdown()`` /
    ``server_close()`` to stop.  Each connection may pipeline any
    number of request lines.
    """
    tcp = _ThreadingServer((host, port), _LineHandler)
    tcp.program_server = server
    return tcp


def request_over_socket(host: str, port: int, payload: dict,
                        timeout: float = 60.0) -> dict:
    """One request/response round-trip on a fresh connection."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((protocol.encode_line(payload) + "\n").encode())
        with conn.makefile("r", encoding="utf-8") as reader:
            line = reader.readline()
    if not line:
        raise ReproError("server closed the connection without a reply")
    return protocol.decode_line(line)
