"""A long-lived program server over the JSON-lines protocol.

:class:`ProgramServer` is the transport-free core: it caches compiled
programs by source hash (LRU) and warm sessions by (program, instance)
so repeated requests hit zero recompilation and zero applicability
re-bootstrap, and answers one request dict with one response dict.
Two thin transports wrap it: :func:`serve_stdio` (one JSON object per
stdin line, one per stdout line) and :func:`serve_socket` (a threading
TCP server speaking the same lines over each connection).  Both are
exposed as ``repro serve``.

Request objects carry ``op`` plus op-specific fields::

    {"op": "ping"}
    {"op": "analyze", "program": "...", "semantics": "grohe"}
    {"op": "sample", "program": "...", "instance": {"R": [[1]]},
     "n": 1000, "config": {"seed": 7, "shards": 2}}
    {"op": "marginal", "program": "...", "fact": ["R", [1]], "n": 500}
    {"op": "query", "program": "...", "n": 500,
     "plan": {"op": "aggregate", "group_by": [],
              "aggregates": {"n": {"fn": "count", "column": null}},
              "source": {"op": "scan", "relation": "R"}}}
    {"op": "mass_report", "program": "...", "budgets": [1, 2, 4]}

Responses are ``{"ok": true, "result": ..., "program_sha": ...,
"compile_cached": ...}`` or ``{"ok": false, "error": ...}`` - the
``result`` of ``sample``/``analyze``/``mass_report`` is byte-for-byte
the corresponding CLI ``--json`` document
(:mod:`repro.serving.protocol`).
"""

from __future__ import annotations

import hashlib
import os
import socket
import socketserver
import threading
from collections import OrderedDict

from repro.api.session import CompiledProgram, Session
from repro.api.session import compile as compile_program
from repro.errors import ReproError, ValidationError
from repro.pdb.facts import Fact
from repro.serving import protocol
from repro.serving.sharding import ShardExecutor, sample_sharded

#: Ops accepted by :meth:`ProgramServer.handle`.
OPS = ("ping", "analyze", "sample", "marginal", "query", "mass_report",
       "posterior", "stream_open", "stream_observe",
       "stream_posterior", "stream_query", "stream_close")

#: Ops addressed to an open stream (by ``stream_id``, no program text).
_STREAM_OPS = ("stream_observe", "stream_posterior", "stream_query",
               "stream_close")


class _FactEvent:
    """Containment predicate for served fact evidence (printable)."""

    def __init__(self, fact: Fact):
        self.fact = fact

    def __call__(self, instance) -> bool:
        return self.fact in instance

    def __repr__(self) -> str:
        return f"contains({self.fact!r})"


def program_sha(source: str, semantics: str) -> str:
    """The cache key: sha256 over semantics + program source."""
    digest = hashlib.sha256()
    digest.update(semantics.encode())
    digest.update(b"\n")
    digest.update(source.encode())
    return digest.hexdigest()


class ProgramServer:
    """Transport-free request handler with compile and session caches.

    ``max_programs`` / ``max_sessions`` bound the two LRUs (a session
    holds its program's warm applicability engines and batched
    sampler, so the session cache is the larger memory commitment).
    ``handle`` is thread-safe.  The global lock guards only cache and
    stats mutation; inference runs under a per-(program, instance)
    *session* lock, so concurrent clients working on distinct
    programs/instances chase in parallel, and only requests racing on
    the same warm session (whose engine caches are not thread-safe)
    serialize against each other.

    Sharded requests run on warm, LRU-cached
    :class:`~repro.serving.sharding.ShardExecutor` pools
    (``max_executors`` bound; spawning a process pool per request
    would dominate the request cost) - evicted and
    :meth:`close`-d executors shut their pools down.  Streaming
    sessions (``stream_open`` ..) are held in a bounded registry
    keyed by server-issued ``stream_id``.
    """

    def __init__(self, max_programs: int = 32,
                 max_sessions: int = 32,
                 max_executors: int = 8,
                 max_streams: int = 32):
        if max_programs < 1 or max_sessions < 1 \
                or max_executors < 1 or max_streams < 1:
            raise ValidationError(
                "max_programs, max_sessions, max_executors and "
                "max_streams must be >= 1")
        self.max_programs = max_programs
        self.max_sessions = max_sessions
        self.max_executors = max_executors
        self.max_streams = max_streams
        self._programs: OrderedDict[str, CompiledProgram] = \
            OrderedDict()
        self._sessions: OrderedDict[tuple, Session] = OrderedDict()
        self._session_locks: dict[tuple, threading.RLock] = {}
        self._executors: OrderedDict[tuple, ShardExecutor] = \
            OrderedDict()
        self._streams: OrderedDict[str, tuple] = OrderedDict()
        #: Pre-flight deep-analysis payloads, keyed by program sha
        #: alongside the compile cache (same LRU lifetime).
        self._analyses: dict[str, dict] = {}
        self._stream_counter = 0
        self._lock = threading.RLock()
        self.stats = {
            "requests": 0,
            "errors": 0,
            "programs_compiled": 0,
            "program_cache_hits": 0,
            "sessions_created": 0,
            "session_cache_hits": 0,
            "executors_created": 0,
            "executor_cache_hits": 0,
            "streams_opened": 0,
            "analyses_precomputed": 0,
        }

    def close(self) -> None:
        """Shut down every cached shard executor and drop open streams."""
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
            self._streams.clear()
        for executor in executors:
            executor.close()

    # -- caches -------------------------------------------------------------

    def compiled_for(self, source: str,
                     semantics: str = "grohe",
                     ) -> tuple[str, CompiledProgram, bool]:
        """(sha, compiled program, was-cache-hit) for program text."""
        if not isinstance(source, str) or not source.strip():
            raise ValidationError(
                "request needs a non-empty 'program' string")
        sha = program_sha(source, semantics)
        with self._lock:
            compiled = self._programs.get(sha)
            if compiled is not None:
                self._programs.move_to_end(sha)
                self.stats["program_cache_hits"] += 1
                return sha, compiled, True
            compiled = compile_program(source, semantics=semantics)
            # Translate eagerly: the point of the cache is that the
            # hot path never pays compilation again.  The pre-flight
            # static analysis (lint + capability predictions) rides
            # along: it is cheap, cached by the same sha, and lets an
            # "analyze" op (or an operator's dashboard) explain a
            # program's fallbacks before any sampling request runs.
            compiled.translated
            self._analyses[sha] = protocol.analyze_payload(
                compiled, deep=True)
            self._programs[sha] = compiled
            self.stats["programs_compiled"] += 1
            self.stats["analyses_precomputed"] += 1
            while len(self._programs) > self.max_programs:
                dropped, _ = self._programs.popitem(last=False)
                self._analyses.pop(dropped, None)
            return sha, compiled, False

    def analysis_for(self, sha: str,
                     compiled: CompiledProgram) -> dict:
        """The pre-flight deep-analysis payload for a cached program.

        Normally already present (``compiled_for`` computes it on
        compile); recomputed only if the entry was evicted between
        the compile and this lookup.
        """
        with self._lock:
            payload = self._analyses.get(sha)
            if payload is None:
                payload = protocol.analyze_payload(compiled,
                                                   deep=True)
                self._analyses[sha] = payload
            return payload

    def session_for(self, sha: str, compiled: CompiledProgram,
                    instance) -> Session:
        """The warm base session for (program, instance), LRU-cached.

        Request-specific configs derive from the base via
        ``Session.configure``, which *shares* the engine caches - so
        a config change never discards the applicability bootstrap or
        the batched sampler.
        """
        key = (sha, instance)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.stats["session_cache_hits"] += 1
                return session
            session = compiled.on(instance)
            self._sessions[key] = session
            self.stats["sessions_created"] += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
            return session

    def session_lock(self, sha: str, instance) -> threading.RLock:
        """The per-(program, instance) inference lock, get-or-create.

        Locks are keyed like sessions but never evicted (a lock is a
        few hundred bytes; evicting one while a thread holds it would
        let a re-created twin run concurrently on the same session).
        """
        key = (sha, instance)
        with self._lock:
            lock = self._session_locks.get(key)
            if lock is None:
                lock = threading.RLock()
                self._session_locks[key] = lock
            return lock

    def executor_for(self, sha: str, instance, compiled, cfg,
                     ) -> ShardExecutor:
        """A warm shard executor for (program, instance, config).

        LRU-cached so the hot path reuses live pool workers instead of
        spawning a ``mp.Pool`` per request; evicted executors shut
        their pools down.  Construction itself is lazy-cheap (the pool
        starts on first use), so it happens under the global lock.
        """
        key = (sha, instance, cfg)
        evicted = []
        with self._lock:
            executor = self._executors.get(key)
            if executor is not None:
                self._executors.move_to_end(key)
                self.stats["executor_cache_hits"] += 1
                return executor
            executor = ShardExecutor(
                compiled.translated, instance, cfg,
                processes=min(cfg.shards or 1, os.cpu_count() or 1))
            self._executors[key] = executor
            self.stats["executors_created"] += 1
            while len(self._executors) > self.max_executors:
                evicted.append(self._executors.popitem(last=False)[1])
        for stale in evicted:
            stale.close()
        return executor

    # -- request handling ---------------------------------------------------

    def handle(self, request: dict) -> dict:
        """One response object for one request object (never raises)."""
        with self._lock:
            self.stats["requests"] += 1
        try:
            return self._dispatch(request)
        except ReproError as error:
            with self._lock:
                self.stats["errors"] += 1
            return {"ok": False, "error": str(error)}
        except Exception as error:  # noqa: BLE001 - server survives
            with self._lock:
                self.stats["errors"] += 1
            return {"ok": False,
                    "error": f"{type(error).__name__}: {error}"}

    def _dispatch(self, request: dict) -> dict:
        if not isinstance(request, dict):
            raise ValidationError(
                f"request must be an object, got {request!r}")
        op = request.get("op")
        if op == "ping":
            with self._lock:
                return {"ok": True, "op": "ping",
                        "stats": dict(self.stats)}
        if op not in OPS:
            raise ValidationError(
                f"unknown op {op!r}; known ops: {', '.join(OPS)}")
        if op in _STREAM_OPS:
            return self._dispatch_stream(op, request)
        semantics = request.get("semantics", "grohe")
        sha, compiled, cached = self.compiled_for(
            request.get("program"), semantics)
        if op == "analyze":
            if request.get("deep"):
                result = self.analysis_for(sha, compiled)
            else:
                result = protocol.analyze_payload(compiled)
            return self._reply(op, sha, cached, result)
        instance = protocol.parse_instance(request.get("instance"))
        session = self.session_for(sha, compiled, instance)
        overrides = request.get("config") or {}
        if not isinstance(overrides, dict) \
                or not all(isinstance(key, str) for key in overrides):
            raise ValidationError(
                "'config' must be an object of ChaseConfig fields")
        with self.session_lock(sha, instance):
            if overrides:
                session = session.configure(**overrides)
            result = self._run_session_op(op, request, sha, compiled,
                                          instance, session)
        return self._reply(op, sha, cached, result)

    def _run_session_op(self, op: str, request: dict, sha: str,
                        compiled, instance, session) -> dict:
        """One session-bound op, under the caller-held session lock."""
        if op == "sample":
            cfg = session.config
            if cfg.shards is not None and cfg.shards > 1:
                executor = self.executor_for(sha, instance, compiled,
                                             cfg)
                sampled = sample_sharded(session, self._n(request),
                                         cfg, executor=executor)
            else:
                sampled = session.sample(self._n(request))
            return protocol.sample_payload(sampled)
        if op == "marginal":
            fact = protocol.parse_fact(request.get("fact"))
            probability = session.marginal(fact, n=self._n(request))
            return {"command": "marginal",
                    "fact": protocol.fact_payload(fact),
                    "probability": probability}
        if op == "query":
            plan = protocol.parse_plan(request.get("plan"))
            if "observe" in request:
                session = session.observe(*self._evidence(request))
            cfg = session.config
            if cfg.shards is not None and cfg.shards > 1 \
                    and not session.evidence \
                    and not compiled.is_discrete():
                # Same sharded fan-out as ``sample``; the plan then
                # compiles over the merged columnar outcome, so no
                # world is ever materialized end to end.
                executor = self.executor_for(sha, instance, compiled,
                                             cfg)
                sampled = sample_sharded(session, self._n(request),
                                         cfg, executor=executor)
                return protocol.query_payload(sampled.query(plan))
            return protocol.query_payload(
                session.query(plan, n=self._n(request)))
        if op == "posterior":
            evidence = self._evidence(request)
            method = request.get("method", "likelihood")
            result = session.observe(*evidence).posterior(
                method=method, n=self._n(request))
            return protocol.posterior_payload(result)
        if op == "stream_open":
            return self._open_stream(request, sha, instance, session)
        budgets = request.get("budgets", (1, 2, 4, 8, 16, 32))
        if not isinstance(budgets, (list, tuple)) or not budgets \
                or not all(isinstance(budget, int) and budget > 0
                           for budget in budgets):
            raise ValidationError(
                "'budgets' must be a non-empty list of positive ints")
        return protocol.mass_report_payload(
            session.mass_report(tuple(budgets)))

    @staticmethod
    def _evidence(request: dict) -> list:
        payloads = request.get("observe")
        if not isinstance(payloads, (list, tuple)) or not payloads:
            raise ValidationError(
                "'observe' must be a non-empty list of evidence "
                "payloads")
        evidence = []
        for payload in payloads:
            item = protocol.parse_evidence(payload)
            if isinstance(item, Fact):
                # Session.observe takes events/predicates for facts;
                # "the fact holds" is containment.
                item = _FactEvent(item)
            evidence.append(item)
        return evidence

    # -- streaming ----------------------------------------------------------

    def _open_stream(self, request: dict, sha: str, instance,
                     session) -> dict:
        max_window = request.get("max_window")
        stream = session.stream(self._n(request), max_window)
        with self._lock:
            self._stream_counter += 1
            stream_id = f"s{self._stream_counter}"
            self._streams[stream_id] = \
                (stream, self.session_lock(sha, instance))
            self.stats["streams_opened"] += 1
            while len(self._streams) > self.max_streams:
                self._streams.popitem(last=False)
        return {"command": "stream_open", "stream_id": stream_id,
                **self._stream_state(stream)}

    def _dispatch_stream(self, op: str, request: dict) -> dict:
        stream_id = request.get("stream_id")
        with self._lock:
            entry = self._streams.get(stream_id)
            if entry is not None:
                self._streams.move_to_end(stream_id)
        if entry is None:
            raise ValidationError(
                f"unknown stream_id {stream_id!r}; it was never "
                "opened, or was closed or evicted")
        stream, lock = entry
        if op == "stream_close":
            with self._lock:
                self._streams.pop(stream_id, None)
            result = {"command": "stream_close", "closed": True}
            return {"ok": True, "op": op, "stream_id": stream_id,
                    "result": result}
        with lock:
            if op == "stream_posterior":
                result = protocol.posterior_payload(stream.posterior())
            elif op == "stream_query":
                # The streamed posterior stays a weighted *columnar*
                # ensemble; the plan compiles over its arrays without
                # collapsing the weights into materialized worlds.
                plan = protocol.parse_plan(request.get("plan"))
                result = protocol.query_payload(
                    stream.posterior().query(plan))
            elif "retract" in request:
                token = request["retract"]
                if isinstance(token, bool) \
                        or not isinstance(token, int):
                    raise ValidationError(
                        f"'retract' must be an evidence token (int), "
                        f"got {token!r}")
                stream.retract(token)
                result = {"command": "stream_observe",
                          "retracted": token,
                          **self._stream_state(stream)}
            else:
                evidence = protocol.parse_evidence(
                    request.get("observe"))
                token = stream.observe(evidence)
                result = {"command": "stream_observe", "token": token,
                          **self._stream_state(stream)}
        return {"ok": True, "op": op, "stream_id": stream_id,
                "result": result}

    @staticmethod
    def _stream_state(stream) -> dict:
        return {"n_worlds": stream.n_worlds,
                "n_alive": stream.n_alive,
                "n_evidence": stream.n_evidence,
                "resamples": stream.resamples,
                "effective_sample_size":
                    stream.effective_sample_size()}

    @staticmethod
    def _n(request: dict) -> int:
        n = request.get("n", 1000)
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise ValidationError(f"'n' must be a positive int, got {n!r}")
        return n

    def _reply(self, op: str, sha: str, cached: bool,
               result: dict) -> dict:
        return {"ok": True, "op": op, "program_sha": sha,
                "compile_cached": cached, "result": result}


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


def serve_stdio(server: ProgramServer, in_stream, out_stream) -> int:
    """JSON-lines over stdio: one request line in, one response out.

    Returns the number of requests served (EOF ends the loop; blank
    lines are skipped; malformed lines get an error response rather
    than killing the loop).
    """
    served = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            response = server.handle(protocol.decode_line(line))
        except ValidationError as error:
            response = {"ok": False, "error": str(error)}
        print(protocol.encode_line(response), file=out_stream,
              flush=True)
        served += 1
    return served


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                response = self.server.program_server.handle(
                    protocol.decode_line(line))
            except ValidationError as error:
                response = {"ok": False, "error": str(error)}
            self.wfile.write(
                (protocol.encode_line(response) + "\n").encode())
            self.wfile.flush()


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_socket(server: ProgramServer, host: str = "127.0.0.1",
                 port: int = 0) -> _ThreadingServer:
    """A threading TCP server speaking the JSON-lines protocol.

    Binds immediately (``port=0`` picks a free port - read it from
    ``returned.server_address``) but does not serve; call
    ``serve_forever()`` (typically on a thread) and ``shutdown()`` /
    ``server_close()`` to stop.  Each connection may pipeline any
    number of request lines.
    """
    tcp = _ThreadingServer((host, port), _LineHandler)
    tcp.program_server = server
    return tcp


def request_over_socket(host: str, port: int, payload: dict,
                        timeout: float = 60.0) -> dict:
    """One request/response round-trip on a fresh connection."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((protocol.encode_line(payload) + "\n").encode())
        with conn.makefile("r", encoding="utf-8") as reader:
            line = reader.readline()
    if not line:
        raise ReproError("server closed the connection without a reply")
    return protocol.decode_line(line)
