"""The JSON contracts shared by the CLI's ``--json`` mode and the server.

One fact/instance codec and one payload builder per query kind, so
``repro sample --json`` output and a ``ProgramServer`` ``sample``
reply are the *same* document (the CLI delegates here).  Wire framing
is JSON-lines: one request object per line in, one response object per
line out, ``sort_keys`` and a numpy-scalar-tolerant encoder so
payloads are stable and diffable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.observe import Observation
from repro.errors import ValidationError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.stats import fact_marginals


# ---------------------------------------------------------------------------
# Value / fact / instance codecs
# ---------------------------------------------------------------------------


def json_default(value: Any):
    """JSON fallback for numpy scalars and other odd fact values."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def fact_payload(fact: Fact) -> dict:
    return {"relation": fact.relation, "args": list(fact.args)}


def parse_fact(payload) -> Fact:
    """A fact from ``{"relation": .., "args": [..]}`` or ``["R", [..]]``."""
    if isinstance(payload, dict):
        if not isinstance(payload.get("relation"), str) \
                or not isinstance(payload.get("args"), (list, tuple)):
            raise ValidationError(
                f"fact payload needs 'relation' and 'args': {payload!r}")
        return Fact(payload["relation"], tuple(payload["args"]))
    if isinstance(payload, (list, tuple)) and len(payload) == 2 \
            and isinstance(payload[0], str) \
            and isinstance(payload[1], (list, tuple)):
        return Fact(payload[0], tuple(payload[1]))
    raise ValidationError(f"cannot parse fact payload {payload!r}")


def instance_payload(instance: Instance) -> dict:
    """``{"R": [[args], ...], ...}`` with rows in canonical order."""
    payload: dict[str, list] = {}
    for fact in instance.sorted_facts():
        payload.setdefault(fact.relation, []).append(list(fact.args))
    return payload


def parse_instance(payload) -> Instance:
    """An instance from the relation->rows dict or a fact-payload list."""
    if payload is None:
        return Instance.empty()
    if isinstance(payload, dict):
        for relation, rows in payload.items():
            if not isinstance(relation, str) \
                    or not isinstance(rows, (list, tuple)) \
                    or not all(isinstance(row, (list, tuple))
                               for row in rows):
                raise ValidationError(
                    "instance payload must map relation names to "
                    f"lists of argument rows; bad entry {relation!r}")
        return Instance.from_dict(
            {relation: [tuple(row) for row in rows]
             for relation, rows in payload.items()})
    if isinstance(payload, (list, tuple)):
        return Instance(parse_fact(item) for item in payload)
    raise ValidationError(
        f"cannot parse instance payload {payload!r}")


def evidence_payload(evidence) -> dict:
    """The wire form of one evidence item (observation or fact)."""
    if isinstance(evidence, Observation):
        return {"relation": evidence.relation,
                "carried": list(evidence.carried),
                "value": evidence.value}
    if isinstance(evidence, Fact):
        return {"fact": fact_payload(evidence)}
    raise ValidationError(
        f"cannot encode evidence {evidence!r}; expected an "
        "Observation or a Fact")


def parse_evidence(payload) -> Observation | Fact:
    """Evidence from ``{"relation", "carried", "value"}`` or ``{"fact"}``.

    Sample-level observations condition by likelihood weighting; a
    fact payload conditions on the fact *holding* in the world
    (rejection-style masking on streams).
    """
    if isinstance(payload, dict):
        if "fact" in payload:
            return parse_fact(payload["fact"])
        if "relation" in payload:
            carried = payload.get("carried", [])
            if not isinstance(payload["relation"], str) \
                    or not isinstance(carried, (list, tuple)) \
                    or "value" not in payload:
                raise ValidationError(
                    "observation payload needs 'relation', 'carried' "
                    f"and 'value': {payload!r}")
            return Observation(payload["relation"], tuple(carried),
                               payload["value"])
    raise ValidationError(
        f"cannot parse evidence payload {payload!r}; expected "
        "{'relation': .., 'carried': [..], 'value': ..} or "
        "{'fact': ..}")


# ---------------------------------------------------------------------------
# Relational plan codec (the ``query`` op / ``repro query`` wire form)
# ---------------------------------------------------------------------------


_AGG_NEEDS_COLUMN = ("sum", "avg", "min", "max", "var")


def plan_payload(query) -> dict:
    """The wire form of a relational plan (structural nodes only).

    Opaque Python callables - ``select(lambda ...)`` predicates,
    :class:`~repro.query.relalg.Extend` computations - have no wire
    form and raise :class:`ValidationError`; express selections with
    ``where(column=value)`` to serve them.
    """
    from repro.query import aggregates as agg
    from repro.query import relalg as ra
    if isinstance(query, ra.Scan):
        return {"op": "scan", "relation": query.relation,
                "columns": list(query.columns)
                if query.columns is not None else None}
    if isinstance(query, ra.Select):
        if query.equalities is None:
            raise ValidationError(
                "opaque select(callable) predicates cannot be served; "
                "use where(column=value)")
        return {"op": "where", "source": plan_payload(query.source),
                "equalities": dict(query.equalities)}
    if isinstance(query, ra.Project):
        return {"op": "project", "source": plan_payload(query.source),
                "columns": list(query.columns)}
    if isinstance(query, ra.Rename):
        return {"op": "rename", "source": plan_payload(query.source),
                "mapping": dict(query.mapping)}
    if isinstance(query, agg.Aggregate):
        return {"op": "aggregate",
                "source": plan_payload(query.source),
                "group_by": list(query.group_by),
                "aggregates": {
                    out_name: {"fn": func.name, "column": func.column}
                    for out_name, func in query.aggregates.items()}}
    binary = {ra.NaturalJoin: "join", ra.Product: "product",
              ra.Union: "union", ra.Difference: "difference",
              ra.Intersection: "intersection"}
    for node_type, op in binary.items():
        if isinstance(query, node_type):
            return {"op": op, "left": plan_payload(query.left),
                    "right": plan_payload(query.right)}
    raise ValidationError(
        f"cannot encode plan node {type(query).__name__}")


def parse_plan(payload):
    """A :class:`~repro.query.relalg.Query` from its wire form."""
    from repro.query import aggregates as agg
    from repro.query import relalg as ra
    if not isinstance(payload, dict) or "op" not in payload:
        raise ValidationError(
            f"plan payload needs an 'op' field: {payload!r}")
    op = payload["op"]

    def child(key: str):
        if key not in payload:
            raise ValidationError(f"plan op {op!r} needs {key!r}")
        return parse_plan(payload[key])

    if op == "scan":
        relation = payload.get("relation")
        if not isinstance(relation, str):
            raise ValidationError(
                f"scan needs a string 'relation': {payload!r}")
        columns = payload.get("columns")
        if columns is not None and (
                not isinstance(columns, (list, tuple))
                or not all(isinstance(c, str) for c in columns)):
            raise ValidationError(
                f"scan 'columns' must be a list of names: {payload!r}")
        return ra.Scan(relation, columns)
    if op == "where":
        equalities = payload.get("equalities")
        if not isinstance(equalities, dict) or not all(
                isinstance(name, str) for name in equalities):
            raise ValidationError(
                f"where needs an 'equalities' object: {payload!r}")
        return ra.Select(child("source"), None, equalities=equalities)
    if op == "project":
        columns = payload.get("columns")
        if not isinstance(columns, (list, tuple)) or not all(
                isinstance(c, str) for c in columns):
            raise ValidationError(
                f"project needs a 'columns' list: {payload!r}")
        return ra.Project(child("source"), columns)
    if op == "rename":
        mapping = payload.get("mapping")
        if not isinstance(mapping, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in mapping.items()):
            raise ValidationError(
                f"rename needs a name->name 'mapping': {payload!r}")
        return ra.Rename(child("source"), mapping)
    if op == "aggregate":
        group_by = payload.get("group_by", [])
        specs = payload.get("aggregates")
        if not isinstance(group_by, (list, tuple)) or not all(
                isinstance(c, str) for c in group_by):
            raise ValidationError(
                f"aggregate 'group_by' must be a list: {payload!r}")
        if not isinstance(specs, dict) or not specs:
            raise ValidationError(
                "aggregate needs a non-empty 'aggregates' object: "
                f"{payload!r}")
        makers = {"count": agg.agg_count, "sum": agg.agg_sum,
                  "avg": agg.agg_avg, "min": agg.agg_min,
                  "max": agg.agg_max, "var": agg.agg_var}
        functions = {}
        for out_name, spec in specs.items():
            if not isinstance(spec, dict) \
                    or spec.get("fn") not in makers:
                raise ValidationError(
                    f"bad aggregate spec for {out_name!r}: {spec!r}; "
                    f"'fn' must be one of {sorted(makers)}")
            column = spec.get("column")
            if spec["fn"] in _AGG_NEEDS_COLUMN \
                    and not isinstance(column, str):
                raise ValidationError(
                    f"aggregate fn {spec['fn']!r} needs a 'column'")
            functions[out_name] = makers[spec["fn"]](column)
        return agg.Aggregate(child("source"), group_by, functions)
    binary = {"join": ra.NaturalJoin, "product": ra.Product,
              "union": ra.Union, "difference": ra.Difference,
              "intersection": ra.Intersection}
    if op in binary:
        return binary[op](child("left"), child("right"))
    raise ValidationError(f"unknown plan op {op!r}")


# ---------------------------------------------------------------------------
# Result payloads (the CLI --json contracts)
# ---------------------------------------------------------------------------


def sample_payload(result) -> dict:
    """The ``repro sample --json`` document for an InferenceResult.

    ``n_terminated`` is derived as ``n_runs - n_truncated`` rather
    than by counting materialized worlds, so columnar (batched or
    sharded) results stay columnar - the value is identical, each
    terminated run contributes exactly one world.
    """
    pdb = result.pdb
    marginals = fact_marginals(pdb)
    ordered = sorted(marginals, key=lambda fact: fact.sort_key())
    return {
        "command": "sample",
        "n_runs": pdb.n_runs,
        "n_terminated": pdb.n_runs - pdb.truncated,
        "n_truncated": pdb.truncated,
        "err_mass": pdb.err_mass(),
        "elapsed_seconds": result.elapsed,
        "backend": result.backend,
        "marginals": [
            {"fact": fact_payload(fact),
             "probability": marginals[fact]}
            for fact in ordered],
    }


def posterior_payload(result) -> dict:
    """The posterior document (``posterior`` / ``stream_posterior``).

    ``method`` echoes the result kind (``likelihood``, ``rejection``,
    ``exact``, or ``stream``); ``effective_sample_size`` is null for
    methods without importance weights.
    """
    pdb = result.pdb
    marginals = fact_marginals(pdb)
    ordered = sorted(marginals, key=lambda fact: fact.sort_key())
    return {
        "command": "posterior",
        "method": result.kind,
        "n_runs": result.n_runs,
        "n_truncated": result.n_truncated,
        "elapsed_seconds": result.elapsed,
        "effective_sample_size": result.effective_sample_size,
        "diagnostics": dict(result.diagnostics),
        "marginals": [
            {"fact": fact_payload(fact),
             "probability": marginals[fact]}
            for fact in ordered],
    }


def query_payload(query_result) -> dict:
    """The ``repro query --json`` / server ``query`` op document.

    ``answers`` lists every distinct answer relation with its
    probability (canonical row order, deterministic across runs);
    ``expected_aggregate`` is present only when the plan's root is a
    group-free aggregate with a single numeric value.
    """
    from repro.errors import SchemaError
    from repro.query.aggregates import Aggregate
    result = query_result.result
    distribution = query_result.distribution()
    answers = []
    for point in distribution.sorted_points():
        columns, rows = point
        answers.append({"columns": list(columns),
                        "rows": [list(row) for row in rows],
                        "probability": distribution.mass(point)})
    payload = {
        "command": "query",
        "plan": plan_payload(query_result.query),
        "strategy": query_result.strategy(),
        "kind": result.kind if result is not None else None,
        "n_runs": result.n_runs if result is not None else None,
        "n_truncated": result.n_truncated
        if result is not None else None,
        "elapsed_seconds": result.elapsed
        if result is not None else None,
        "backend": result.backend if result is not None else None,
        "boolean_probability": query_result.boolean_probability(),
        "answers": answers,
    }
    if isinstance(query_result.query, Aggregate) \
            and not query_result.query.group_by:
        try:
            payload["expected_aggregate"] = \
                query_result.expected_aggregate()
        except (SchemaError, TypeError, ValueError):
            pass  # multi-column or non-numeric aggregate: omit
    return payload


def analyze_payload(compiled, deep: bool = False) -> dict:
    """The ``repro analyze --json`` document for a compiled program.

    ``deep=True`` extends the termination summary with the static
    analyzer's layers (:mod:`repro.analysis`): the lint diagnostics
    and the per-capability eligibility predictions, exactly as the
    :class:`~repro.serving.server.ProgramServer` pre-flight hook
    caches them by program sha.
    """
    program = compiled.program
    report = compiled.analyze()
    verdict = "terminating"
    if not report.weakly_acyclic:
        verdict = "almost-surely-non-terminating" \
            if report.almost_surely_diverges() else "may-terminate"
    payload = {
        "command": "analyze",
        "n_rules": len(program),
        "n_random_rules": len(program.random_rules()),
        "distributions": list(program.distributions_used()),
        "extensional": sorted(program.extensional),
        "discrete": program.is_discrete(),
        "weakly_acyclic": report.weakly_acyclic,
        "continuous_cycle": report.continuous_cycle,
        "cyclic_distributions": list(report.cyclic_distributions),
        "verdict": verdict,
    }
    if deep:
        deep_report = compiled.analyze(deep=True)
        payload["deep"] = True
        payload["lint"] = deep_report.lint.to_json()
        payload["capabilities"] = \
            deep_report.capabilities.to_json()
    return payload


def mass_report_payload(reports) -> dict:
    """Figure-1 mass accounting across budgets, as one document."""
    return {
        "command": "mass_report",
        "reports": [
            {"budget": report.budget,
             "instance_mass": report.instance_mass,
             "err_mass": report.err_mass}
            for report in reports],
    }


# ---------------------------------------------------------------------------
# JSON-lines framing
# ---------------------------------------------------------------------------


def encode_line(payload: dict) -> str:
    """One stable JSON line (no trailing newline)."""
    return json.dumps(payload, default=json_default, sort_keys=True)


def decode_line(line: str) -> dict:
    """Parse one request/response line into an object."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValidationError(f"bad JSON line: {error}") from None
    if not isinstance(payload, dict):
        raise ValidationError(
            f"request must be a JSON object, got {payload!r}")
    return payload
