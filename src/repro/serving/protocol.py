"""The JSON contracts shared by the CLI's ``--json`` mode and the server.

One fact/instance codec and one payload builder per query kind, so
``repro sample --json`` output and a ``ProgramServer`` ``sample``
reply are the *same* document (the CLI delegates here).  Wire framing
is JSON-lines: one request object per line in, one response object per
line out, ``sort_keys`` and a numpy-scalar-tolerant encoder so
payloads are stable and diffable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.observe import Observation
from repro.errors import ValidationError
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance
from repro.pdb.stats import fact_marginals


# ---------------------------------------------------------------------------
# Value / fact / instance codecs
# ---------------------------------------------------------------------------


def json_default(value: Any):
    """JSON fallback for numpy scalars and other odd fact values."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def fact_payload(fact: Fact) -> dict:
    return {"relation": fact.relation, "args": list(fact.args)}


def parse_fact(payload) -> Fact:
    """A fact from ``{"relation": .., "args": [..]}`` or ``["R", [..]]``."""
    if isinstance(payload, dict):
        if not isinstance(payload.get("relation"), str) \
                or not isinstance(payload.get("args"), (list, tuple)):
            raise ValidationError(
                f"fact payload needs 'relation' and 'args': {payload!r}")
        return Fact(payload["relation"], tuple(payload["args"]))
    if isinstance(payload, (list, tuple)) and len(payload) == 2 \
            and isinstance(payload[0], str) \
            and isinstance(payload[1], (list, tuple)):
        return Fact(payload[0], tuple(payload[1]))
    raise ValidationError(f"cannot parse fact payload {payload!r}")


def instance_payload(instance: Instance) -> dict:
    """``{"R": [[args], ...], ...}`` with rows in canonical order."""
    payload: dict[str, list] = {}
    for fact in instance.sorted_facts():
        payload.setdefault(fact.relation, []).append(list(fact.args))
    return payload


def parse_instance(payload) -> Instance:
    """An instance from the relation->rows dict or a fact-payload list."""
    if payload is None:
        return Instance.empty()
    if isinstance(payload, dict):
        for relation, rows in payload.items():
            if not isinstance(relation, str) \
                    or not isinstance(rows, (list, tuple)) \
                    or not all(isinstance(row, (list, tuple))
                               for row in rows):
                raise ValidationError(
                    "instance payload must map relation names to "
                    f"lists of argument rows; bad entry {relation!r}")
        return Instance.from_dict(
            {relation: [tuple(row) for row in rows]
             for relation, rows in payload.items()})
    if isinstance(payload, (list, tuple)):
        return Instance(parse_fact(item) for item in payload)
    raise ValidationError(
        f"cannot parse instance payload {payload!r}")


def evidence_payload(evidence) -> dict:
    """The wire form of one evidence item (observation or fact)."""
    if isinstance(evidence, Observation):
        return {"relation": evidence.relation,
                "carried": list(evidence.carried),
                "value": evidence.value}
    if isinstance(evidence, Fact):
        return {"fact": fact_payload(evidence)}
    raise ValidationError(
        f"cannot encode evidence {evidence!r}; expected an "
        "Observation or a Fact")


def parse_evidence(payload) -> Observation | Fact:
    """Evidence from ``{"relation", "carried", "value"}`` or ``{"fact"}``.

    Sample-level observations condition by likelihood weighting; a
    fact payload conditions on the fact *holding* in the world
    (rejection-style masking on streams).
    """
    if isinstance(payload, dict):
        if "fact" in payload:
            return parse_fact(payload["fact"])
        if "relation" in payload:
            carried = payload.get("carried", [])
            if not isinstance(payload["relation"], str) \
                    or not isinstance(carried, (list, tuple)) \
                    or "value" not in payload:
                raise ValidationError(
                    "observation payload needs 'relation', 'carried' "
                    f"and 'value': {payload!r}")
            return Observation(payload["relation"], tuple(carried),
                               payload["value"])
    raise ValidationError(
        f"cannot parse evidence payload {payload!r}; expected "
        "{'relation': .., 'carried': [..], 'value': ..} or "
        "{'fact': ..}")


# ---------------------------------------------------------------------------
# Result payloads (the CLI --json contracts)
# ---------------------------------------------------------------------------


def sample_payload(result) -> dict:
    """The ``repro sample --json`` document for an InferenceResult.

    ``n_terminated`` is derived as ``n_runs - n_truncated`` rather
    than by counting materialized worlds, so columnar (batched or
    sharded) results stay columnar - the value is identical, each
    terminated run contributes exactly one world.
    """
    pdb = result.pdb
    marginals = fact_marginals(pdb)
    ordered = sorted(marginals, key=lambda fact: fact.sort_key())
    return {
        "command": "sample",
        "n_runs": pdb.n_runs,
        "n_terminated": pdb.n_runs - pdb.truncated,
        "n_truncated": pdb.truncated,
        "err_mass": pdb.err_mass(),
        "elapsed_seconds": result.elapsed,
        "backend": result.backend,
        "marginals": [
            {"fact": fact_payload(fact),
             "probability": marginals[fact]}
            for fact in ordered],
    }


def posterior_payload(result) -> dict:
    """The posterior document (``posterior`` / ``stream_posterior``).

    ``method`` echoes the result kind (``likelihood``, ``rejection``,
    ``exact``, or ``stream``); ``effective_sample_size`` is null for
    methods without importance weights.
    """
    pdb = result.pdb
    marginals = fact_marginals(pdb)
    ordered = sorted(marginals, key=lambda fact: fact.sort_key())
    return {
        "command": "posterior",
        "method": result.kind,
        "n_runs": result.n_runs,
        "n_truncated": result.n_truncated,
        "elapsed_seconds": result.elapsed,
        "effective_sample_size": result.effective_sample_size,
        "diagnostics": dict(result.diagnostics),
        "marginals": [
            {"fact": fact_payload(fact),
             "probability": marginals[fact]}
            for fact in ordered],
    }


def analyze_payload(compiled) -> dict:
    """The ``repro analyze --json`` document for a compiled program."""
    program = compiled.program
    report = compiled.analyze()
    verdict = "terminating"
    if not report.weakly_acyclic:
        verdict = "almost-surely-non-terminating" \
            if report.almost_surely_diverges() else "may-terminate"
    return {
        "command": "analyze",
        "n_rules": len(program),
        "n_random_rules": len(program.random_rules()),
        "distributions": list(program.distributions_used()),
        "extensional": sorted(program.extensional),
        "discrete": program.is_discrete(),
        "weakly_acyclic": report.weakly_acyclic,
        "continuous_cycle": report.continuous_cycle,
        "cyclic_distributions": list(report.cyclic_distributions),
        "verdict": verdict,
    }


def mass_report_payload(reports) -> dict:
    """Figure-1 mass accounting across budgets, as one document."""
    return {
        "command": "mass_report",
        "reports": [
            {"budget": report.budget,
             "instance_mass": report.instance_mass,
             "err_mass": report.err_mass}
            for report in reports],
    }


# ---------------------------------------------------------------------------
# JSON-lines framing
# ---------------------------------------------------------------------------


def encode_line(payload: dict) -> str:
    """One stable JSON line (no trailing newline)."""
    return json.dumps(payload, default=json_default, sort_keys=True)


def decode_line(line: str) -> dict:
    """Parse one request/response line into an object."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValidationError(f"bad JSON line: {error}") from None
    if not isinstance(payload, dict):
        raise ValidationError(
            f"request must be a JSON object, got {payload!r}")
    return payload
