"""Columnar merge of shard results into one inference result.

Batched shards come back as shard-local
:class:`~repro.engine.batched.BatchOutcome` values; merging re-bases
their world indices (group ``members`` arrays and scalar-run indices
shift by the shard's ``start``) and concatenates the group tuples into
a single batch-wide outcome - sample arrays are *kept columnar*, no
world is materialized here.  The merged outcome backs an ordinary
:class:`~repro.engine.batched.ColumnarMonteCarloPDB`, so marginal
queries read the concatenated columns exactly as they would a
single-process batch's.

Scalar shards return their world lists; concatenating them in shard
order reproduces the single-process scalar world order (worlds are
collected in world-index order inside each shard, and shards tile the
index range contiguously).
"""

from __future__ import annotations

from repro.api.config import ChaseConfig
from repro.api.results import InferenceResult
from repro.errors import ChaseError
from repro.pdb.database import MonteCarloPDB
from repro.serving.sharding import (_SUMMED_KEYS, ShardPlan,
                                    ShardResult)


def merge_shard_results(plan: ShardPlan, results: list[ShardResult],
                        visible: tuple[str, ...], cfg: ChaseConfig,
                        elapsed: float) -> InferenceResult:
    """One :class:`InferenceResult` from a plan's shard results.

    ``results`` must be in spec order and cover the plan exactly (the
    executor guarantees both).  All shards share one mode - the
    batched/scalar decision is a function of (program, instance,
    config), never of shard size - and a mixed set is rejected as
    corrupt rather than papered over.
    """
    if [result.spec for result in results] != list(plan.specs):
        raise ChaseError("shard results do not match the plan")
    modes = {result.mode for result in results}
    if len(modes) != 1:
        raise ChaseError(
            f"shards disagree on execution mode ({sorted(modes)}); "
            "the batched/scalar decision must be shard-invariant")
    mode = modes.pop()
    per_shard = [_shard_summary(result) for result in results]
    if mode == "scalar":
        worlds = [world for result in results
                  for world in result.worlds]
        truncated = sum(result.truncated for result in results)
        pdb = MonteCarloPDB(worlds, truncated)
        diagnostics = {"backend": "sharded", "mode": "scalar",
                       "shards": len(results),
                       "per_shard": per_shard}
        return InferenceResult(pdb, "sample", elapsed, n_runs=plan.n,
                               n_truncated=truncated,
                               diagnostics=diagnostics)
    outcome = merge_outcomes(plan, results)
    from repro.engine.batched import ColumnarMonteCarloPDB
    pdb = ColumnarMonteCarloPDB(outcome, visible,
                                keep_aux=cfg.keep_aux)
    info = outcome.diagnostics
    diagnostics = {"backend": "sharded", "mode": "batched",
                   "shards": len(results),
                   "draw_mode": "per-world",
                   "n_split": info["n_split"],
                   "n_batched": plan.n - info["n_split"],
                   "n_layer_firings": info["n_firings"],
                   "n_rounds": info["n_rounds"],
                   "n_groups": info["n_groups"],
                   "n_draw_calls": info["n_draw_calls"],
                   "per_shard": per_shard}
    return InferenceResult(pdb, "sample", elapsed, n_runs=plan.n,
                           n_truncated=pdb.truncated,
                           diagnostics=diagnostics)


def merge_outcomes(plan: ShardPlan, results: list[ShardResult]):
    """Concatenate shard-local batch outcomes into one batch-wide one.

    Groups with the same identity - same shared instance and the same
    prepared layer firings, which is exactly the signature the batched
    engine groups on (``distribution_key`` is content-addressed, so it
    survives pickling across shard processes) - are *coalesced*: their
    member index arrays and per-column sample arrays concatenate, so a
    3-shard merge yields the same group structure a single-process
    batch would, and per-group costs downstream (marginal scans,
    streamed-evidence reweighting) stay O(groups), not
    O(groups x shards).
    """
    import numpy as np

    from repro.engine.batched import BatchOutcome, _ColumnarGroup
    merged: dict[tuple, tuple[list, list[list]]] = {}
    scalar_runs = []
    diagnostics: dict = {key: 0 for key in _SUMMED_KEYS}
    diagnostics["n_rounds"] = 0
    diagnostics["draw_mode"] = "per-world"
    for result in results:
        outcome = result.outcome
        start = result.spec.start
        for group in outcome.groups:
            key = (group.shared,
                   tuple(firing for firing, _values in group.columns))
            members, columns = merged.setdefault(
                key, ([], [[] for _ in group.columns]))
            members.append(group.members + start)
            for column, (_firing, values) in zip(columns,
                                                 group.columns):
                column.append(values)
        for world, run in outcome.scalar_runs:
            scalar_runs.append((world + start, run))
        for key in _SUMMED_KEYS:
            diagnostics[key] += outcome.diagnostics.get(key, 0)
        diagnostics["n_rounds"] = max(diagnostics["n_rounds"],
                                      outcome.diagnostics["n_rounds"])
    groups = []
    for (shared, firings), (members, columns) in merged.items():
        groups.append(_ColumnarGroup(
            np.concatenate(members), shared,
            tuple((firing, np.concatenate(column))
                  for firing, column in zip(firings, columns))))
    # The per-shard counter summed shard-local group counts; after
    # coalescing the merged outcome's own structure is authoritative.
    diagnostics["n_groups"] = len(groups)
    # Stable-relation metadata is a function of (program, instance)
    # only, so every shard computed the same values - take the first.
    first = results[0].outcome
    return BatchOutcome(plan.n, tuple(groups), tuple(scalar_runs),
                        diagnostics, base=first.base,
                        growable=first.growable)


def _shard_summary(result: ShardResult) -> dict:
    summary = {"shard": result.spec.index,
               "start": result.spec.start,
               "size": result.spec.size,
               "mode": result.mode,
               "elapsed_seconds": result.elapsed}
    if result.outcome is not None:
        info = result.outcome.diagnostics
        summary["n_split"] = info["n_split"]
        summary["n_groups"] = info["n_groups"]
        summary["n_rounds"] = info["n_rounds"]
    else:
        summary["n_truncated"] = result.truncated
    return summary
