"""Shard plans and the multi-process shard executor.

A *shard plan* partitions an ``n``-world batch into contiguous shards,
each carrying only ``(start, size)`` plus the plan's root entropy: the
per-world RNG streams are reconstructed inside the workers as
``SeedSequence(entropy, spawn_key=(world,))`` - exactly the children
``SeedSequence(seed).spawn(n)`` would produce (numpy derives a child
from its parent's entropy and its spawn key alone), so world ``i``
draws from the same stream no matter which shard, process, or machine
executes it.

Combined with the batched engine's per-world draw schedule
(:meth:`repro.engine.batched.BatchedChase.run_batch` with
``per_world_rngs``, where a world's draw sequence is a function of its
own trajectory only), this yields the package's central guarantee:
**sharded output is bit-identical across shard counts**, and the
scalar-mode output is bit-identical to the single-process scalar path
under ``streams="spawn"``.

Workers follow the factory-of-generators -> ``Pool.imap_unordered`` ->
sink shape: the pool initializer builds warm per-process state (the
compiled session, its batched sampler, its base applicability engine)
once, so each shard task costs only its own sampling work.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.api.config import ChaseConfig
from repro.api.results import InferenceResult
from repro.core.chase import ChaseRun
from repro.core.policies import DEFAULT_POLICY
from repro.errors import ValidationError
from repro.pdb.instances import Instance

#: Diagnostics keys summed across shards when merging batched results.
_SUMMED_KEYS = ("n_split", "n_firings", "n_groups", "n_group_rounds",
                "n_draw_calls", "n_pooled_draws")


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the batch: worlds ``[start, start+size)``.

    ``entropy`` is the plan's root entropy; together with a world
    index it determines that world's RNG stream (see module
    docstring), so a spec is a complete, picklable work order.
    """

    index: int
    start: int
    size: int
    entropy: int

    def world_indices(self) -> range:
        return range(self.start, self.start + self.size)


@dataclass(frozen=True)
class ShardPlan:
    """A partition of ``n`` worlds into at most ``shards`` shards.

    Contiguous, balanced within one world, zero-size shards dropped -
    so ``len(specs) == min(shards, n)`` and the specs' slices tile
    ``range(n)`` in order.
    """

    n: int
    shards: int
    entropy: int
    specs: tuple[ShardSpec, ...]


def shard_plan(n: int, shards: int,
               seed: int | None = None) -> ShardPlan:
    """Partition an ``n``-world batch into ``shards`` shard specs.

    ``seed`` follows :meth:`repro.api.config.ChaseConfig.spawn_rngs`:
    an int pins the root entropy (``SeedSequence(seed)``), ``None``
    draws fresh entropy once - all shards then share it, keeping the
    batch reproducible from the returned plan either way.
    """
    if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
        raise ValidationError(f"need n >= 1 worlds, got {n!r}")
    if not isinstance(shards, int) or isinstance(shards, bool) \
            or shards <= 0:
        raise ValidationError(f"need shards >= 1, got {shards!r}")
    entropy = np.random.SeedSequence(seed).entropy
    base, extra = divmod(n, shards)
    specs = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        specs.append(ShardSpec(index, start, size, entropy))
        start += size
    return ShardPlan(n, shards, entropy, tuple(specs))


def shard_rngs(spec: ShardSpec) -> list[np.random.Generator]:
    """The shard's per-world generators, one per world index.

    ``SeedSequence(entropy, spawn_key=(i,))`` is the ``i``-th child of
    ``SeedSequence(entropy).spawn(...)``, so these are exactly the
    streams :meth:`ChaseConfig.spawn_rngs` hands world ``i`` in a
    single-process run - shard boundaries never touch the streams.
    """
    return [np.random.default_rng(
                np.random.SeedSequence(spec.entropy, spawn_key=(world,)))
            for world in spec.world_indices()]


# ---------------------------------------------------------------------------
# Shard results and the per-process worker
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardResult:
    """What one shard sends back to the coordinating process.

    ``mode == "batched"``: ``outcome`` is the shard-local
    :class:`~repro.engine.batched.BatchOutcome` (world indices
    relative to ``spec.start``; columnar, compact on the wire).
    ``mode == "scalar"``: ``worlds`` holds the terminated runs'
    output instances in run order and ``truncated`` counts the rest -
    the same shape :meth:`Session._sample_scalar` collects.
    """

    spec: ShardSpec
    mode: str
    elapsed: float
    outcome: object | None = None
    worlds: tuple[Instance, ...] | None = None
    truncated: int = 0


class _ShardWorker:
    """Warm per-process state for one (program, instance, config).

    Built once per pool worker (initializer) or once per inline
    executor; every shard task then reuses the session's cached
    translation, applicability bootstrap and batched sampler - the
    zero-recompilation hot path.
    """

    def __init__(self, translated, instance: Instance,
                 config: ChaseConfig):
        from repro.api.session import compile as compile_program
        # compile() wraps an already-translated program without
        # re-deriving anything.
        self.session = compile_program(translated).on(instance, config)
        self.config = self.session.config
        self.instance = instance
        self.policy = config.policy or DEFAULT_POLICY
        # Mirror Session._sample_batched's gating exactly (backend
        # knob honoured, eligibility checked even for an explicit
        # "batched" request) so a shard samples precisely the worlds
        # the single-process path would.
        self.batched = None
        if self.session._resolve_backend(config) == "batched" \
                and self.session._batch_eligible(config):
            self.batched = self.session._batched_chase()
        if self.batched is None:
            # Scalar mode: bootstrap the base engine now, once.
            self.session._base_engine(config.engine)

    def run(self, spec: ShardSpec) -> ShardResult:
        start = time.perf_counter()
        rngs = shard_rngs(spec)
        if self.batched is not None:
            outcome = self.batched.run_batch(
                spec.size, None, None, self.policy,
                self.config.max_steps, per_world_rngs=rngs)
            if outcome is not None:
                return ShardResult(spec, "batched",
                                   time.perf_counter() - start,
                                   outcome=outcome)
            # Budget decline is a function of (program, instance,
            # max_steps) alone - never of the shard size - so every
            # shard of a plan degrades to scalar together and the
            # shard-count invariance survives the fallback.
        runs = [self.session._one_run(self.config, rng)
                for rng in rngs]
        worlds, truncated = self._collect(runs)
        return ShardResult(spec, "scalar",
                           time.perf_counter() - start,
                           worlds=tuple(worlds), truncated=truncated)

    def _collect(self, runs: list[ChaseRun]):
        from repro.api.session import Session
        return Session._collect_worlds(
            self.config, runs, self.session.compiled.visible_relations)


#: Per-process worker state, set by the pool initializer.
_WORKER: _ShardWorker | None = None


def _init_worker(translated, instance, config) -> None:
    global _WORKER
    _WORKER = _ShardWorker(translated, instance, config)


def _run_shard(spec: ShardSpec) -> ShardResult:
    if _WORKER is None:
        raise RuntimeError("shard worker used before initialization")
    return _WORKER.run(spec)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def _pool_context():
    """Prefer fork (cheap warm-up via COW) where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class ShardExecutor:
    """Runs shard plans for one (translated, instance, config) context.

    ``inline=True`` executes shards sequentially in-process with the
    identical code path - bit-identical results, no pool - which is
    what the differential-fuzz oracle and single-core environments
    use.  Otherwise a lazily created ``multiprocessing`` pool (warm
    worker state via initializer) serves every :meth:`run` until
    :meth:`close`; keep one executor alive across calls to amortize
    worker start-up (the server does).
    """

    def __init__(self, translated, instance: Instance,
                 config: ChaseConfig, processes: int | None = None,
                 inline: bool = False):
        self.translated = translated
        self.instance = instance
        self.config = config
        self.processes = processes or max(1, os.cpu_count() or 1)
        self.inline = bool(inline)
        self._pool = None
        self._worker: _ShardWorker | None = None

    def run(self, plan: ShardPlan) -> list[ShardResult]:
        """Execute every spec of the plan; results in spec order."""
        if self.inline:
            if self._worker is None:
                self._worker = _ShardWorker(
                    self.translated, self.instance, self.config)
            results = [self._worker.run(spec) for spec in plan.specs]
        else:
            if self._pool is None:
                self._pool = _pool_context().Pool(
                    self.processes, initializer=_init_worker,
                    initargs=(self.translated, self.instance,
                              self.config))
            results = list(self._pool.imap_unordered(
                _run_shard, plan.specs))
        results.sort(key=lambda result: result.spec.index)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The Session entry point
# ---------------------------------------------------------------------------


def sample_sharded(session, n: int, config: ChaseConfig | None = None,
                   executor: ShardExecutor | None = None,
                   ) -> InferenceResult:
    """Sample ``n`` worlds across ``config.shards`` process shards.

    The routing target of ``Session.sample(n, shards=k)``.  Requires
    the ``"spawn"`` stream scheme and an int-or-None seed (per-world
    streams must be reconstructible from a plan, not from mutable
    generator state).  ``executor`` may be a warm
    :class:`ShardExecutor` for the same (program, instance, config)
    context; without one, a transient pool is created for the call.
    """
    from repro.serving.merge import merge_shard_results
    cfg = config if config is not None else session.config
    shards = cfg.shards or 1
    if cfg.streams != "spawn":
        raise ValidationError(
            "sharded sampling requires streams='spawn'; the 'shared' "
            "scheme's single sequential stream cannot be partitioned")
    if isinstance(cfg.seed, np.random.Generator):
        raise ValidationError(
            "sharded sampling requires an int or None seed; a "
            "Generator's state cannot be shipped to shard workers "
            "reproducibly")
    if n <= 0:
        raise ValidationError(f"need n >= 1 runs, got {n}")
    start = time.perf_counter()
    plan = shard_plan(n, shards, cfg.seed)
    translated = session.compiled.translated
    if executor is not None:
        results = executor.run(plan)
    else:
        with ShardExecutor(translated, session.instance, cfg,
                           processes=min(shards,
                                         os.cpu_count() or 1)) as pool:
            results = pool.run(plan)
    return merge_shard_results(
        plan, results, session.compiled.visible_relations, cfg,
        time.perf_counter() - start)
