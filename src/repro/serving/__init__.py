"""Sharded multi-process sampling and a long-lived program server.

The paper's Monte-Carlo semantics is embarrassingly parallel across
possible worlds: ``n`` chase runs are ``n`` independent draws from the
same chase-tree law (Section 4).  This package exploits that in two
layers on top of :class:`repro.api.CompiledProgram`:

* :mod:`repro.serving.sharding` / :mod:`repro.serving.merge` - split a
  batch into shards, run each shard's worlds in a ``multiprocessing``
  pool worker (vectorized :class:`repro.engine.batched.BatchedChase`
  with scalar fallback), and concatenate the *columnar* shard results
  into one :class:`repro.engine.batched.ColumnarMonteCarloPDB` without
  materializing worlds.  Per-world
  :class:`~numpy.random.SeedSequence` child streams make the merged
  output law-exact and bit-identical across shard counts.
* :mod:`repro.serving.server` / :mod:`repro.serving.client` - a
  ``ProgramServer`` facade that caches compiled programs by source
  hash (LRU, zero recompilation on the hot path) behind a JSON-lines
  protocol (stdin/stdout or socket), exposed as ``repro serve``.

Entry points: ``Session.sample(n, shards=k)`` routes through
:func:`sample_sharded`; servers embed :class:`ProgramServer` directly.
"""

from repro.serving.merge import merge_shard_results
from repro.serving.sharding import (ShardExecutor, ShardPlan,
                                    ShardResult, ShardSpec,
                                    sample_sharded, shard_plan,
                                    shard_rngs)
from repro.serving.server import ProgramServer, serve_socket, serve_stdio
from repro.serving.client import ServingClient

__all__ = [
    "ProgramServer",
    "ServingClient",
    "ShardExecutor",
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "merge_shard_results",
    "sample_sharded",
    "serve_socket",
    "serve_stdio",
    "shard_plan",
    "shard_rngs",
]
