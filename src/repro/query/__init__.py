"""Relational algebra, aggregates, and their lifting to PDBs."""

from repro.query.aggregates import (Aggregate, AggregateFunction, agg_avg,
                                    agg_count, agg_max, agg_min, agg_sum,
                                    agg_var, aggregate_value)
from repro.query.lifted import (aggregate_distribution,
                                answer_probabilities, boolean_probability,
                                expected_aggregate, query_distribution,
                                statistic_distribution)
from repro.query.relalg import (Difference, Extend, Intersection,
                                NaturalJoin, Product, Project, Query,
                                Relation, Rename, Scan, Select, Union,
                                scan)

__all__ = [
    "Aggregate", "AggregateFunction", "Difference", "Extend",
    "Intersection", "NaturalJoin", "Product", "Project", "Query",
    "Relation", "Rename", "Scan", "Select", "Union", "agg_avg",
    "agg_count", "agg_max", "agg_min", "agg_sum", "agg_var",
    "aggregate_distribution", "aggregate_value", "answer_probabilities",
    "boolean_probability", "expected_aggregate", "query_distribution",
    "scan", "statistic_distribution",
]
