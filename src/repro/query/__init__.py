"""Relational algebra, aggregates, and their lifting to PDBs.

The plan language (:mod:`repro.query.relalg`,
:mod:`repro.query.aggregates`) builds ordinary relational-algebra
trees; the lifted entry points re-exported here push a plan through a
whole probabilistic database.  They are implemented by
:mod:`repro.query.columnar`, which *compiles* structural plans to
numpy mask/reduction passes over a batched ensemble's sample arrays
(with a lifted fast path when the plan only reads stable relations)
and falls back to per-world evaluation otherwise.  Prefer the facade:
``Session.query(plan)`` / ``InferenceResult.query(plan)`` return a
:class:`repro.api.QueryResult` wrapping the same machinery.

Structural vs opaque selections - the planner's contract:

* ``query.where(column=value, ...)`` records the equality constraints
  *structurally*, so the planner can translate them into vectorized
  boolean masks over the sample columns (and servers can encode them
  on the wire).  Use it whenever the predicate is a conjunction of
  equalities.
* ``query.select(callable)`` keeps the predicate *opaque* - an escape
  hatch for arbitrary row logic.  Opaque plans still answer correctly
  everywhere, but force the transparent per-world fallback (worlds are
  materialized) and cannot be served remotely.

:func:`repro.query.columnar.explain` reports which strategy a plan
gets over a given PDB (``"lifted"``, ``"columnar"``, ``"fallback"``
or ``"worlds"``).

The former homes of the lifted functions in
:mod:`repro.query.lifted` remain importable but are deprecated shims.
"""

from repro.query.aggregates import (Aggregate, AggregateFunction, agg_avg,
                                    agg_count, agg_max, agg_min, agg_sum,
                                    agg_var, aggregate_answer,
                                    aggregate_value)
from repro.query.columnar import (aggregate_distribution,
                                  answer_probabilities,
                                  boolean_probability, expected_aggregate,
                                  explain, plan_vectorizable,
                                  query_answers, query_distribution,
                                  scanned_relations,
                                  statistic_distribution)
from repro.query.relalg import (Difference, Extend, Intersection,
                                NaturalJoin, Product, Project, Query,
                                Relation, Rename, Scan, Select, Union,
                                scan)

__all__ = [
    "Aggregate", "AggregateFunction", "Difference", "Extend",
    "Intersection", "NaturalJoin", "Product", "Project", "Query",
    "Relation", "Rename", "Scan", "Select", "Union", "agg_avg",
    "agg_count", "agg_max", "agg_min", "agg_sum", "agg_var",
    "aggregate_answer", "aggregate_distribution", "aggregate_value",
    "answer_probabilities", "boolean_probability", "expected_aggregate",
    "explain", "plan_vectorizable", "query_answers",
    "query_distribution", "scan", "scanned_relations",
    "statistic_distribution",
]
