"""Aggregate queries (count/sum/avg/min/max with grouping).

Fact 2.6 covers aggregate queries as measurable functions on PDBs; this
module provides the instance-level evaluation, and
:mod:`repro.query.lifted` pushes the results forward to distributions
over aggregate values.

An :class:`Aggregate` wraps a relational query, a list of group-by
columns, and named aggregate specifications.  Evaluation yields a
:class:`repro.query.relalg.Relation` whose columns are the group-by
columns followed by the aggregate columns.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.errors import SchemaError
from repro.query.relalg import Query, Relation


class AggregateFunction:
    """A named aggregate over a list of column values."""

    def __init__(self, name: str, column: str | None,
                 fold: Callable[[list], Any]):
        self.name = name
        self.column = column
        self.fold = fold

    def __call__(self, values: list) -> Any:
        return self.fold(values)


def agg_count(column: str | None = None) -> AggregateFunction:
    """``COUNT(*)`` (column ignored; present for symmetry)."""
    return AggregateFunction("count", column, len)


def agg_sum(column: str) -> AggregateFunction:
    """``SUM(column)`` over the group."""
    return AggregateFunction("sum", column, math.fsum)


def agg_avg(column: str) -> AggregateFunction:
    """``AVG(column)`` over the group (error on empty groups)."""
    def fold(values: list) -> float:
        if not values:
            raise SchemaError("avg of an empty group")
        return math.fsum(values) / len(values)
    return AggregateFunction("avg", column, fold)


def agg_min(column: str) -> AggregateFunction:
    """``MIN(column)`` over the group."""
    return AggregateFunction("min", column, min)


def agg_max(column: str) -> AggregateFunction:
    """``MAX(column)`` over the group."""
    return AggregateFunction("max", column, max)


def agg_var(column: str) -> AggregateFunction:
    """Population variance of the group values."""
    def fold(values: list) -> float:
        if not values:
            raise SchemaError("var of an empty group")
        mean = math.fsum(values) / len(values)
        return math.fsum((v - mean) ** 2 for v in values) / len(values)
    return AggregateFunction("var", column, fold)


class Aggregate(Query):
    """Group-by aggregation over a source query.

    >>> from repro.query.relalg import scan
    >>> q = Aggregate(scan("Height", "person", "cm"),
    ...               group_by=(), aggregates={"avg_cm": agg_avg("cm")})

    The output columns are ``group_by + tuple(aggregates)``.  With an
    empty ``group_by`` the result has exactly one row (aggregating the
    whole relation; empty input yields count 0 and raises for
    aggregates undefined on empty input, mirroring SQL's semantics for
    ``avg``/``min``/``max`` with no rows being NULL - here: an error
    for those, 0 for count and sum).
    """

    def __init__(self, source: Query, group_by: Iterable[str],
                 aggregates: dict[str, AggregateFunction]):
        self.source = source
        self.group_by = tuple(group_by)
        self.aggregates = dict(aggregates)
        if not self.aggregates:
            raise SchemaError("aggregate query needs at least one "
                              "aggregate function")

    def evaluate(self, instance) -> Relation:
        relation = self.source.evaluate(instance)
        group_indices = [relation.column_index(name)
                         for name in self.group_by]
        value_indices = {
            out_name: (relation.column_index(func.column)
                       if func.column is not None else None)
            for out_name, func in self.aggregates.items()}

        groups: dict[tuple, list[tuple]] = {}
        for row in relation.rows:
            key = tuple(row[i] for i in group_indices)
            groups.setdefault(key, []).append(row)
        if not self.group_by and not groups:
            groups[()] = []

        out_columns = self.group_by + tuple(self.aggregates)
        out_rows = []
        for key, rows in groups.items():
            aggregated = []
            for out_name, func in self.aggregates.items():
                index = value_indices[out_name]
                values = [row[index] for row in rows] \
                    if index is not None else list(rows)
                if not rows and func.name in ("count", "sum"):
                    aggregated.append(0)
                else:
                    aggregated.append(func(values))
            out_rows.append(key + tuple(aggregated))
        return Relation(out_columns, out_rows)


def aggregate_answer(relation: Relation, column: str | None = None):
    """Extract the single value of a (group-free) aggregate answer.

    The relation-level half of :func:`aggregate_value`, shared with the
    columnar planner (:mod:`repro.query.columnar`), which produces the
    answer relations without ever evaluating against an instance.
    """
    rows = list(relation.rows)
    if len(rows) != 1:
        raise SchemaError(
            f"expected one result row, got {len(rows)}")
    if column is None:
        if len(relation.columns) != 1:
            raise SchemaError(
                f"ambiguous aggregate column among {relation.columns!r}")
        return rows[0][0]
    return rows[0][relation.column_index(column)]


def aggregate_value(query: Query, instance, column: str | None = None):
    """Evaluate a (group-free) aggregate and return its single value.

    ``column`` selects among multiple aggregate columns; defaults to the
    only one.
    """
    return aggregate_answer(query.evaluate(instance), column)
