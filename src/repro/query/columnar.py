"""Columnar query pushdown: relational plans over batch sample arrays.

The batched engine (:mod:`repro.engine.batched`) keeps an ``n``-world
ensemble columnar - a shared closed instance per group plus one numpy
array of sampled values per layer firing.  Every query entry point
used to force ``.worlds`` (materializing ``n`` instances) before
evaluating a plan per world; this module instead *compiles* a
:class:`~repro.query.relalg.Query` tree down to numpy operations over
those arrays:

* selections (:meth:`Query.where`'s structural equalities) become
  boolean masks over the sample columns;
* equality joins compare columns elementwise, keyed by world id (all
  arrays of a group are aligned with its member worlds);
* aggregates reduce per world - pure-count aggregates as one vector
  sum over presence masks, value folds via the *same* fold callables
  the per-world evaluator uses, so results are bit-identical;
* a **lifted fast path** skips per-world evaluation entirely whenever
  the plan only scans *stable* relations - relations the batch's
  stable-relation analysis proves can never gain a fact after the
  shared fixpoint (:attr:`BatchOutcome.growable`).  Such a plan has
  the same answer in every terminated world, so one evaluation against
  the shared closed instance answers all ``n`` worlds at once (the
  first-order-model-counting shortcut specialized to this ensemble).

Plans the compiler cannot vectorize - opaque ``select(callable)``
predicates, :class:`~repro.query.relalg.Extend`, nested aggregates -
fall back *transparently* to the per-world evaluator (via
``world_slots``; the answer is identical, only slower).

The module also hosts the unified push-forward implementation behind
:meth:`repro.api.Session.query`: one dispatch covering exact PDBs,
plain and columnar Monte-Carlo ensembles, and weighted (posterior)
ensembles including the streamed :class:`WeightedColumnarPDB` - which
the historical :mod:`repro.query.lifted` entry points could not
answer at all.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from repro.engine.batched import ColumnarMonteCarloPDB
from repro.errors import SchemaError
from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB, MonteCarloPDB, PDBBase
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedColumnarPDB, WeightedPDB
from repro.query.aggregates import Aggregate, aggregate_answer
from repro.query.relalg import (Difference, Extend, Intersection,
                                NaturalJoin, Product, Project, Query,
                                Relation, Rename, Scan, Select, Union)


class _Unsupported(Exception):
    """Internal: the plan (or this group's data) is not vectorizable."""


# ---------------------------------------------------------------------------
# Plan analysis
# ---------------------------------------------------------------------------


def scanned_relations(query: Query) -> frozenset | None:
    """Every stored relation the plan reads, or None on unknown nodes."""
    relations: set[str] = set()
    stack = [query]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            relations.add(node.relation)
        elif isinstance(node, (Select, Project, Rename, Extend,
                               Aggregate)):
            stack.append(node.source)
        elif isinstance(node, (NaturalJoin, Product, Union, Difference,
                               Intersection)):
            stack.append(node.left)
            stack.append(node.right)
        else:
            return None
    return frozenset(relations)


def plan_vectorizable(query: Query, _root: bool = True) -> bool:
    """Whether the columnar compiler handles every node of the plan.

    Opaque ``select(callable)`` predicates, :class:`Extend`, nested
    aggregates and unknown node types evaluate per world instead.
    """
    if isinstance(query, Aggregate):
        return _root and plan_vectorizable(query.source, _root=False)
    if isinstance(query, Scan):
        return True
    if isinstance(query, Select):
        return query.equalities is not None \
            and plan_vectorizable(query.source, _root=False)
    if isinstance(query, (Project, Rename)):
        return plan_vectorizable(query.source, _root=False)
    if isinstance(query, (NaturalJoin, Product, Union, Difference,
                          Intersection)):
        return plan_vectorizable(query.left, _root=False) \
            and plan_vectorizable(query.right, _root=False)
    return False


def explain(pdb: PDBBase, query: Query) -> str:
    """Which evaluation strategy :func:`query_answers` would pick.

    ``"lifted"`` - one evaluation against the shared closed instance
    answers every world (stable-relation fast path); ``"columnar"`` -
    vectorized per-group compilation; ``"fallback"`` - per-world
    evaluation over lazily built world slots; ``"worlds"`` - not a
    columnar ensemble at all (exact or materialized-world paths).
    """
    if isinstance(pdb, WeightedColumnarPDB):
        return explain(pdb._columnar, query)
    if not isinstance(pdb, ColumnarMonteCarloPDB):
        return "worlds"
    scanned = scanned_relations(query)
    growable = pdb.growable_relations
    if scanned is not None and growable is not None \
            and pdb.stable_view() is not None \
            and not (scanned & growable):
        return "lifted"
    return "columnar" if plan_vectorizable(query) else "fallback"


# ---------------------------------------------------------------------------
# Mask algebra: presence masks are True (all worlds) or a bool array
# ---------------------------------------------------------------------------


def _and(a, b):
    if a is False or b is False:
        return False
    if a is True:
        return b
    if b is True:
        return a
    return a & b


def _or(a, b):
    if a is True or b is True:
        return True
    if a is False:
        return b
    if b is False:
        return a
    return a | b


def _minus(a, b):
    """``a and not b``."""
    if a is False or b is True:
        return False
    if b is False:
        return a
    if a is True:
        return ~b
    return a & ~b


def _prune(mask):
    """Collapse an all-False array to the False sentinel."""
    if isinstance(mask, np.ndarray) and not mask.any():
        return False
    return mask


_NUMERIC = (bool, int, float, np.integer, np.floating)


def _cell_eq(a, b):
    """Elementwise equality of two cells: True, False, or a mask.

    A cell is either a scalar constant or a per-world numpy array of
    sampled values.  Sample columns hold numbers only, so a
    non-numeric constant can never match one (mirroring the columnar
    marginal reader's dispatch).
    """
    a_is_array = isinstance(a, np.ndarray)
    b_is_array = isinstance(b, np.ndarray)
    if not a_is_array and not b_is_array:
        return bool(a == b)
    if a_is_array and b_is_array:
        return np.equal(a, b)
    scalar = b if a_is_array else a
    array = a if a_is_array else b
    if not isinstance(scalar, _NUMERIC):
        return False
    return np.equal(array, scalar)


def _row_eq(cells_a: tuple, cells_b: tuple):
    acc = True
    for a, b in zip(cells_a, cells_b):
        eq = _cell_eq(a, b)
        if eq is False:
            return False
        acc = _and(acc, eq)
    return acc


def _dedup(rows: list) -> list:
    """Enforce per-world set semantics on a list of (cells, mask) rows.

    For every world, among rows equal *in that world*, only the first
    stays present - exactly the dedup a per-world ``frozenset`` of
    rows performs.  O(rows² · n), with row counts that are tiny in
    practice (a handful of templates per relation).
    """
    out: list = []
    for cells, mask in rows:
        for prev_cells, prev_mask in out:
            dup = _and(_row_eq(cells, prev_cells), prev_mask)
            mask = _prune(_minus(mask, dup))
            if mask is False:
                break
        if mask is not False:
            out.append((cells, mask))
    return out


def _column_index(columns: tuple, name: str) -> int:
    try:
        return columns.index(name)
    except ValueError:
        raise SchemaError(
            f"unknown column {name!r}; have {columns!r}") from None


class _Table:
    """One group's columnar relation: rows of scalar-or-array cells."""

    __slots__ = ("columns", "rows", "n")

    def __init__(self, columns: tuple, rows: list, n: int):
        self.columns = tuple(columns)
        self.rows = rows
        self.n = n


# ---------------------------------------------------------------------------
# The per-group compiler
# ---------------------------------------------------------------------------


class _GroupPlanner:
    """Evaluates a plan over one columnar group's shared view + columns."""

    def __init__(self, pdb: ColumnarMonteCarloPDB, group_index: int):
        group = pdb._outcome.groups[group_index]
        self.n = len(group.members)
        self.shared: Instance = pdb._group_view(group_index)
        self.templates: list[tuple] = []
        for firing, values in group.columns:
            for template in pdb._column_templates(firing):
                self.templates.append((template, values))

    # -- node dispatch ------------------------------------------------------

    def table(self, query: Query) -> _Table:
        if isinstance(query, Scan):
            return self._scan(query)
        if isinstance(query, Select):
            return self._select(query)
        if isinstance(query, Project):
            return self._project(query)
        if isinstance(query, Rename):
            return self._rename(query)
        if isinstance(query, NaturalJoin):
            return self._join(query)
        if isinstance(query, Product):
            return self._product(query)
        if isinstance(query, Union):
            return self._union(query)
        if isinstance(query, Difference):
            return self._difference(query)
        if isinstance(query, Intersection):
            return self._intersection(query)
        raise _Unsupported(type(query).__name__)

    # -- leaves -------------------------------------------------------------

    def _scan(self, query: Scan) -> _Table:
        rows: list[tuple] = [tuple(row)
                             for row in self.shared.tuples_of(
                                 query.relation)]
        for (relation, args, position), values in self.templates:
            if relation != query.relation:
                continue
            cells = list(args)
            cells[position] = values
            rows.append(tuple(cells))
        arities = {len(cells) for cells in rows}
        if query.columns is not None:
            columns = query.columns
            if any(arity != len(columns) for arity in arities):
                # The per-world evaluator raises SchemaError; let it.
                raise _Unsupported("scan arity mismatch")
        else:
            if not arities:
                return _Table((), [], self.n)
            if len(arities) != 1:
                raise _Unsupported("mixed-arity scan")
            columns = tuple(f"c{i}" for i in range(arities.pop()))
        return _Table(columns, _dedup([(cells, True) for cells in rows]),
                      self.n)

    # -- unary operators ----------------------------------------------------

    def _select(self, query: Select) -> _Table:
        if query.equalities is None:
            raise _Unsupported("opaque Select predicate")
        table = self.table(query.source)
        tests = [(_column_index(table.columns, name), value)
                 for name, value in query.equalities.items()]
        rows = []
        for cells, mask in table.rows:
            for index, value in tests:
                mask = _prune(_and(mask, _cell_eq(cells[index], value)))
                if mask is False:
                    break
            if mask is not False:
                rows.append((cells, mask))
        return _Table(table.columns, rows, self.n)

    def _project(self, query: Project) -> _Table:
        table = self.table(query.source)
        indices = [_column_index(table.columns, name)
                   for name in query.columns]
        rows = [(tuple(cells[i] for i in indices), mask)
                for cells, mask in table.rows]
        return _Table(query.columns, _dedup(rows), self.n)

    def _rename(self, query: Rename) -> _Table:
        table = self.table(query.source)
        columns = tuple(query.mapping.get(name, name)
                        for name in table.columns)
        return _Table(columns, table.rows, self.n)

    # -- binary operators ---------------------------------------------------

    def _join(self, query: NaturalJoin) -> _Table:
        left = self.table(query.left)
        right = self.table(query.right)
        shared = [name for name in left.columns
                  if name in right.columns]
        left_key = [_column_index(left.columns, name)
                    for name in shared]
        right_key = [_column_index(right.columns, name)
                     for name in shared]
        right_extra = [i for i, name in enumerate(right.columns)
                       if name not in shared]
        columns = left.columns + tuple(right.columns[i]
                                       for i in right_extra)
        rows = []
        for left_cells, left_mask in left.rows:
            for right_cells, right_mask in right.rows:
                mask = _and(left_mask, right_mask)
                for li, ri in zip(left_key, right_key):
                    mask = _prune(_and(mask, _cell_eq(left_cells[li],
                                                      right_cells[ri])))
                    if mask is False:
                        break
                if mask is False:
                    continue
                rows.append((left_cells + tuple(right_cells[i]
                                                for i in right_extra),
                             mask))
        return _Table(columns, rows, self.n)

    def _product(self, query: Product) -> _Table:
        left = self.table(query.left)
        right = self.table(query.right)
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise SchemaError(
                f"product requires disjoint columns; shared {overlap!r}")
        rows = []
        for left_cells, left_mask in left.rows:
            for right_cells, right_mask in right.rows:
                mask = _prune(_and(left_mask, right_mask))
                if mask is not False:
                    rows.append((left_cells + right_cells, mask))
        return _Table(left.columns + right.columns, rows, self.n)

    def _operands(self, query) -> tuple[_Table, _Table]:
        left = self.table(query.left)
        right = self.table(query.right)
        if left.columns != right.columns:
            raise SchemaError(
                f"set operation needs equal columns: {left.columns!r} "
                f"vs {right.columns!r}")
        return left, right

    def _union(self, query: Union) -> _Table:
        left, right = self._operands(query)
        return _Table(left.columns, _dedup(left.rows + right.rows),
                      self.n)

    def _difference(self, query: Difference) -> _Table:
        left, right = self._operands(query)
        rows = []
        for cells, mask in left.rows:
            for right_cells, right_mask in right.rows:
                hit = _and(_row_eq(cells, right_cells), right_mask)
                mask = _prune(_minus(mask, hit))
                if mask is False:
                    break
            if mask is not False:
                rows.append((cells, mask))
        return _Table(left.columns, rows, self.n)

    def _intersection(self, query: Intersection) -> _Table:
        left, right = self._operands(query)
        rows = []
        for cells, mask in left.rows:
            present = False
            for right_cells, right_mask in right.rows:
                present = _or(present, _and(_row_eq(cells, right_cells),
                                            right_mask))
                if present is True:
                    break
            mask = _prune(_and(mask, present))
            if mask is not False:
                rows.append((cells, mask))
        return _Table(left.columns, rows, self.n)

    # -- per-world assembly -------------------------------------------------

    def _listed_rows(self, table: _Table) -> list[tuple]:
        """(cells-with-arrays-listed, mask-listed) per row."""
        listed = []
        for cells, mask in table.rows:
            cell_lists = tuple(cell.tolist()
                               if isinstance(cell, np.ndarray) else None
                               for cell in cells)
            mask_list = None if mask is True else mask.tolist()
            listed.append((cells, cell_lists, mask_list))
        return listed

    def world_rows(self, table: _Table) -> list[list[tuple]]:
        """The dedup'd row set of every member world, as value tuples."""
        per_world: list[list[tuple]] = [[] for _ in range(self.n)]
        for cells, cell_lists, mask_list in self._listed_rows(table):
            if mask_list is None and all(values is None
                                         for values in cell_lists):
                constant = tuple(cells)
                for rows in per_world:
                    rows.append(constant)
                continue
            for position, rows in enumerate(per_world):
                if mask_list is not None and not mask_list[position]:
                    continue
                rows.append(tuple(
                    cell if values is None else values[position]
                    for cell, values in zip(cells, cell_lists)))
        return per_world

    def assemble(self, table: _Table) -> list[Relation]:
        """One answer :class:`Relation` per member world."""
        columns = table.columns
        cache: dict[frozenset, Relation] = {}
        answers = []
        for rows in self.world_rows(table):
            key = frozenset(rows)
            answer = cache.get(key)
            if answer is None:
                answer = Relation(columns, key)
                cache[key] = answer
            answers.append(answer)
        return answers

    def aggregate_answers(self, query: Aggregate) -> list[Relation]:
        """Per-world aggregate results, segmented reductions per world.

        Pure-count aggregates without grouping reduce as one vector
        sum over the presence masks; everything else extracts the
        per-world value lists and applies the *same* fold callables
        the per-world evaluator uses (``math.fsum`` etc.), so results
        are bit-identical including empty-group error semantics.
        """
        table = self.table(query.source)
        group_indices = [_column_index(table.columns, name)
                         for name in query.group_by]
        value_indices = {
            out_name: (_column_index(table.columns, func.column)
                       if func.column is not None else None)
            for out_name, func in query.aggregates.items()}
        out_columns = query.group_by + tuple(query.aggregates)

        if not query.group_by and all(
                func.name == "count"
                for func in query.aggregates.values()):
            counts = np.zeros(self.n, dtype=np.int64)
            for _cells, mask in table.rows:
                if mask is True:
                    counts += 1
                else:
                    counts += mask
            width = len(query.aggregates)
            cache: dict[int, Relation] = {}
            answers = []
            for count in counts.tolist():
                answer = cache.get(count)
                if answer is None:
                    answer = Relation(out_columns, [(count,) * width])
                    cache[count] = answer
                answers.append(answer)
            return answers

        answers = []
        for world_rows in self.world_rows(table):
            groups: dict[tuple, list[tuple]] = {}
            for row in world_rows:
                key = tuple(row[i] for i in group_indices)
                groups.setdefault(key, []).append(row)
            if not query.group_by and not groups:
                groups[()] = []
            out_rows = []
            for key, rows in groups.items():
                aggregated = []
                for out_name, func in query.aggregates.items():
                    index = value_indices[out_name]
                    values = [row[index] for row in rows] \
                        if index is not None else list(rows)
                    if not rows and func.name in ("count", "sum"):
                        aggregated.append(0)
                    else:
                        aggregated.append(func(values))
                out_rows.append(key + tuple(aggregated))
            answers.append(Relation(out_columns, out_rows))
        return answers


# ---------------------------------------------------------------------------
# Slot-aligned answers for a columnar ensemble
# ---------------------------------------------------------------------------


def query_answers(pdb: ColumnarMonteCarloPDB,
                  query: Query) -> list[Relation | None]:
    """Answer relation per world *slot* (None = truncated world).

    The core columnar evaluator: lifted fast path when the plan only
    touches stable relations, vectorized per-group compilation when
    every node is supported, transparent per-world fallback otherwise.
    Scalar-fallback runs always evaluate per world (their instances
    already exist); none of the strategies ever materializes the
    grouped worlds except the explicit fallback.
    """
    outcome = pdb._outcome
    slots: list[Relation | None] = [None] * outcome.size

    lifted, answer = _lifted_answer(pdb, query)
    if lifted:
        for group in outcome.groups:
            for world in group.members.tolist():
                slots[world] = answer
        for index, _world in pdb._scalar_slots():
            slots[index] = answer
        return slots

    if not plan_vectorizable(query):
        return _fallback_slots(pdb, query)
    try:
        per_group = []
        for group_index in range(len(outcome.groups)):
            planner = _GroupPlanner(pdb, group_index)
            if isinstance(query, Aggregate):
                per_group.append(planner.aggregate_answers(query))
            else:
                per_group.append(planner.assemble(planner.table(query)))
    except _Unsupported:
        return _fallback_slots(pdb, query)
    for group, answers in zip(outcome.groups, per_group):
        for world, answer in zip(group.members.tolist(), answers):
            slots[world] = answer
    for index, world in pdb._scalar_slots():
        slots[index] = query.evaluate(world)
    return slots


def _lifted_answer(pdb: ColumnarMonteCarloPDB, query: Query):
    scanned = scanned_relations(query)
    if scanned is None:
        return False, None
    growable = pdb.growable_relations
    base = pdb.stable_view()
    if growable is None or base is None or (scanned & growable):
        return False, None
    return True, query.evaluate(base)


def _fallback_slots(pdb: ColumnarMonteCarloPDB,
                    query: Query) -> list[Relation | None]:
    return [None if world is None else query.evaluate(world)
            for world in pdb.world_slots()]


def _posts(slots: list, post: Callable[[Relation], Any]) -> list:
    """``post`` over the non-None slots in order, cached per identity.

    The lifted fast path and the assembly cache reuse one Relation
    object across worlds; computing its image once keeps the
    push-forward O(distinct answers), not O(worlds).
    """
    cache: dict[int, Any] = {}
    images = []
    for relation in slots:
        if relation is None:
            continue
        key = id(relation)
        if key not in cache:
            cache[key] = post(relation)
        images.append(cache[key])
    return images


# ---------------------------------------------------------------------------
# The unified push-forward dispatch (Session.query's engine)
# ---------------------------------------------------------------------------


def _push_world(pdb: PDBBase, f: Callable[[Instance], Any],
                ) -> DiscreteMeasure:
    """Push-forward of a per-world function (world-materializing)."""
    if isinstance(pdb, DiscretePDB):
        return pdb.push_distribution(f)
    if isinstance(pdb, ColumnarMonteCarloPDB):
        values = [f(world) for world in pdb.world_slots()
                  if world is not None]
        if not values:
            return DiscreteMeasure.zero()
        return DiscreteMeasure.from_samples(values).scale(
            pdb.total_mass())
    if isinstance(pdb, MonteCarloPDB):
        if not pdb.worlds:
            return DiscreteMeasure.zero()
        empirical = DiscreteMeasure.from_samples(
            [f(world) for world in pdb.worlds])
        return empirical.scale(pdb.total_mass())
    if isinstance(pdb, WeightedColumnarPDB):
        masses: dict = {}
        for world, weight in pdb._iter_weighted():
            image = f(world)
            masses[image] = masses.get(image, 0.0) + weight
        if not masses:
            return DiscreteMeasure.zero()
        return DiscreteMeasure(
            {point: mass / pdb.total_weight()
             for point, mass in masses.items()})
    if isinstance(pdb, WeightedPDB):
        masses = {}
        for world, weight in zip(pdb.worlds, pdb.weights):
            image = f(world)
            masses[image] = masses.get(image, 0.0) + weight
        return DiscreteMeasure(
            {point: mass / pdb.total_weight()
             for point, mass in masses.items()})
    raise TypeError(f"not a PDB: {pdb!r}")


def _push_query(pdb: PDBBase, query: Query,
                post: Callable[[Relation], Any]) -> DiscreteMeasure:
    """Push-forward of ``post(query(D))``, columnar where possible."""
    if isinstance(pdb, ColumnarMonteCarloPDB):
        images = _posts(query_answers(pdb, query), post)
        if not images:
            return DiscreteMeasure.zero()
        return DiscreteMeasure.from_samples(images).scale(
            pdb.total_mass())
    if isinstance(pdb, WeightedColumnarPDB):
        slots = query_answers(pdb._columnar, query)
        weights = pdb.weights
        cache: dict[int, Any] = {}
        masses: dict = {}
        for index, relation in enumerate(slots):
            if relation is None:
                continue
            weight = float(weights[index])
            if weight <= 0.0:
                continue
            key = id(relation)
            if key not in cache:
                cache[key] = post(relation)
            image = cache[key]
            masses[image] = masses.get(image, 0.0) + weight
        if not masses:
            return DiscreteMeasure.zero()
        return DiscreteMeasure(
            {point: mass / pdb.total_weight()
             for point, mass in masses.items()})
    return _push_world(pdb, lambda instance:
                       post(query.evaluate(instance)))


def query_distribution(pdb: PDBBase, query: Query) -> DiscreteMeasure:
    """Push-forward distribution of a query's full answer relation."""
    return _push_query(pdb, query,
                       lambda relation: relation.canonical())


def statistic_distribution(pdb: PDBBase,
                           statistic: Callable[[Instance], Any],
                           ) -> DiscreteMeasure:
    """Push-forward distribution of an arbitrary world statistic.

    An arbitrary function of the world cannot be compiled; columnar
    ensembles evaluate it over lazily built world slots.
    """
    return _push_world(pdb, statistic)


def aggregate_distribution(pdb: PDBBase, query: Query,
                           column: str | None = None) -> DiscreteMeasure:
    """Distribution of a single-valued aggregate query."""
    return _push_query(pdb, query, lambda relation:
                       aggregate_answer(relation, column))


def boolean_probability(pdb: PDBBase, query: Query) -> float:
    """Probability that the query returns a non-empty answer."""
    if isinstance(pdb, ColumnarMonteCarloPDB):
        hits = sum(1 for relation in query_answers(pdb, query)
                   if relation is not None and len(relation) > 0)
        return hits / pdb.n_runs
    if isinstance(pdb, WeightedColumnarPDB):
        slots = query_answers(pdb._columnar, query)
        hit = 0.0
        for index, relation in enumerate(slots):
            if relation is None or len(relation) == 0:
                continue
            weight = float(pdb.weights[index])
            if weight > 0.0:
                hit += weight
        return hit / pdb.total_weight()
    return pdb.prob(lambda instance:
                    len(query.evaluate(instance)) > 0)


def expected_aggregate(pdb: PDBBase, query: Query,
                       column: str | None = None) -> float:
    """Expected value of a numeric single-valued aggregate."""
    if isinstance(pdb, ColumnarMonteCarloPDB):
        total = math.fsum(
            float(aggregate_answer(relation, column))
            for relation in query_answers(pdb, query)
            if relation is not None)
        return total / pdb.n_runs
    if isinstance(pdb, WeightedColumnarPDB):
        slots = query_answers(pdb._columnar, query)
        weighted = math.fsum(
            float(pdb.weights[index])
            * float(aggregate_answer(relation, column))
            for index, relation in enumerate(slots)
            if relation is not None and float(pdb.weights[index]) > 0.0)
        return weighted / pdb.total_weight()
    return pdb.expectation(lambda instance: float(
        aggregate_answer(query.evaluate(instance), column)))


def answer_probabilities(pdb: PDBBase, query: Query,
                         column: str) -> dict[Any, float]:
    """Per-answer marginals: P(value ∈ q(D)) per observed value."""
    def column_values(relation: Relation) -> frozenset:
        index = relation.column_index(column)
        return frozenset(row[index] for row in relation.rows)

    per_world = _push_query(pdb, query, column_values)
    # One pass over the pushed-forward measure instead of one
    # ``measure_of`` scan per distinct value: each support point (an
    # answer set) contributes its mass to every value it contains.
    # Per-value masses are gathered in support order and fsum'd, so
    # the result is bit-identical to the per-value scans.
    contributions: dict[Any, list[float]] = {}
    for answer_set, mass in per_world.items():
        for value in answer_set:
            contributions.setdefault(value, []).append(mass)
    return {value: math.fsum(contributions[value])
            for value in sorted(contributions, key=repr)}
