"""Deprecated: lifted query entry points (Fact 2.6, Remark 4.9).

The push-forward of a measurable query ``q`` along a PDB - ``P ∘ q⁻¹``
over answers - now lives in :mod:`repro.query.columnar`, which compiles
plans to numpy over columnar ensembles (and still evaluates per world
or per exact branch everywhere else).  Results are identical to the
historical implementations under a fixed seed; columnar ensembles are
simply no longer materialized to answer them, and weighted columnar
(streamed) posteriors - which this module used to reject - are now
supported.

Every function here is a shim that emits a :class:`DeprecationWarning`
and delegates.  Prefer :meth:`repro.api.Session.query` /
:meth:`repro.api.results.InferenceResult.query`, or import the free
functions from :mod:`repro.query`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import PDBBase
from repro.pdb.instances import Instance
from repro.query import columnar as _columnar
from repro.query.relalg import Query


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.query.lifted.{name} is deprecated; use "
        f"Session.query(...) or repro.query.{name}",
        DeprecationWarning, stacklevel=3)


def query_distribution(pdb: PDBBase, query: Query) -> DiscreteMeasure:
    """Deprecated shim for :func:`repro.query.columnar.query_distribution`."""
    _deprecated("query_distribution")
    return _columnar.query_distribution(pdb, query)


def statistic_distribution(pdb: PDBBase,
                           statistic: Callable[[Instance], Any],
                           ) -> DiscreteMeasure:
    """Deprecated shim for :func:`repro.query.columnar.statistic_distribution`."""
    _deprecated("statistic_distribution")
    return _columnar.statistic_distribution(pdb, statistic)


def aggregate_distribution(pdb: PDBBase, query: Query,
                           column: str | None = None) -> DiscreteMeasure:
    """Deprecated shim for :func:`repro.query.columnar.aggregate_distribution`."""
    _deprecated("aggregate_distribution")
    return _columnar.aggregate_distribution(pdb, query, column)


def boolean_probability(pdb: PDBBase, query: Query) -> float:
    """Deprecated shim for :func:`repro.query.columnar.boolean_probability`."""
    _deprecated("boolean_probability")
    return _columnar.boolean_probability(pdb, query)


def expected_aggregate(pdb: PDBBase, query: Query,
                       column: str | None = None) -> float:
    """Deprecated shim for :func:`repro.query.columnar.expected_aggregate`."""
    _deprecated("expected_aggregate")
    return _columnar.expected_aggregate(pdb, query, column)


def answer_probabilities(pdb: PDBBase, query: Query,
                         column: str) -> dict[Any, float]:
    """Deprecated shim for :func:`repro.query.columnar.answer_probabilities`."""
    _deprecated("answer_probabilities")
    return _columnar.answer_probabilities(pdb, query, column)
