"""Lifting queries to probabilistic databases (Fact 2.6, Remark 4.9).

A measurable query ``q`` maps instances to answers; applied to a PDB it
induces the push-forward measure ``P ∘ q⁻¹`` over answers.  For exact
(discrete) PDBs the push-forward is computed exactly; for Monte-Carlo
PDBs it is estimated per sampled world.

The module also provides the common scalar conveniences: distribution
of an aggregate value, probability of a Boolean query, and expected
aggregate, each in exact and estimated form behind one interface.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.measures.discrete import DiscreteMeasure
from repro.pdb.database import DiscretePDB, MonteCarloPDB, PDBBase
from repro.pdb.instances import Instance
from repro.pdb.weighted import WeightedPDB
from repro.query.aggregates import aggregate_value
from repro.query.relalg import Query, Relation


def query_distribution(pdb: PDBBase, query: Query) -> DiscreteMeasure:
    """Push-forward distribution of a query's full answer relation.

    Answer relations are reduced to hashable canonical forms.  For
    sub-probabilistic inputs the result is sub-probabilistic with the
    same deficit (the error event yields no answer).
    """
    def to_answer(instance: Instance):
        return query.evaluate(instance).canonical()
    return _push(pdb, to_answer)


def statistic_distribution(pdb: PDBBase,
                           statistic: Callable[[Instance], Any],
                           ) -> DiscreteMeasure:
    """Push-forward distribution of an arbitrary world statistic."""
    return _push(pdb, statistic)


def aggregate_distribution(pdb: PDBBase, query: Query,
                           column: str | None = None) -> DiscreteMeasure:
    """Distribution of a single-valued aggregate query."""
    return _push(pdb, lambda instance:
                 aggregate_value(query, instance, column))


def _push(pdb: PDBBase, f: Callable[[Instance], Any]) -> DiscreteMeasure:
    if isinstance(pdb, DiscretePDB):
        return pdb.push_distribution(f)
    if isinstance(pdb, MonteCarloPDB):
        if not pdb.worlds:
            return DiscreteMeasure.zero()
        empirical = DiscreteMeasure.from_samples(
            [f(world) for world in pdb.worlds])
        return empirical.scale(pdb.total_mass())
    if isinstance(pdb, WeightedPDB):
        masses: dict = {}
        for world, weight in zip(pdb.worlds, pdb.weights):
            image = f(world)
            masses[image] = masses.get(image, 0.0) + weight
        return DiscreteMeasure(
            {point: mass / pdb.total_weight()
             for point, mass in masses.items()})
    raise TypeError(f"not a PDB: {pdb!r}")


def boolean_probability(pdb: PDBBase, query: Query) -> float:
    """Probability that a query returns a non-empty answer.

    This is the standard Boolean-query semantics on PDBs: the measure
    of ``{D : q(D) ≠ ∅}``.
    """
    return pdb.prob(lambda instance: len(query.evaluate(instance)) > 0)


def expected_aggregate(pdb: PDBBase, query: Query,
                       column: str | None = None) -> float:
    """Expected value of a numeric single-valued aggregate."""
    return pdb.expectation(
        lambda instance: float(aggregate_value(query, instance, column)))


def answer_probabilities(pdb: PDBBase, query: Query,
                         column: str) -> dict[Any, float]:
    """Per-answer marginals: P(value ∈ q(D)) for each observed value.

    The "certain/possible answer" view: for each value ever appearing
    in the answer column, the probability that it appears.
    """
    values: set[Any] = set()

    def column_values(instance: Instance) -> frozenset:
        relation: Relation = query.evaluate(instance)
        index = relation.column_index(column)
        return frozenset(row[index] for row in relation.rows)

    per_world = _push(pdb, column_values)
    for answer_set in per_world:
        values.update(answer_set)
    return {value: per_world.measure_of(lambda s, v=value: v in s)
            for value in sorted(values, key=repr)}
