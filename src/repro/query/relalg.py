"""Relational algebra over instances (Fact 2.6's query class).

The paper relies on the measurability of relational-algebra views both
for the applicability multifunction (Lemma 3.6 evaluates ``App`` "as
the result of a relational algebra view") and for post-processing
program outputs (Remark 4.9).  This module implements the algebra as
composable :class:`Query` trees evaluated over instances; the lifting
to (S)PDBs - the push-forward along the induced measurable function -
lives in :mod:`repro.query.lifted`.

Queries produce :class:`Relation` values: named column tuples with set
semantics, convertible back to instances.  Columns are referenced by
name; see each operator for its column discipline.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import SchemaError
from repro.ordering import tuple_sort_key
from repro.pdb.facts import Fact
from repro.pdb.instances import Instance


class Relation:
    """An in-memory relation: named columns and a set of rows."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Iterable[str], rows: Iterable[tuple]):
        self.columns = tuple(columns)
        self.rows = frozenset(tuple(row) for row in rows)
        for row in self.rows:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row {row!r} does not fit columns {self.columns!r}")

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise SchemaError(
                f"unknown column {name!r}; have {self.columns!r}"
            ) from None

    def sorted_rows(self) -> list[tuple]:
        return sorted(self.rows, key=tuple_sort_key)

    def project_values(self, column: str) -> list[Any]:
        index = self.column_index(column)
        return sorted((row[index] for row in self.rows),
                      key=lambda v: tuple_sort_key((v,)))

    def to_instance(self, relation_name: str) -> Instance:
        return Instance(Fact(relation_name, row) for row in self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Relation)
                and self.columns == other.columns
                and self.rows == other.rows)

    def __hash__(self) -> int:
        return hash((self.columns, self.rows))

    def __repr__(self) -> str:
        return (f"Relation({list(self.columns)!r}, "
                f"{len(self.rows)} rows)")

    def canonical(self) -> tuple:
        """Hashable canonical form (used as a push-forward point)."""
        return (self.columns, tuple(self.sorted_rows()))


class Query:
    """A relational-algebra expression evaluated against instances."""

    def evaluate(self, instance: Instance) -> Relation:
        raise NotImplementedError

    def __call__(self, instance: Instance) -> Relation:
        return self.evaluate(instance)

    # -- fluent combinators ---------------------------------------------------

    def select(self, predicate: Callable[[dict], bool]) -> "Select":
        return Select(self, predicate)

    def where(self, **equalities: Any) -> "Select":
        """Select rows whose named columns equal the given constants.

        Unlike :meth:`select`, the column/value pairs are recorded
        *structurally* on the returned :class:`Select` (its
        ``equalities`` attribute), so the columnar planner
        (:mod:`repro.query.columnar`) can compile them into boolean
        masks over sample arrays instead of calling back into Python
        per row.  Use :meth:`select` for predicates that genuinely
        need arbitrary code.
        """
        return Select(self, None, equalities=dict(equalities))

    def project(self, *columns: str) -> "Project":
        return Project(self, columns)

    def rename(self, **mapping: str) -> "Rename":
        return Rename(self, mapping)

    def join(self, other: "Query") -> "NaturalJoin":
        return NaturalJoin(self, other)

    def union(self, other: "Query") -> "Union":
        return Union(self, other)

    def difference(self, other: "Query") -> "Difference":
        return Difference(self, other)

    def intersect(self, other: "Query") -> "Intersection":
        return Intersection(self, other)

    def product(self, other: "Query") -> "Product":
        return Product(self, other)


class Scan(Query):
    """Read one stored relation; columns default to ``c0, c1, ...``."""

    def __init__(self, relation: str, columns: Iterable[str] | None = None):
        self.relation = relation
        self.columns = tuple(columns) if columns is not None else None

    def evaluate(self, instance: Instance) -> Relation:
        rows = instance.tuples_of(self.relation)
        if self.columns is not None:
            return Relation(self.columns, rows)
        arity = max((len(r) for r in rows), default=0)
        return Relation([f"c{i}" for i in range(arity)], rows)


class Select(Query):
    """σ: keep rows satisfying a predicate over the named-row dict.

    Two flavours share this node:

    * ``Select(source, predicate)`` - an opaque Python callable; the
      honest escape hatch, evaluated row by row everywhere.
    * ``Select(source, None, equalities={...})`` - a conjunction of
      column == constant tests recorded structurally (what
      :meth:`Query.where` builds); the columnar planner vectorizes
      these, and :meth:`evaluate` applies them directly.
    """

    def __init__(self, source: Query,
                 predicate: Callable[[dict], bool] | None,
                 equalities: dict[str, Any] | None = None):
        if (predicate is None) == (equalities is None):
            raise SchemaError(
                "Select needs exactly one of a predicate callable or "
                "an equalities mapping")
        self.source = source
        self.predicate = predicate
        self.equalities = dict(equalities) if equalities is not None \
            else None

    def evaluate(self, instance: Instance) -> Relation:
        relation = self.source.evaluate(instance)
        if self.equalities is not None:
            indices = [(relation.column_index(name), value)
                       for name, value in self.equalities.items()]
            kept = [row for row in relation.rows
                    if all(row[i] == value for i, value in indices)]
        else:
            kept = [row for row in relation.rows
                    if self.predicate(dict(zip(relation.columns, row)))]
        return Relation(relation.columns, kept)


class Project(Query):
    """π: keep (and reorder) the named columns; set semantics dedupes."""

    def __init__(self, source: Query, columns: Iterable[str]):
        self.source = source
        self.columns = tuple(columns)

    def evaluate(self, instance: Instance) -> Relation:
        relation = self.source.evaluate(instance)
        indices = [relation.column_index(name) for name in self.columns]
        return Relation(self.columns,
                        {tuple(row[i] for i in indices)
                         for row in relation.rows})


class Rename(Query):
    """ρ: rename columns via an ``old -> new`` mapping."""

    def __init__(self, source: Query, mapping: dict[str, str]):
        self.source = source
        self.mapping = dict(mapping)

    def evaluate(self, instance: Instance) -> Relation:
        relation = self.source.evaluate(instance)
        columns = tuple(self.mapping.get(name, name)
                        for name in relation.columns)
        return Relation(columns, relation.rows)


class NaturalJoin(Query):
    """⋈: join on all shared column names (hash join)."""

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def evaluate(self, instance: Instance) -> Relation:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        shared = [name for name in left.columns if name in right.columns]
        left_key = [left.column_index(name) for name in shared]
        right_key = [right.column_index(name) for name in shared]
        right_extra = [i for i, name in enumerate(right.columns)
                       if name not in shared]
        index: dict[tuple, list[tuple]] = {}
        for row in right.rows:
            key = tuple(row[i] for i in right_key)
            index.setdefault(key, []).append(row)
        columns = left.columns + tuple(right.columns[i]
                                       for i in right_extra)
        rows = []
        for row in left.rows:
            key = tuple(row[i] for i in left_key)
            for other in index.get(key, ()):
                rows.append(row + tuple(other[i] for i in right_extra))
        return Relation(columns, rows)


class Product(Query):
    """×: Cartesian product (column names must be disjoint)."""

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def evaluate(self, instance: Instance) -> Relation:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise SchemaError(
                f"product requires disjoint columns; shared {overlap!r}")
        return Relation(left.columns + right.columns,
                        (l + r for l in left.rows for r in right.rows))


class _SameSchema(Query):
    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def _operands(self, instance: Instance) -> tuple[Relation, Relation]:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        if left.columns != right.columns:
            raise SchemaError(
                f"set operation needs equal columns: {left.columns!r} "
                f"vs {right.columns!r}")
        return left, right


class Union(_SameSchema):
    """∪ (set semantics)."""

    def evaluate(self, instance: Instance) -> Relation:
        left, right = self._operands(instance)
        return Relation(left.columns, left.rows | right.rows)


class Difference(_SameSchema):
    """∖ (set semantics)."""

    def evaluate(self, instance: Instance) -> Relation:
        left, right = self._operands(instance)
        return Relation(left.columns, left.rows - right.rows)


class Intersection(_SameSchema):
    """∩ (set semantics)."""

    def evaluate(self, instance: Instance) -> Relation:
        left, right = self._operands(instance)
        return Relation(left.columns, left.rows & right.rows)


class Extend(Query):
    """Add a computed column from the named-row dict."""

    def __init__(self, source: Query, column: str,
                 compute: Callable[[dict], Any]):
        self.source = source
        self.column = column
        self.compute = compute

    def evaluate(self, instance: Instance) -> Relation:
        relation = self.source.evaluate(instance)
        if self.column in relation.columns:
            raise SchemaError(f"column {self.column!r} already exists")
        rows = [row + (self.compute(dict(zip(relation.columns, row))),)
                for row in relation.rows]
        return Relation(relation.columns + (self.column,), rows)


def scan(relation: str, *columns: str) -> Scan:
    """Convenience constructor: ``scan("City", "name", "rate")``."""
    return Scan(relation, columns or None)
